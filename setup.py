"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this exists so that
``pip install -e . --no-use-pep517`` works offline.
"""

from setuptools import setup

setup()

"""Figure 7 bench: single-hash execution times, non-uniform apps."""

from repro.experiments import single_hash
from repro.experiments.single_hash import SINGLE_HASH_SCHEMES, build_figure
from repro.workloads import NONUNIFORM_APPS


def test_fig7_single_hash_nonuniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 7", NONUNIFORM_APPS, SINGLE_HASH_SCHEMES, store),
        rounds=1, iterations=1,
    )
    print()
    print(single_hash.render(figure))
    assert figure.average_speedup("pmod") > 1.15
    assert figure.average_speedup("pdisp") > 1.15
    assert figure.average_speedup("xor") <= figure.average_speedup("pmod")
    assert figure.average_speedup("8way") < 1.05
    assert figure.speedup("tree", "pmod") > 1.8

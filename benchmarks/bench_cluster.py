"""The cluster tier under a node-loss drill: the multi-node benchmark.

Runs every routing stack (pMod over pMod, traditional over
traditional, mixed) through the full drill — populate, kill the
hottest node mid-stream, serve through the loss, bounded
re-replication — and records the headline rates: replicated-op
throughput on a healthy ring, request throughput and simulated p99
*during* the outage, and re-replication drain speed.

Emits ``BENCH_cluster.json`` at the repo root — the machine-readable
record future PRs regress their cluster/routing changes against
(gated by ``repro.obs.benchguard`` via ``make bench-check``).
"""

import json
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.cluster import Cluster, ReplicationConfig
from repro.experiments.cluster import DEFAULT_STACKS, measure

N_REQUESTS = 8000
THROUGHPUT_OPS = 4000
SHARD_CAPACITY = 512
ASSOC = 16
REPLICAS = 2
BUDGET = 128

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"


def _healthy_ring_rate():
    """Replicated ops/second on a healthy pMod/pMod ring (wall clock)."""
    cluster = Cluster(n_nodes=8, node_scheme="pmod", shard_scheme="pmod",
                      shards_per_node=16, shard_capacity=SHARD_CAPACITY,
                      assoc=ASSOC,
                      replication=ReplicationConfig(replicas=REPLICAS))
    started = perf_counter()
    for i in range(THROUGHPUT_OPS // 2):
        cluster.put(i, i)
    for i in range(THROUGHPUT_OPS // 2):
        cluster.get(i)
    elapsed = perf_counter() - started
    return THROUGHPUT_OPS / elapsed if elapsed > 0 else 0.0


def test_cluster_drill(benchmark):
    cells = {
        stack: measure(stack, N_REQUESTS, shard_capacity=SHARD_CAPACITY,
                       assoc=ASSOC, replicas=REPLICAS, budget=BUDGET,
                       seed=0)
        for stack in DEFAULT_STACKS
    }

    print()
    for stack, cell in cells.items():
        drill = cell["during_loss"]
        print(f"  {stack:<26} {cell['n_nodes']}x"
              f"{cell['shards_per_node']:<3} copied "
              f"{cell['rereplication']['copied']:>5} "
              f"loss {drill['rps']:>9.0f} rps "
              f"p99 {drill['sim_p99_s'] * 1e6:>5.0f}us "
              f"balance {cell['balance_healthy']:.3f}")

    cluster_rps = benchmark(_healthy_ring_rate)

    payload = {
        "bench": "cluster",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_requests": N_REQUESTS,
        "throughput_ops": THROUGHPUT_OPS,
        "shard_capacity": SHARD_CAPACITY,
        "assoc": ASSOC,
        "replicas": REPLICAS,
        "budget": BUDGET,
        "cluster_rps": cluster_rps,
        "rereplicate_keys_per_s":
            cells["pmod+pmod"]["rereplicate_keys_per_s"],
        "stacks": {
            stack: {
                "n_nodes": cell["n_nodes"],
                "shards_per_node": cell["shards_per_node"],
                "victim": cell["victim"],
                "copied": cell["rereplication"]["copied"],
                "chunks": cell["journal_chain"]["chunks"],
                "during_loss_rps": cell["during_loss"]["rps"],
                "during_loss_p99_s": cell["during_loss"]["sim_p99_s"],
                "failed_reads": cell["during_loss"]["failed_reads"],
                "balance_healthy": cell["balance_healthy"],
                "balance_rebalanced": cell["balance_rebalanced"],
            }
            for stack, cell in cells.items()
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    # The cluster contract, asserted on served traffic.
    for stack, cell in cells.items():
        assert cell["zero_loss"]["missing"] == 0, stack
        assert cell["zero_loss"]["mismatched"] == 0, stack
        assert cell["during_loss"]["failed_reads"] == 0, stack
        assert (cell["journal_chain"]["max_chunk_moved"]
                <= cell["rereplication"]["budget"]), stack
    prime = cells["pmod+pmod"]
    pow2 = cells["traditional+traditional"]
    assert prime["balance_healthy"] < pow2["balance_healthy"]
    assert prime["balance_rebalanced"] < pow2["balance_rebalanced"]

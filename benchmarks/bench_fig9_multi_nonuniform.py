"""Figure 9 bench: multi-hash execution times, non-uniform apps."""

from repro.experiments import single_hash
from repro.experiments.multi_hash import MULTI_HASH_SCHEMES
from repro.experiments.single_hash import build_figure
from repro.workloads import NONUNIFORM_APPS


def test_fig9_multi_hash_nonuniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 9", NONUNIFORM_APPS, MULTI_HASH_SCHEMES, store),
        rounds=1, iterations=1,
    )
    print()
    print(single_hash.render(figure))
    # Skewed + pDisp matches or beats the best single hash on average...
    assert figure.average_speedup("skw+pdisp") >= \
        figure.average_speedup("pmod") - 0.03
    # ...and is the family that helps cg most (margin is small at
    # reduced trace scales, so allow a sliver of noise).
    assert figure.speedup("cg", "skw+pdisp") >= \
        figure.speedup("cg", "pmod") - 0.01

"""Ablation: composite near-power-of-two modulo (paper Section 3.1).

"It is possible to use n_set that is equal to n_set_phys − 1 but not a
prime number.  Often, if n_set_phys − 1 is not a prime number, it is a
product of two prime numbers.  Thus, it is at least a good choice for
most stride access patterns.  However, it is beyond the scope of this
paper to evaluate such numbers."

We evaluate them: 2047 = 23 × 89 (composite, Δ = 1) against the prime
2039 (Δ = 9), both on stride balance and on the non-uniform workloads.
The composite should fail on more strides (multiples of 23 and 89
lose balance) but behave comparably on the real workloads — and its
Δ = 1 makes the hardware the trivial Mersenne-style chunk sum.
"""

from repro.cache import CacheHierarchy, SetAssociativeCache
from repro.cpu import MachineConfig, Simulator
from repro.hashing import (
    PrimeModuloIndexing,
    TraditionalIndexing,
    balance,
    strided_addresses,
)
from repro.memory import DramModel
from repro.workloads import get_workload

from conftest import BENCH_SCALE


def simulate_modulo(trace, n_sets):
    config = MachineConfig.paper_default()
    l1 = SetAssociativeCache(config.l1_sets, config.l1_assoc,
                             TraditionalIndexing(config.l1_sets))
    l2 = SetAssociativeCache(config.l2_sets, config.l2_assoc,
                             PrimeModuloIndexing(config.l2_sets, n_sets=n_sets))
    hierarchy = CacheHierarchy(l1, l2, config.l1_block_bytes,
                               config.l2_block_bytes)
    return Simulator(hierarchy, DramModel(config.dram_config()),
                     config).run(trace)


def run_comparison():
    stride_failures = {}
    for n_sets in (2039, 2047):
        indexing = PrimeModuloIndexing(2048, n_sets=n_sets)
        bad = [s for s in range(1, 1025)
               if balance(indexing, strided_addresses(s, 4096)) > 1.1]
        stride_failures[n_sets] = bad
    workload_misses = {}
    for app in ("tree", "bt", "mcf"):
        trace = get_workload(app).trace(scale=BENCH_SCALE, seed=0)
        workload_misses[app] = {
            n: simulate_modulo(trace, n).l2_misses for n in (2039, 2047)
        }
    return stride_failures, workload_misses


def test_ablation_composite_modulo(benchmark):
    stride_failures, workload_misses = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1,
    )
    print()
    for n, bad in stride_failures.items():
        kind = "prime" if n == 2039 else "composite (23 x 89)"
        print(f"  n_set={n} ({kind}): {len(bad)} bad strides in 1..1024: "
              f"{bad[:6]}{'...' if len(bad) > 6 else ''}")
    for app, misses in workload_misses.items():
        ratio = misses[2047] / max(1, misses[2039])
        print(f"  {app:5s} misses: prime {misses[2039]}, "
              f"composite {misses[2047]} (ratio {ratio:.3f})")
    # The composite fails on more strides (its factors 23 and 89)...
    assert len(stride_failures[2047]) > len(stride_failures[2039])
    # ...but the real-workload misses stay within ~15% of the prime's,
    # confirming the paper's "at least a good choice" intuition.
    for app, misses in workload_misses.items():
        assert misses[2047] / max(1, misses[2039]) < 1.15, app

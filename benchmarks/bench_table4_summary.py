"""Table 4 bench: overall speedup summary and pathological-case counts."""

from repro.experiments import summary


def test_table4_summary(benchmark, store):
    summaries = benchmark.pedantic(
        summary.run,
        kwargs=dict(config=store.config, store=store),
        rounds=1, iterations=1,
    )
    print()
    print(summary.render(summaries))
    rows = {s.scheme: s for s in summaries}
    # Paper orderings: pMod/pDisp beat XOR on the non-uniform average;
    # uniform averages stay near 1.0 for every scheme.
    assert rows["pmod"].nonuniform_avg > rows["xor"].nonuniform_avg
    assert 1.1 < rows["pmod"].nonuniform_avg < 1.5
    assert rows["pdisp"].nonuniform_avg > 1.1
    for scheme, row in rows.items():
        assert 0.96 < row.uniform_avg < 1.05, scheme

"""Vectorized fastsim vs the per-access reference loop.

The engine's miss-only fast path (`repro.cache.fastsim.simulate_misses`)
is a set-partitioned numpy LRU; this bench measures its speedup over
`simulate_misses_reference` (the original Python loop) on a ~1M-access
workload trace at the paper's L2 geometry, and asserts both that the
results are bit-identical and that the speedup clears the 3x bar the
refactor targeted (asserted at 2x to keep shared-box noise from
flaking the harness; the printed ratio is the measurement).

Emits ``BENCH_fastsim.json`` at the repo root — the machine-readable
record future PRs regress the hot path against.
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.cache.fastsim import simulate_misses, simulate_misses_reference
from repro.hashing import PrimeModuloIndexing
from repro.workloads import get_workload

L2_SETS = 2048
L2_ASSOC = 4

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fastsim.json"


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_fastsim_speedup(benchmark):
    trace = get_workload("tree").trace(scale=8.0, seed=0)
    blocks = trace.block_addresses(64)
    indexing = PrimeModuloIndexing(L2_SETS)

    fast_t, fast = _best_of(
        lambda: simulate_misses(indexing, blocks, L2_ASSOC))
    ref_t, ref = _best_of(
        lambda: simulate_misses_reference(indexing, blocks, L2_ASSOC),
        repeats=2)
    benchmark(lambda: simulate_misses(indexing, blocks, L2_ASSOC))

    print()
    print(f"accesses: {len(blocks)}")
    print(f"vectorized: {fast_t:.3f}s  reference loop: {ref_t:.3f}s  "
          f"speedup: {ref_t / fast_t:.2f}x")

    BENCH_PATH.write_text(json.dumps({
        "bench": "fastsim_speedup",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "accesses": len(blocks),
        "l2_sets": L2_SETS,
        "l2_assoc": L2_ASSOC,
        "vectorized_s": fast_t,
        "reference_s": ref_t,
        "speedup": ref_t / fast_t,
    }, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    assert fast.misses == ref.misses
    assert np.array_equal(fast.set_misses, ref.set_misses)
    assert np.array_equal(fast.set_accesses, ref.set_accesses)
    assert ref_t / fast_t >= 2.0

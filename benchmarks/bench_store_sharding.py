"""Store sharding under skewed traffic: the Figure 5 argument, served.

Replays hot-key Zipfian, strided-batch and power-of-two-aligned request
streams through a :class:`~repro.store.ShardedStore` (4 worker threads,
one lock per shard) under every shard-selection scheme, prints the
per-pattern balance tables, and asserts the paper's ordering: pMod and
pDisp strictly beat traditional modulo on the structured streams.

Emits ``BENCH_store.json`` at the repo root — the machine-readable
record future PRs regress their serving-path changes against.
"""

import json
from datetime import datetime, timezone
from pathlib import Path

from repro.reporting import shard_balance_table
from repro.store import ShardedStore, make_traffic, replay

N_REQUESTS = 20000
N_SHARDS = 64
SHARD_CAPACITY = 512
WORKERS = 4
SCHEMES = ("traditional", "xor", "pmod", "pdisp")
PATTERNS = ("zipfian", "strided", "pow2")

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _replay_cell(pattern, scheme, requests, workers=WORKERS):
    store = ShardedStore(n_shards=N_SHARDS, scheme=scheme,
                         shard_capacity=SHARD_CAPACITY)
    return replay(store, requests, workers=workers)


def test_store_sharding_balance(benchmark):
    grid = {}
    for pattern in PATTERNS:
        requests = make_traffic(pattern, N_REQUESTS, seed=0)
        grid[pattern] = {
            scheme: _replay_cell(pattern, scheme, requests).as_dict()
            for scheme in SCHEMES
        }

    print()
    for pattern, cells in grid.items():
        rows = [
            {**payload["telemetry"],
             "throughput_rps": payload["throughput_rps"]}
            for payload in cells.values()
        ]
        print(shard_balance_table(
            rows, title=f"store sharding — {pattern} "
                        f"({N_REQUESTS} requests, {WORKERS} workers)"))
        print()

    # Measured serving throughput for the headline configuration.
    pmod_requests = make_traffic("zipfian", N_REQUESTS, seed=0)
    benchmark(lambda: _replay_cell("zipfian", "pmod", pmod_requests))

    payload = {
        "bench": "store_sharding",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_requests": N_REQUESTS,
        "n_shards": N_SHARDS,
        "shard_capacity": SHARD_CAPACITY,
        "workers": WORKERS,
        "patterns": {
            pattern: {
                scheme: {
                    "balance": cell["telemetry"]["balance"],
                    "concentration": cell["telemetry"]["concentration"],
                    "hit_rate": cell["telemetry"]["hit_rate"],
                    "tail_load": cell["telemetry"]["tail_load"],
                    "throughput_rps": cell["throughput_rps"],
                }
                for scheme, cell in cells.items()
            }
            for pattern, cells in grid.items()
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    # The paper's Figure 5 ordering, on served traffic: prime-based
    # selection strictly beats power-of-two modulo on structured keys.
    for pattern in ("strided", "pow2"):
        base = grid[pattern]["traditional"]["telemetry"]["balance"]
        for scheme in ("pmod", "pdisp"):
            assert grid[pattern][scheme]["telemetry"]["balance"] < base
    # ... and conflict evictions show up as lost hits under traditional.
    assert (grid["strided"]["pmod"]["telemetry"]["hit_rate"]
            > grid["strided"]["traditional"]["telemetry"]["hit_rate"])

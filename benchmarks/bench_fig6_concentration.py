"""Figure 6 bench: concentration vs stride for the four hashing functions."""

import numpy as np

from repro.experiments import stride_sweep


def test_fig6_concentration(benchmark):
    results = benchmark.pedantic(
        stride_sweep.run,
        kwargs=dict(max_stride=2047, n_addresses=4096, stride_step=4),
        rounds=1, iterations=1,
    )
    print()
    for name, sweep in results.items():
        print(f"{name:12s} ideal concentration on "
              f"{sweep.ideal_concentration_fraction():.1%} of strides "
              f"(mean {sweep.concentration.mean():.1f})")
    trad = results["Traditional"]
    odd = trad.strides % 2 == 1
    assert np.all(trad.concentration[odd] == 0.0)
    # pMod: sequence invariant -> ideal concentration on (almost) all strides.
    assert results["pMod"].ideal_concentration_fraction() > 0.99
    # XOR never sequence invariant -> concentration rarely ideal.
    assert results["XOR"].ideal_concentration_fraction() < 0.2
    # pDisp sits between XOR and pMod (partial invariance).
    assert (results["pDisp"].concentration.mean()
            < results["XOR"].concentration.mean())

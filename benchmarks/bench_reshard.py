"""Online resharding under live traffic: the epoch-machinery benchmark.

Grows every shard-selection scheme one rung up its ladder (pMod prime
to prime, 61 -> 67; the power-of-two schemes 64 -> 128) while serving
hot-key Zipfian traffic, asserts the reshard contract (zero key loss,
bounded in-flight moves, Figure 5 ordering preserved on the post-
reshard table), and measures the two headline rates: request
throughput *during* a live migration and raw migration drain speed.

Emits ``BENCH_reshard.json`` at the repo root — the machine-readable
record future PRs regress their routing/migration changes against.
"""

import json
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.store import Migrator, RoutingTable, ShardedStore
from repro.experiments.reshard import (
    DEFAULT_SCHEMES,
    measure,
    start_shards,
)

N_REQUESTS = 20000
N_KEYS = 4096
SHARD_CAPACITY = 512
ASSOC = 16

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_reshard.json"


def _migration_rate(scheme):
    """Keys/second for a pure (traffic-free) one-rung migration drain."""
    store = ShardedStore(shard_capacity=SHARD_CAPACITY, assoc=ASSOC,
                         routing=RoutingTable.create(
                             scheme, start_shards(scheme)))
    for key in range(N_KEYS):
        store.put(key, key)
    store.begin_reshard(store.routing.grown())
    started = perf_counter()
    report = Migrator(store).run()
    elapsed = perf_counter() - started
    assert report.left_behind == 0
    return report.moved / elapsed if elapsed > 0 else 0.0


def test_reshard_live(benchmark):
    cells = {
        scheme: measure(scheme, N_REQUESTS, shard_capacity=SHARD_CAPACITY,
                        assoc=ASSOC, seed=0)
        for scheme in DEFAULT_SCHEMES
    }

    print()
    for scheme, cell in cells.items():
        migration = cell["migration"]
        print(f"  {scheme:<12} {cell['from_n_shards']:>3}->"
              f"{cell['to_n_shards']:<3} moved {migration['moved']:>5} "
              f"peak {migration['peak_in_flight']}/{migration['budget']} "
              f"during {cell['during_rps']:>9.0f} rps "
              f"balance {cell['strided_balance_after']:.3f}")

    # Measured migration drain rate for the headline (pMod) ladder hop.
    migrate_keys_per_s = benchmark(lambda: _migration_rate("pmod"))

    payload = {
        "bench": "reshard",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_requests": N_REQUESTS,
        "n_keys": N_KEYS,
        "shard_capacity": SHARD_CAPACITY,
        "assoc": ASSOC,
        "migrate_keys_per_s": migrate_keys_per_s,
        "schemes": {
            scheme: {
                "from_n_shards": cell["from_n_shards"],
                "to_n_shards": cell["to_n_shards"],
                "epoch": cell["epoch"],
                "moved": cell["migration"]["moved"],
                "peak_in_flight": cell["migration"]["peak_in_flight"],
                "budget": cell["migration"]["budget"],
                "left_behind": cell["migration"]["left_behind"],
                "during_rps": cell["during_rps"],
                "strided_balance_after": cell["strided_balance_after"],
            }
            for scheme, cell in cells.items()
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    # The reshard contract, asserted on served traffic.
    for scheme, cell in cells.items():
        assert cell["zero_loss"]["missing"] == 0, scheme
        assert cell["zero_loss"]["mismatched"] == 0, scheme
        assert (cell["migration"]["peak_in_flight"]
                <= cell["migration"]["budget"]), scheme
        assert cell["migration"]["left_behind"] == 0, scheme
    base = cells["traditional"]["strided_balance_after"]
    for scheme in ("pmod", "pdisp"):
        assert cells[scheme]["strided_balance_after"] < base

"""Shared fixtures for the benchmark harness.

The simulation benches share one ResultStore per scale so that e.g. the
Figure 7 and Figure 9 benches do not re-simulate the Base runs.  Each
bench prints the rendered paper table/figure (visible with ``-s``) and
asserts the paper's qualitative shape, so the harness doubles as a
regression gate for the reproduction.
"""

import pytest

from repro.experiments.common import ResultStore, RunConfig

#: Trace scale used by the simulation benches; small enough that the
#: whole harness finishes in minutes, large enough that the cyclic /
#: resident working sets complete multiple reuse passes (the skewed
#: cache's retention advantage on cg/mst needs several passes).
BENCH_SCALE = 0.4


@pytest.fixture(scope="session")
def store():
    return ResultStore(RunConfig(scale=BENCH_SCALE, seed=0))

"""Ablation: L2 capacity sensitivity of the prime-hashing advantage."""

from repro.experiments import sensitivity
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_ablation_capacity_sensitivity(benchmark):
    points = benchmark.pedantic(
        sensitivity.run,
        args=("tree", RunConfig(scale=BENCH_SCALE)),
        rounds=1, iterations=1,
    )
    print()
    print(sensitivity.render(points))
    by_cap = {p.capacity_kb: p for p in points}
    # The conflict gap persists at the paper's 512 KB and both
    # neighbors: the advantage is a mapping property, not capacity.
    for kb in (256, 512, 1024):
        assert by_cap[kb].miss_ratio < 0.6, kb
    # Small caches: the footprint no longer fits even when spread, so
    # the gap narrows from below.
    assert by_cap[128].miss_ratio > by_cap[512].miss_ratio * 0.5

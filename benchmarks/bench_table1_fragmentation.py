"""Table 1 bench: prime modulo set fragmentation (pure number theory)."""

from repro.experiments import fragmentation


def test_table1_fragmentation(benchmark):
    rows = benchmark(fragmentation.run)
    print()
    print(fragmentation.render(rows))
    by_phys = {r.n_sets_physical: r for r in rows}
    assert by_phys[2048].n_sets == 2039
    assert by_phys[8192].n_sets == 8191
    # Fragmentation falls below 1% from 512 sets on (paper's claim).
    assert all(r.fragmentation < 0.01 for r in rows if r.n_sets_physical >= 512)

"""Figure 10 bench: multi-hash execution times, uniform apps —
including the skewed caches' pathological slowdowns."""

from repro.experiments import multi_hash, single_hash
from repro.experiments.multi_hash import MULTI_HASH_SCHEMES
from repro.experiments.single_hash import build_figure
from repro.workloads import UNIFORM_APPS


def test_fig10_multi_hash_uniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 10", UNIFORM_APPS, MULTI_HASH_SCHEMES, store),
        rounds=1, iterations=1,
    )
    print()
    print(single_hash.render(figure))
    slow = multi_hash.pathological_cases(figure, "skw")
    print(f"SKW pathological cases: {slow}")
    # The skewed cache slows at least one uniform app by >1% but never
    # catastrophically (paper: up to 9%).
    assert len(slow) >= 1
    worst = min(figure.speedup(a, "skw") for a in figure.apps)
    assert 0.85 < worst < 0.995
    # pMod stays safe on the same group.
    assert min(figure.speedup(a, "pmod") for a in figure.apps) > 0.95

"""The telemetry plane under load: the federation benchmark.

Measures the three rates that bound how much cluster you can watch:

* **scrape_rps** — scrape sweeps per second over a 5-node cluster's
  fabric (serialize + round-trip + version check, per node);
* **merge_ns_per_series** — aggregator merge cost per series, the
  per-evaluation price of the cluster-wide registry;
* **tsdb_append_rps** — time-series appends per second including
  JSONL persistence and ring age-out.

Emits ``BENCH_fed.json`` at the repo root — the machine-readable
record future PRs regress their telemetry changes against (gated by
``repro.obs.benchguard`` via ``make bench-check``).
"""

import json
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.cluster import Cluster, ReplicationConfig
from repro.obs import declare_core_metrics
from repro.obs.fed import Aggregator, Federation
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import metrics_snapshot
from repro.obs.tsdb import TimeSeriesStore

N_NODES = 5
WARM_OPS = 4000
SCRAPE_SWEEPS = 50
MERGE_ROUNDS = 50
TSDB_APPENDS = 20000

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fed.json"


def _warm_cluster():
    """A 5-node cluster with per-node registries full of real series."""
    cluster = Cluster(n_nodes=N_NODES, node_scheme="pmod",
                      shard_scheme="pmod",
                      replication=ReplicationConfig(replicas=2),
                      node_registries=True)
    for i in range(WARM_OPS // 2):
        cluster.put(i, i)
    for i in range(WARM_OPS // 2):
        cluster.get(i)
    return cluster


def _scrape_rate(fed, cluster):
    """Scrape sweeps per second (each sweep polls every node)."""
    started = perf_counter()
    for _ in range(SCRAPE_SWEEPS):
        fed.scraper.scrape(cluster.virtual_now_s)
    elapsed = perf_counter() - started
    return SCRAPE_SWEEPS / elapsed if elapsed > 0 else 0.0


def test_federation_plane(benchmark):
    cluster = _warm_cluster()
    local = MetricsRegistry(enabled=True)
    declare_core_metrics(local)
    fed = Federation.for_cluster(cluster, registry=local,
                                 out_of_band=True)

    scrape_rps = benchmark(lambda: _scrape_rate(fed, cluster))

    # Merge cost per series over the real scraped documents.
    docs = [doc for doc, _arrival in fed.scraper.latest.values()]
    aggregator = Aggregator()
    merged = aggregator.merge(docs)
    n_series = sum(len(rows) for rows
                   in metrics_snapshot(merged)["metrics"].values())
    started = perf_counter()
    for _ in range(MERGE_ROUNDS):
        aggregator.merge(docs)
    merge_elapsed = perf_counter() - started
    merge_ns_per_series = (merge_elapsed / (MERGE_ROUNDS * n_series)
                           * 1e9 if n_series else 0.0)

    # Append throughput with persistence and age-out in the loop.
    with tempfile.TemporaryDirectory() as root:
        tsdb = TimeSeriesStore(root=root, retention_points=256,
                               downsample_ratio=8, registry=local)
        started = perf_counter()
        for i in range(TSDB_APPENDS):
            tsdb.append("bench.gauge", float(i), float(i % 97))
        tsdb_elapsed = perf_counter() - started
    tsdb_append_rps = (TSDB_APPENDS / tsdb_elapsed
                       if tsdb_elapsed > 0 else 0.0)

    print()
    print(f"  scrape sweeps      {scrape_rps:>10.0f} sweeps/s "
          f"({N_NODES} nodes each)")
    print(f"  merge cost         {merge_ns_per_series:>10.0f} ns/series "
          f"({n_series} series, {len(docs)} docs)")
    print(f"  tsdb appends       {tsdb_append_rps:>10.0f} appends/s "
          f"(persisted, {tsdb.evictions} evictions)")

    payload = {
        "bench": "fed",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_nodes": N_NODES,
        "warm_ops": WARM_OPS,
        "scrape_sweeps": SCRAPE_SWEEPS,
        "merge_rounds": MERGE_ROUNDS,
        "tsdb_appends": TSDB_APPENDS,
        "n_series": n_series,
        "scrape_rps": scrape_rps,
        "merge_ns_per_series": merge_ns_per_series,
        "tsdb_append_rps": tsdb_append_rps,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    # The telemetry contract, asserted on the measured plane.
    assert fed.scraper.scrapes > 0
    assert n_series > 0
    assert tsdb_append_rps > 0

"""Figure 11 bench: normalized L2 misses, non-uniform apps."""

from repro.experiments import miss_reduction
from repro.experiments.miss_reduction import build_figure
from repro.workloads import NONUNIFORM_APPS


def test_fig11_miss_reduction_nonuniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 11", NONUNIFORM_APPS, store),
        rounds=1, iterations=1,
    )
    print()
    print(miss_reduction.render(figure))
    assert figure.average("pmod") < 0.8       # substantial reduction
    assert figure.normalized["tree"]["pmod"] < 0.5
    # skw+pDisp can beat even full associativity on cg (Section 5.5).
    assert figure.normalized["cg"]["skw+pdisp"] <= \
        figure.normalized["cg"]["fa"] + 0.03

"""Guard: disabled observability must not tax the fastsim hot path.

`repro.cache.fastsim.simulate_misses` is the repo's hottest API — the
obs layer hooks it only at the call boundary, and only when the
registry is enabled.  This guard measures the disabled-registry wrapper
against the bare core (`_simulate_misses_core`, the identical
computation with no obs calls at all) in the same process, so the
comparison is machine- and load-independent, and asserts the overhead
stays under 2%.  The BENCH_fastsim.json baseline rides along in the
output for cross-run context.

Emits ``BENCH_obs.json`` at the repo root; runs under plain pytest
(``make obs-check``) — no benchmark-only marker, it *is* the gate.
"""

import json
import time
from pathlib import Path

from repro.cache.fastsim import _simulate_misses_core, simulate_misses
from repro.hashing import PrimeModuloIndexing
from repro.obs import get_registry
from repro.workloads import get_workload

L2_SETS = 2048
L2_ASSOC = 4

#: Disabled-path overhead budget (fraction of the bare-core time).
OVERHEAD_BUDGET = 0.02

ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = ROOT / "BENCH_obs.json"
FASTSIM_BASELINE_PATH = ROOT / "BENCH_fastsim.json"


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(blocks, indexing, repeats=5):
    """Interleaved best-of timings of wrapper vs bare core.

    Interleaving (core, wrapper, core, wrapper, ...) instead of two
    back-to-back blocks keeps cache-warmth and frequency-scaling drift
    from biasing either side.
    """
    core = wrapped = float("inf")
    for _ in range(repeats):
        core = min(core, _best_of(
            lambda: _simulate_misses_core(indexing, blocks, L2_ASSOC), 1))
        wrapped = min(wrapped, _best_of(
            lambda: simulate_misses(indexing, blocks, L2_ASSOC), 1))
    return core, wrapped


def test_disabled_observability_overhead():
    registry = get_registry()
    assert registry.enabled is False, (
        "guard must measure the disabled-registry path"
    )
    trace = get_workload("tree").trace(scale=4.0, seed=0)
    blocks = trace.block_addresses(64)
    indexing = PrimeModuloIndexing(L2_SETS)

    core_s, disabled_s = _measure(blocks, indexing)
    overhead = disabled_s / core_s - 1.0
    if overhead >= OVERHEAD_BUDGET:  # one retry with more repeats:
        core_s, disabled_s = _measure(blocks, indexing, repeats=9)
        overhead = disabled_s / core_s - 1.0

    baseline = None
    if FASTSIM_BASELINE_PATH.exists():
        baseline = json.loads(FASTSIM_BASELINE_PATH.read_text())

    print()
    print(f"accesses: {len(blocks)}")
    print(f"bare core: {core_s:.4f}s  disabled-obs wrapper: {disabled_s:.4f}s"
          f"  overhead: {overhead * 100:.2f}%  (budget "
          f"{OVERHEAD_BUDGET * 100:.0f}%)")

    BENCH_PATH.write_text(json.dumps({
        "bench": "obs_overhead",
        "generated_s": time.time(),
        "accesses": len(blocks),
        "l2_sets": L2_SETS,
        "l2_assoc": L2_ASSOC,
        "core_s": core_s,
        "disabled_s": disabled_s,
        "overhead_frac": overhead,
        "overhead_budget_frac": OVERHEAD_BUDGET,
        "fastsim_baseline_vectorized_s":
            baseline["vectorized_s"] if baseline else None,
    }, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    assert len(registry) == 0, "disabled run must record no series"
    assert overhead < OVERHEAD_BUDGET

"""Guard: observability must not tax the paths it watches.

Two gates, one file:

* **Disabled path** — `repro.cache.fastsim.simulate_misses` is the
  repo's hottest API; the obs layer hooks it only at the call
  boundary, and only when the registry is enabled.  The guard measures
  the disabled-registry wrapper against the bare core
  (`_simulate_misses_core`, the identical computation with no obs
  calls at all) in the same process, so the comparison is machine- and
  load-independent, and asserts the overhead stays under 2%.
* **Tracing-enabled path** — with observability on, turning request
  *tracing* on (1-in-16 sampled stage timelines + heavy-hitter
  tracking on the cluster op path) must cost under 5% over the same
  metrics-on stream with the trace collector off.  Paired on one
  cluster instance so both sides pay identical metric/journal costs
  and the delta isolates tracing itself.

Both tests merge their rows into ``BENCH_obs.json`` at the repo root;
they run under plain pytest (``make obs-check``) — no benchmark-only
marker, they *are* the gate.
"""

import json
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.cache.fastsim import _simulate_misses_core, simulate_misses
from repro.hashing import PrimeModuloIndexing
from repro.obs import get_registry
from repro.workloads import get_workload

L2_SETS = 2048
L2_ASSOC = 4

#: Disabled-path overhead budget (fraction of the bare-core time).
OVERHEAD_BUDGET = 0.02

#: Tracing-on overhead budget (fraction of the metrics-on, tracing-off
#: time for the same cluster op stream).
TRACING_BUDGET = 0.05

#: Replicated cluster ops per timed sample of the tracing gate.
TRACING_OPS = 2000

ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = ROOT / "BENCH_obs.json"
FASTSIM_BASELINE_PATH = ROOT / "BENCH_fastsim.json"


def _timed(fn, inner=3):
    """Mean seconds per call over ``inner`` back-to-back calls (the
    inner loop averages down per-call scheduler jitter)."""
    t0 = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - t0) / inner


def _paired(run_base, run_test, repeats=11, inner=3):
    """Median paired overhead of ``run_test`` over ``run_base``.

    The old best-of protocol took each side's independent *minimum*,
    which samples two different noise tails and systematically reported
    a negative overhead (the test side's luckiest run beating the
    base's typical one).  Instead: ``repeats`` (>= 5) interleaved
    pairs, each pair timed back to back and alternating which side
    runs first (a fixed order hands the second side systematically
    warmer caches), and the reported overhead is the **median of the
    per-pair ratios** — pairing cancels the slow drift (thermal,
    frequency scaling) that dominates the raw run-to-run spread here.

    Returns ``(base_s, test_s, overhead_frac)`` where the times are
    the per-side medians (for reporting) and ``overhead_frac`` is the
    paired-median overhead (the gated statistic).
    """
    if repeats < 5:
        raise ValueError("need >= 5 interleaved repeats for a stable median")
    run_base(), run_test()  # untimed warmup: neither side pays cold start
    base_times, test_times, ratios = [], [], []
    for i in range(repeats):
        first, second = ((run_base, run_test) if i % 2 == 0
                         else (run_test, run_base))
        a, b = _timed(first, inner), _timed(second, inner)
        base, test = (a, b) if i % 2 == 0 else (b, a)
        base_times.append(base)
        test_times.append(test)
        ratios.append(test / base - 1.0)
    return (statistics.median(base_times), statistics.median(test_times),
            statistics.median(ratios))


def _measure(blocks, indexing, repeats=11):
    """Paired disabled-wrapper-vs-bare-core overhead (see _paired)."""
    return _paired(
        lambda: _simulate_misses_core(indexing, blocks, L2_ASSOC),
        lambda: simulate_misses(indexing, blocks, L2_ASSOC),
        repeats=repeats)


def _merge_bench(fields):
    """Merge ``fields`` into BENCH_obs.json (the two gates in this file
    each own a disjoint set of rows in the same document)."""
    doc = {}
    if BENCH_PATH.exists():
        try:
            doc = json.loads(BENCH_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            doc = {}
    doc.update(fields)
    doc["bench"] = "obs_overhead"
    doc["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    BENCH_PATH.write_text(json.dumps(doc, indent=1) + "\n")
    return doc


def test_disabled_observability_overhead():
    registry = get_registry()
    assert registry.enabled is False, (
        "guard must measure the disabled-registry path"
    )
    trace = get_workload("tree").trace(scale=4.0, seed=0)
    blocks = trace.block_addresses(64)
    indexing = PrimeModuloIndexing(L2_SETS)

    core_s, disabled_s, overhead = _measure(blocks, indexing)
    if overhead >= OVERHEAD_BUDGET:  # one retry with more repeats:
        core_s, disabled_s, overhead = _measure(blocks, indexing, repeats=21)

    baseline = None
    if FASTSIM_BASELINE_PATH.exists():
        baseline = json.loads(FASTSIM_BASELINE_PATH.read_text())

    print()
    print(f"accesses: {len(blocks)}")
    print(f"bare core: {core_s:.4f}s  disabled-obs wrapper: {disabled_s:.4f}s"
          f"  overhead: {overhead * 100:.2f}%  (budget "
          f"{OVERHEAD_BUDGET * 100:.0f}%)")

    _merge_bench({
        "accesses": len(blocks),
        "l2_sets": L2_SETS,
        "l2_assoc": L2_ASSOC,
        "core_s": core_s,
        "disabled_s": disabled_s,
        "overhead_frac": overhead,
        "overhead_budget_frac": OVERHEAD_BUDGET,
        "fastsim_baseline_vectorized_s":
            baseline["vectorized_s"] if baseline else None,
    })
    print(f"wrote {BENCH_PATH}")

    assert len(registry) == 0, "disabled run must record no series"
    assert overhead < OVERHEAD_BUDGET


def _cluster_stream(cluster, n_ops):
    """A fixed replicated put/get stream: the traced unit of work."""
    for i in range(n_ops // 2):
        cluster.put(f"k{i % 251}", i)
    for i in range(n_ops // 2):
        cluster.get(f"k{i % 251}")


def test_tracing_enabled_overhead():
    """Tracing on top of metrics-on serving must cost < TRACING_BUDGET.

    Both sides run the identical op stream on the *same* cluster with
    the registry enabled (so metric recording costs cancel); only the
    trace collector's enabled flag differs.  The traced side pays the
    per-op sampling check, a 1-in-16 full stage timeline (three
    wall-clock stages + flight-recorder insert), and heavy-hitter
    updates.
    """
    from repro.cluster import Cluster, ReplicationConfig
    from repro.obs import (
        disable_observability,
        enable_observability,
        get_collector,
    )

    enable_observability()
    try:
        cluster = Cluster(n_nodes=4, node_scheme="pmod",
                          shard_scheme="pmod", shards_per_node=8,
                          shard_capacity=512,
                          replication=ReplicationConfig(replicas=2))
        collector = get_collector()

        def run_untraced():
            collector.enabled = False
            _cluster_stream(cluster, TRACING_OPS)

        def run_traced():
            collector.enabled = True
            _cluster_stream(cluster, TRACING_OPS)

        untraced_s, traced_s, overhead = _paired(run_untraced, run_traced)
        if overhead >= TRACING_BUDGET:  # one retry with more repeats:
            untraced_s, traced_s, overhead = _paired(
                run_untraced, run_traced, repeats=21)
        n_traces = len(collector.traces())
    finally:
        disable_observability()
        get_collector().clear()

    print()
    print(f"cluster ops/sample: {TRACING_OPS}  sampled traces: {n_traces}")
    print(f"untraced: {untraced_s:.4f}s  traced: {traced_s:.4f}s"
          f"  overhead: {overhead * 100:.2f}%  (budget "
          f"{TRACING_BUDGET * 100:.0f}%)")

    _merge_bench({
        "tracing_ops": TRACING_OPS,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "tracing_overhead_frac": overhead,
        "tracing_overhead_budget_frac": TRACING_BUDGET,
    })
    print(f"wrote {BENCH_PATH}")

    assert n_traces > 0, "traced side must have sampled some traces"
    assert overhead < TRACING_BUDGET

"""Guard: disabled observability must not tax the fastsim hot path.

`repro.cache.fastsim.simulate_misses` is the repo's hottest API — the
obs layer hooks it only at the call boundary, and only when the
registry is enabled.  This guard measures the disabled-registry wrapper
against the bare core (`_simulate_misses_core`, the identical
computation with no obs calls at all) in the same process, so the
comparison is machine- and load-independent, and asserts the overhead
stays under 2%.  The BENCH_fastsim.json baseline rides along in the
output for cross-run context.

Emits ``BENCH_obs.json`` at the repo root; runs under plain pytest
(``make obs-check``) — no benchmark-only marker, it *is* the gate.
"""

import json
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.cache.fastsim import _simulate_misses_core, simulate_misses
from repro.hashing import PrimeModuloIndexing
from repro.obs import get_registry
from repro.workloads import get_workload

L2_SETS = 2048
L2_ASSOC = 4

#: Disabled-path overhead budget (fraction of the bare-core time).
OVERHEAD_BUDGET = 0.02

ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = ROOT / "BENCH_obs.json"
FASTSIM_BASELINE_PATH = ROOT / "BENCH_fastsim.json"


def _timed(fn, inner=3):
    """Mean seconds per call over ``inner`` back-to-back calls (the
    inner loop averages down per-call scheduler jitter)."""
    t0 = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - t0) / inner


def _measure(blocks, indexing, repeats=11):
    """Median paired overhead of the wrapper over the bare core.

    The old best-of protocol took each side's independent *minimum*,
    which samples two different noise tails and systematically reported
    a negative overhead (the wrapper's luckiest run beating the core's
    typical one).  Instead: ``repeats`` (>= 5) interleaved pairs, each
    pair timed back to back and alternating which side runs first (a
    fixed order hands the second side systematically warmer caches),
    and the reported overhead is the **median of the per-pair ratios**
    — pairing cancels the slow drift (thermal, frequency scaling) that
    dominates the raw run-to-run spread here.

    Returns ``(core_s, wrapped_s, overhead_frac)`` where the times are
    the per-side medians (for reporting) and ``overhead_frac`` is the
    paired-median overhead (the gated statistic).
    """
    if repeats < 5:
        raise ValueError("need >= 5 interleaved repeats for a stable median")
    run_core = lambda: _simulate_misses_core(indexing, blocks, L2_ASSOC)
    run_wrapped = lambda: simulate_misses(indexing, blocks, L2_ASSOC)
    run_core(), run_wrapped()  # untimed warmup: neither side pays cold start
    core_times, wrapped_times, ratios = [], [], []
    for i in range(repeats):
        first, second = ((run_core, run_wrapped) if i % 2 == 0
                         else (run_wrapped, run_core))
        a, b = _timed(first), _timed(second)
        core, wrapped = (a, b) if i % 2 == 0 else (b, a)
        core_times.append(core)
        wrapped_times.append(wrapped)
        ratios.append(wrapped / core - 1.0)
    return (statistics.median(core_times), statistics.median(wrapped_times),
            statistics.median(ratios))


def test_disabled_observability_overhead():
    registry = get_registry()
    assert registry.enabled is False, (
        "guard must measure the disabled-registry path"
    )
    trace = get_workload("tree").trace(scale=4.0, seed=0)
    blocks = trace.block_addresses(64)
    indexing = PrimeModuloIndexing(L2_SETS)

    core_s, disabled_s, overhead = _measure(blocks, indexing)
    if overhead >= OVERHEAD_BUDGET:  # one retry with more repeats:
        core_s, disabled_s, overhead = _measure(blocks, indexing, repeats=21)

    baseline = None
    if FASTSIM_BASELINE_PATH.exists():
        baseline = json.loads(FASTSIM_BASELINE_PATH.read_text())

    print()
    print(f"accesses: {len(blocks)}")
    print(f"bare core: {core_s:.4f}s  disabled-obs wrapper: {disabled_s:.4f}s"
          f"  overhead: {overhead * 100:.2f}%  (budget "
          f"{OVERHEAD_BUDGET * 100:.0f}%)")

    BENCH_PATH.write_text(json.dumps({
        "bench": "obs_overhead",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "accesses": len(blocks),
        "l2_sets": L2_SETS,
        "l2_assoc": L2_ASSOC,
        "core_s": core_s,
        "disabled_s": disabled_s,
        "overhead_frac": overhead,
        "overhead_budget_frac": OVERHEAD_BUDGET,
        "fastsim_baseline_vectorized_s":
            baseline["vectorized_s"] if baseline else None,
    }, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    assert len(registry) == 0, "disabled run must record no series"
    assert overhead < OVERHEAD_BUDGET

"""Ablation: OS page-allocation policies vs the conflict structure.

tree's offset-driven crowding survives every allocator; bt's
pitch-driven columns need color preservation.
"""

from repro.experiments import page_allocation
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_ablation_page_allocation(benchmark):
    rows = benchmark.pedantic(
        page_allocation.run,
        kwargs=dict(workloads=("tree", "bt"),
                    config=RunConfig(scale=BENCH_SCALE)),
        rounds=1, iterations=1,
    )
    print()
    print(page_allocation.render(rows))
    by_key = {(r.workload, r.policy): r for r in rows}
    for policy in ("sequential", "random", "colored"):
        assert by_key[("tree", policy)].miss_ratio < 0.5, policy
    assert by_key[("bt", "colored")].miss_ratio < 0.85
    assert by_key[("bt", "random")].miss_ratio > 0.95

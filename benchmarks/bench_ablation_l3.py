"""Ablation: prime indexing at the last-level cache of a 3-level stack."""

from repro.experiments import l3_hashing
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_ablation_l3_hashing(benchmark):
    rows = benchmark.pedantic(
        l3_hashing.run,
        kwargs=dict(workloads=("tree", "mcf", "lu"),
                    config=RunConfig(scale=BENCH_SCALE)),
        rounds=1, iterations=1,
    )
    print()
    print(l3_hashing.render(rows))
    by_key = {(r.workload, r.l3_indexing): r for r in rows}
    # Offset-driven crowding overflows even 16 ways: pMod still pays.
    assert by_key[("tree", "pmod")].l3_misses < \
        by_key[("tree", "traditional")].l3_misses * 0.8
    # Crowding within the associativity is already absorbed.
    assert by_key[("mcf", "pmod")].l3_misses <= \
        by_key[("mcf", "traditional")].l3_misses * 1.02

"""Attack economics and defense latency: the adversary benchmark.

Records the headline security numbers: black-box probes to crack each
scheme (deterministic counts — the attack-cost curve), the prime/linear
probe factor, and the wall-clock time from adversarial page to
journaled mitigation on a keyed store (detect -> rotate -> migrate ->
re-grade clean).

Emits ``BENCH_adversary.json`` at the repo root — the machine-readable
record future PRs regress probe-resistance and mitigation latency
against (gated by ``repro.obs.benchguard`` via ``make bench-check``).
"""

import json
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.control import KeyRotator, RemediationController
from repro.experiments.adversary import DEFAULT_SCHEMES, attack_cell
from repro.obs import (
    Journal,
    disable_observability,
    enable_observability,
    get_registry,
)
from repro.obs.health import HashQualityDetector, SloEngine
from repro.store import ShardedStore

N_SHARDS = 16
KEY_BITS = 16
CRACK_KEYS = 256
HOSTILE_REQUESTS = 4000
FLOOD_PER_ROUND = 640
RESIDENT_KEYS = 200

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_adversary.json"


def _time_to_mitigate() -> float:
    """Wall seconds from first flood request to ``adversary.mitigated``.

    The full defended loop at speed: flood the victim shard until the
    page fires, let the controller rotate the secret and run the epoch
    migration, resume normal traffic, and stop the clock when the
    mitigation lands on the journal.
    """
    journal = Journal()
    store = ShardedStore(n_shards=N_SHARDS, scheme="keyed_pdisp",
                         shard_capacity=512)
    detector = HashQualityDetector(journal=journal)
    controller = RemediationController(
        store, SloEngine([], journal=journal), detector=detector,
        journal=journal, rotator=KeyRotator(store, seed=0,
                                            journal=journal))
    for i in range(RESIDENT_KEYS):
        store.put(i * 1009 + 3, i)
    controller.step()

    victim = store.shard_for(12345)
    universe = np.arange(1 << 14, dtype=np.uint64)
    hot = [int(k) for k in
           universe[store.routing.shard_array(universe) == victim][:16]]
    started = perf_counter()
    for _ in range(8):
        for i in range(FLOOD_PER_ROUND):
            store.get(hot[i % len(hot)])
        controller.step()
        if journal.find("adversary.mitigated"):
            break
        if any(e.kind == "control.key_rotation" for e in journal.tail()):
            # Rotation applied; clean traffic lets the alarm re-grade.
            for i in range(2000):
                store.get((i * 2654435761) & 0xFFFF)
    assert journal.find("adversary.mitigated"), "drill never mitigated"
    return perf_counter() - started


def test_adversary_attack_and_defense(benchmark):
    was_enabled = get_registry().enabled
    if not was_enabled:
        enable_observability()
    try:
        cells = {
            scheme: attack_cell(scheme, n_shards=N_SHARDS,
                                key_bits=KEY_BITS, crack_keys=CRACK_KEYS,
                                hostile_requests=HOSTILE_REQUESTS, seed=0)
            for scheme in DEFAULT_SCHEMES
        }
        time_to_mitigate_s = benchmark(_time_to_mitigate)
    finally:
        if not was_enabled:
            disable_observability()

    print()
    for scheme, cell in cells.items():
        crack = cell["crack"]
        print(f"  {scheme:<12} {crack['method']:>10} "
              f"probes {crack['probes']:>6} "
              f"hostile tail {cell['hostile']['tail_load']:>6.2f}")
    print(f"  time to mitigate: {time_to_mitigate_s * 1e3:.1f} ms")

    probes = {scheme: cell["crack"]["probes"]
              for scheme, cell in cells.items()}
    linear_max = max(probes["traditional"], probes["xor"])
    prime_min = min(probes["pmod"], probes["pdisp"])
    payload = {
        "bench": "adversary",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_shards": N_SHARDS,
        "key_bits": KEY_BITS,
        "crack_keys": CRACK_KEYS,
        "probes_to_crack": probes,
        "probe_factor": prime_min / linear_max,
        "time_to_mitigate_s": time_to_mitigate_s,
        "hostile_tail_load": {scheme: cell["hostile"]["tail_load"]
                              for scheme, cell in cells.items()},
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

    # The attack-economics contract, asserted on the measured counts.
    assert cells["traditional"]["crack"]["method"] == "gf2"
    assert cells["xor"]["crack"]["method"] == "gf2"
    assert cells["pmod"]["crack"]["method"] == "bucketing"
    assert cells["pdisp"]["crack"]["method"] == "bucketing"
    assert prime_min >= 5.0 * linear_max
    assert probes["keyed"] >= 5.0 * linear_max

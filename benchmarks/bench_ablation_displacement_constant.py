"""Ablation: does the displacement constant's primality matter?

The paper's footnote 2 concedes that despite the name *prime*
displacement, "it is also not the case that prime numbers are
necessarily better choices for p than ordinary odd numbers."  This
bench sweeps prime and non-prime odd constants and measures the stride
balance profile and conflict behavior of each.
"""

import numpy as np

from repro.hashing import PrimeDisplacementIndexing, balance, strided_addresses

CONSTANTS = (3, 7, 9, 11, 15, 17, 19, 21, 31, 33, 37)  # mixed prime/non-prime


def profile_constant(p: int) -> float:
    """Fraction of strides 1..512 with ideal balance under constant p."""
    indexing = PrimeDisplacementIndexing(2048, displacement=p)
    ideal = 0
    for s in range(1, 513):
        if balance(indexing, strided_addresses(s, 4096)) <= 1.1:
            ideal += 1
    return ideal / 512


def run_sweep():
    return {p: profile_constant(p) for p in CONSTANTS}


def test_ablation_displacement_constant(benchmark):
    fractions = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    for p, frac in fractions.items():
        prime = "prime" if p in (3, 7, 11, 17, 19, 31, 37) else "odd  "
        print(f"  p={p:3d} ({prime}): ideal balance on {frac:.1%} of strides")
    primes = [fractions[p] for p in (7, 11, 17, 19, 31, 37)]
    non_primes = [fractions[p] for p in (9, 15, 21, 33)]
    # Footnote 2: primality does not matter — non-prime odd constants
    # perform on par with primes.
    assert abs(np.mean(primes) - np.mean(non_primes)) < 0.10
    # The paper's chosen p=9 is among the good constants.
    assert fractions[9] > 0.85

"""Figure 13 bench: per-set miss distribution for tree, Base vs pMod."""

from repro.experiments import miss_distribution
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_fig13_tree_miss_distribution(benchmark):
    results = benchmark.pedantic(
        miss_distribution.run,
        args=(RunConfig(scale=BENCH_SCALE),),
        rounds=1, iterations=1,
    )
    print()
    print(miss_distribution.render(results))
    # Figure 13a: misses concentrated in ~10% of sets under Base.
    assert results["base"].top_fraction_share(0.1) > 0.5
    # Figure 13b: pMod flattens and shrinks the distribution.
    assert results["pmod"].top_fraction_share(0.1) < 0.3
    assert results["pmod"].total < results["base"].total

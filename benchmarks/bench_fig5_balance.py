"""Figure 5 bench: balance vs stride for the four hashing functions."""

import numpy as np

from repro.experiments import stride_sweep


def test_fig5_balance(benchmark):
    results = benchmark.pedantic(
        stride_sweep.run,
        kwargs=dict(max_stride=2047, n_addresses=4096, stride_step=2),
        rounds=1, iterations=1,
    )
    print()
    for name, sweep in results.items():
        print(f"{name:12s} ideal balance on "
              f"{sweep.ideal_balance_fraction():.1%} of strides; worst at "
              f"{sweep.worst_balance_strides(3)}")
    trad = results["Traditional"]
    odd = trad.strides % 2 == 1
    assert np.all(trad.balance[odd] <= 1.1)          # ideal on odd strides
    assert results["pMod"].ideal_balance_fraction() > 0.999
    assert results["pDisp"].ideal_balance_fraction() > 0.85
    assert results["XOR"].ideal_balance_fraction() > 0.85

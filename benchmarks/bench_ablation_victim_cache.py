"""Ablation: victim cache vs prime hashing on conflict-heavy traffic.

Jouppi's victim buffer is the classic hardware fix for conflict misses.
This bench puts a 16- and a 64-entry victim buffer behind the Base L2
and compares against pMod on tree: a buffer absorbs a buffer's worth
of conflicting lines, while re-indexing redistributes thousands — the
quantitative argument for the paper's approach.
"""

from repro.cache import (
    CacheHierarchy,
    SetAssociativeCache,
    VictimCache,
)
from repro.cpu import MachineConfig, Simulator, simulate_scheme
from repro.hashing import TraditionalIndexing
from repro.memory import DramModel
from repro.workloads import get_workload

from conftest import BENCH_SCALE


def simulate_victim(trace, n_entries):
    machine = MachineConfig.paper_default()
    l1 = SetAssociativeCache(machine.l1_sets, machine.l1_assoc,
                             TraditionalIndexing(machine.l1_sets))
    l2 = VictimCache(
        SetAssociativeCache(machine.l2_sets, machine.l2_assoc,
                            TraditionalIndexing(machine.l2_sets)),
        n_victim_entries=n_entries,
    )
    hierarchy = CacheHierarchy(l1, l2, machine.l1_block_bytes,
                               machine.l2_block_bytes)
    sim = Simulator(hierarchy, DramModel(machine.dram_config()), machine,
                    scheme=f"victim{n_entries}")
    return sim.run(trace)


def run_comparison():
    trace = get_workload("tree").trace(scale=BENCH_SCALE, seed=0)
    return {
        "base": simulate_scheme(trace, "base").l2_misses,
        "victim16": simulate_victim(trace, 16).l2_misses,
        "victim64": simulate_victim(trace, 64).l2_misses,
        "pmod": simulate_scheme(trace, "pmod").l2_misses,
    }


def test_ablation_victim_cache(benchmark):
    misses = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    for name, m in misses.items():
        print(f"  {name:10s} L2 misses {m:8d} "
              f"({m / misses['base']:.2f} of Base)")
    # A victim buffer helps a little...
    assert misses["victim64"] <= misses["base"]
    # ...but prime hashing removes far more: tree's conflicting set is
    # thousands of lines, not a buffer's worth.
    assert misses["pmod"] < misses["victim64"] * 0.6

"""Ablation: hardware cost and throughput of the prime-modulo units.

Measures (a) the Python-model throughput of the polynomial and
iterative-linear units (a proxy for their relative complexity), (b)
Theorem 1's iteration counts across machine widths and selector sizes,
and (c) the adder-cost scaling the paper's Section 3.1 discussion
predicts.
"""

import numpy as np

from repro.hardware import (
    IterativeLinearUnit,
    PolynomialModUnit,
    iterations_required,
    prime_modulo_iterative_cost,
    prime_modulo_polynomial_cost,
)


def compute_many(unit, addresses):
    return [unit.compute(a) for a in addresses]


def test_polynomial_unit_throughput(benchmark):
    unit = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
    rng = np.random.default_rng(1)
    addresses = [int(a) for a in rng.integers(0, 2**26, size=2000)]
    results = benchmark(compute_many, unit, addresses)
    assert results == [a % 2039 for a in addresses]


def test_iterative_unit_throughput(benchmark):
    unit = IterativeLinearUnit(2048, address_bits=32, block_bytes=64,
                               selector_inputs=3)
    rng = np.random.default_rng(2)
    addresses = [int(a) for a in rng.integers(0, 2**26, size=2000)]
    results = benchmark(compute_many, unit, addresses)
    assert results == [a % 2039 for a in addresses]


def test_theorem1_scaling(benchmark):
    def sweep():
        return {
            (bits, sel): iterations_required(bits, 64, 2048,
                                             selector_inputs=sel)
            for bits in (32, 40, 48, 64)
            for sel in (2, 3, 258)
        }

    table = benchmark(sweep)
    print()
    for (bits, sel), iters in sorted(table.items()):
        print(f"  {bits}-bit, {sel:3d}-input selector: {iters} iterations")
    assert table[(32, 3)] == 2    # paper's worked example
    assert table[(64, 3)] == 6
    assert table[(64, 258)] == 3
    # Cost model consistency: wider machines need more adders.
    assert (prime_modulo_polynomial_cost(2048, 64).adders
            > prime_modulo_polynomial_cost(2048, 32).adders)
    assert (prime_modulo_iterative_cost(2048, 64).adders
            > prime_modulo_iterative_cost(2048, 32).adders)

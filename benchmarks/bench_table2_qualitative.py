"""Table 2 bench: empirical qualitative comparison of hashing functions."""

from repro.experiments import qualitative


def test_table2_qualitative(benchmark):
    profiles = benchmark.pedantic(
        qualitative.run,
        kwargs=dict(n_sets_physical=2048, n_addresses=4096, stride_limit=128),
        rounds=1, iterations=1,
    )
    print()
    print(qualitative.render(profiles))
    by_name = {p.name: p for p in profiles}
    assert by_name["Traditional"].ideal_balance_condition == "s odd"
    assert by_name["pMod"].sequence_invariant
    assert by_name["pDisp"].partially_invariant
    assert not by_name["XOR"].sequence_invariant
    assert by_name["Skewed"].replacement_restricted

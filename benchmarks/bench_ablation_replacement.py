"""Ablation: ENRU vs NRUNRW replacement in the skewed cache.

Section 5.3: "We have also tried a different replacement policy called
NRUNRW ... We found that it gives similar results."  This bench runs the
skewed+pDisp cache under both policies on the applications where the
skewed cache matters most and checks the miss counts track each other.
"""

from repro.cpu import simulate_scheme
from repro.workloads import get_workload

from conftest import BENCH_SCALE

APPS = ("cg", "mst", "tree", "mgrid")


POLICIES = ("enru", "nrunrw", "nru")


def run_all():
    results = {}
    for app in APPS:
        trace = get_workload(app).trace(scale=BENCH_SCALE, seed=0)
        results[app] = {
            policy: simulate_scheme(trace, "skw+pdisp",
                                    skew_replacement=policy).l2_misses
            for policy in POLICIES
        }
    return results


def test_ablation_skewed_replacement(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for app, misses in results.items():
        row = "   ".join(f"{p}={misses[p]:7d}" for p in POLICIES)
        print(f"  {app:6s} {row}")
        # "Similar results" (paper §5.3): NRUNRW within 15% of ENRU.
        assert 0.85 < misses["nrunrw"] / max(1, misses["enru"]) < 1.18, app
        # Plain NRU (no aging sweep) stays in the same ballpark too —
        # the family of pseudo-LRU policies is robust.
        assert 0.8 < misses["nru"] / max(1, misses["enru"]) < 1.35, app

"""Section 4 bench: the 7-of-23 non-uniform application classification."""

from repro.experiments import uniformity_table
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_section4_uniformity_classification(benchmark):
    rows = benchmark.pedantic(
        uniformity_table.run,
        args=(RunConfig(scale=BENCH_SCALE),),
        rounds=1, iterations=1,
    )
    print()
    print(uniformity_table.render(rows))
    assert sum(r.non_uniform for r in rows) == 7
    assert all(r.agrees_with_paper for r in rows)


def test_section33_l1_example(benchmark):
    """Section 3.3's L1 example: XOR's degenerate stride 15 on 16 sets."""
    from repro.experiments import l1_hashing

    rows = benchmark(l1_hashing.example_balance)
    by_stride = {r.stride: r for r in rows}
    assert by_stride[15].concentrations["xor"] > 20
    assert by_stride[15].concentrations["pmod"] == 0.0

"""Serving benchmark: frontend throughput and tail latency per scheme.

Drives the :class:`repro.serve.Frontend` two ways and records both in
``BENCH_serve.json`` at the repo root:

* **closed loop** — N concurrent clients over a pmod store, the
  sustainable service rate of the asyncio pipeline (submit → admission
  → per-shard batch → response) with batching effectiveness;
* **open loop** — the ``serving`` experiment's discipline, bursty
  zipfian arrivals over every scheme, recording p50/p95/p99 latency,
  reject rate and mean batch size per scheme.

Runs under plain pytest (``make serve-bench``) with loose sanity
assertions — it is a measurement, not a regression gate; thresholds
here would be machine-dependent.
"""

import json
from datetime import datetime, timezone
from pathlib import Path

from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultPolicy,
    Frontend,
    run_closed_loop,
    run_open_loop,
)
from repro.store import ShardedStore, make_traffic

SCHEMES = ("traditional", "xor", "pmod", "pdisp")
N_SHARDS = 32
SHARD_CAPACITY = 512
CLOSED_REQUESTS = 4000
OPEN_REQUESTS = 2000
OPEN_RATE_RPS = 15000.0

ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = ROOT / "BENCH_serve.json"


def _factory(scheme, admission=None):
    def build():
        store = ShardedStore(n_shards=N_SHARDS, scheme=scheme,
                             shard_capacity=SHARD_CAPACITY)
        return Frontend(
            store,
            batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
            admission=admission or AdmissionConfig(max_queue_depth=4096),
            policy=FaultPolicy(timeout_s=1.0, max_retries=1),
        )

    return build


def test_serve_benchmark():
    requests = make_traffic("zipfian", CLOSED_REQUESTS, seed=0)
    closed = run_closed_loop(_factory("pmod"), requests, concurrency=32)
    assert closed.ok == CLOSED_REQUESTS, closed.statuses

    open_requests = make_traffic("zipfian", OPEN_REQUESTS, seed=0)
    admission = AdmissionConfig(rate=10000.0, burst=128,
                                max_queue_depth=512)
    per_scheme = {}
    for scheme in SCHEMES:
        report = run_open_loop(_factory(scheme, admission), open_requests,
                               rate_rps=OPEN_RATE_RPS, arrival="bursty",
                               seed=0)
        assert sum(report.statuses.values()) == OPEN_REQUESTS
        assert report.statuses.get("dropped", 0) == 0
        per_scheme[scheme] = report.as_dict()

    print()
    print(f"closed loop (pmod, 32 clients): "
          f"{closed.throughput_rps:,.0f} rsp/s, "
          f"p99 {closed.latency['p99'] * 1e3:.2f} ms, "
          f"mean batch {closed.mean_batch_size:.2f}")
    for scheme, payload in per_scheme.items():
        latency = payload["latency"]
        print(f"open loop {scheme:<12} p50 {latency['p50'] * 1e3:6.2f} ms  "
              f"p99 {latency['p99'] * 1e3:6.2f} ms  "
              f"reject {payload['reject_rate'] * 100:5.1f}%  "
              f"batch {payload['mean_batch_size']:.2f}")

    BENCH_PATH.write_text(json.dumps({
        "bench": "serve",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "n_shards": N_SHARDS,
        "shard_capacity": SHARD_CAPACITY,
        "closed_loop": {"scheme": "pmod", "concurrency": 32,
                        **closed.as_dict()},
        "open_loop": {"rate_rps": OPEN_RATE_RPS, "arrival": "bursty",
                      "schemes": per_scheme},
    }, indent=1) + "\n")
    print(f"wrote {BENCH_PATH}")

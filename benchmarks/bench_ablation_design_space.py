"""Ablation: indexing scheme x associativity design space.

Quantifies the paper's Section 5.2 argument from the other side:
"increasing cache associativity without increasing the cache size is
not an effective method to eliminate conflict misses" — while changing
the indexing function at constant geometry is.
"""

from repro.experiments import design_space
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_ablation_design_space(benchmark):
    points = benchmark.pedantic(
        design_space.run,
        args=("tree", RunConfig(scale=BENCH_SCALE)),
        kwargs=dict(associativities=(1, 2, 4, 8)),
        rounds=1, iterations=1,
    )
    print()
    print(design_space.render("tree", points))
    by_key = {(p.indexing, p.assoc): p for p in points}
    # A better index at 1 way beats the traditional index at 8 ways.
    assert by_key[("pmod", 1)].l2_misses < \
        by_key[("traditional", 8)].l2_misses
    # More ways barely help the traditional index on tree.
    assert by_key[("traditional", 8)].l2_misses > \
        by_key[("traditional", 4)].l2_misses * 0.85
    # pMod and pDisp track each other once there is any associativity
    # to absorb near-collisions.  Direct-mapped is the exception: with
    # 8192 physical sets pMod's modulus is the Mersenne prime 8191, and
    # tree's page-aligned nodes sit at 64-block multiples — since
    # 64 * 128 = 8192 ≡ 1 (mod 8191), pages 128 apart land one set
    # apart and adjacent hot lines collide, which only ≥2 ways hide.
    for assoc in (2, 4, 8):
        ratio = (by_key[("pdisp", assoc)].l2_misses
                 / max(1, by_key[("pmod", assoc)].l2_misses))
        assert 0.8 < ratio < 1.25
    assert by_key[("pmod", 1)].l2_misses > by_key[("pdisp", 1)].l2_misses

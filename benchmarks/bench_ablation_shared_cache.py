"""Ablation: shared-L2 multiprogramming under the indexing schemes."""

from repro.experiments import shared_cache
from repro.experiments.common import RunConfig

from conftest import BENCH_SCALE


def test_ablation_shared_cache(benchmark):
    rows = benchmark.pedantic(
        shared_cache.run,
        kwargs=dict(pairs=(("tree", "swim"), ("mcf", "lu")),
                    config=RunConfig(scale=BENCH_SCALE),
                    schemes=("base", "pmod", "pdisp")),
        rounds=1, iterations=1,
    )
    print()
    print(shared_cache.render(rows))
    by_key = {(r.pair, r.scheme): r for r in rows}
    # The conflict victims keep their win while timesharing...
    assert by_key[(("tree", "swim"), "pmod")].combined_misses < \
        by_key[(("tree", "swim"), "base")].combined_misses * 0.8
    # ...and no scheme amplifies cross-program interference wildly.
    for r in rows:
        assert r.interference_factor < 2.0, (r.pair, r.scheme)

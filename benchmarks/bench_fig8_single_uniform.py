"""Figure 8 bench: single-hash execution times, uniform apps."""

from repro.experiments import single_hash
from repro.experiments.single_hash import SINGLE_HASH_SCHEMES, build_figure
from repro.workloads import UNIFORM_APPS


def test_fig8_single_hash_uniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 8", UNIFORM_APPS, SINGLE_HASH_SCHEMES, store),
        rounds=1, iterations=1,
    )
    print()
    print(single_hash.render(figure))
    # Prime hashing must not slow any uniform application materially
    # (paper: worst case -2% on sparse).
    for app in figure.apps:
        assert figure.speedup(app, "pmod") > 0.95, app
        assert figure.speedup(app, "pdisp") > 0.95, app
    assert 0.97 < figure.average_speedup("pmod") < 1.05

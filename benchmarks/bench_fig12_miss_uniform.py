"""Figure 12 bench: normalized L2 misses, uniform apps — prime hashing
must be pathology-resistant where the skewed cache is not."""

from repro.experiments import miss_reduction
from repro.experiments.miss_reduction import build_figure
from repro.workloads import UNIFORM_APPS


def test_fig12_miss_reduction_uniform(benchmark, store):
    figure = benchmark.pedantic(
        build_figure,
        args=("Figure 12", UNIFORM_APPS, store),
        rounds=1, iterations=1,
    )
    print()
    print(miss_reduction.render(figure))
    for app in figure.apps:
        assert figure.normalized[app]["pmod"] < 1.10, app
        assert figure.normalized[app]["pdisp"] < 1.10, app
    inflated = [a for a in figure.apps
                if figure.normalized[a]["skw+pdisp"] > 1.02]
    print(f"skw+pDisp inflates misses on: {inflated}")
    assert len(inflated) >= 1

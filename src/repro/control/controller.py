"""The observe → decide → apply remediation loop.

:class:`RemediationController` is deliberately a *polled* controller,
matching the :class:`~repro.obs.health.SloEngine` it consumes: each
:meth:`RemediationController.step` evaluates the health layer, reads
the journal's fault stream since its cursor, decides a (possibly
empty) list of :class:`Action`\\ s, and applies them through the
store's epoch machinery.  There is no background thread — the drill,
a serving loop, or a cron tick calls ``step()``; everything the
controller did is reconstructable from the journal.

Decision rules (in priority order):

0. **Down nodes** (clustered deployments only) — fresh
   ``cluster.node_down`` journal events quarantine the dead node at the
   cluster router's outer level, shifting its key range to the ring
   successors.  Blast radius is hierarchical: at most **one node per
   step**, and never past ``max_quarantine_fraction`` of the ring.
1. **Stalled shards** — an active fast-window page on the latency SLO
   *and* fresh ``serve.fault.stall`` events since the last step name
   the shard ids to quarantine.  Both signals are required: stall
   events without a page mean the fault policy is absorbing the damage
   (no action needed), a page without stall events has no target.
2. **Adversarial skew** — the detector's
   :meth:`~repro.obs.health.HashQualityDetector.grade_adversary` alarm
   pages on the store's current scheme and a :class:`KeyRotator` is
   configured: rotate the secret.  A reshard onto another public
   scheme would only hand the attacker a new map to crack; a fresh
   secret invalidates everything the probes learned at once.  When the
   alarm resolves after the rotation, the controller journals
   ``adversary.mitigated`` closing the loop.
3. **Drift** — the detector holds a trip for the store's *current*
   scheme: reshard onto ``config.target_scheme`` (or, if the store
   already runs the target scheme, grow one ladder rung — more shards
   is the remaining lever).
4. **Capacity** — an active page on the reject-rate SLO grows the
   shard count one rung up the scheme's ladder.

Each reshard action runs its migration to completion inside
:meth:`~RemediationController.apply` (bounded-budget chunks via
:class:`~repro.store.Migrator`), so a step returns with the store
already on the new epoch and serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import Journal, MetricsRegistry, get_journal, get_registry
from repro.obs.health import (
    AdversaryStatus,
    Alert,
    DriftStatus,
    HashQualityDetector,
    SloEngine,
)
from repro.control.rotation import KeyRotator
from repro.store import Migrator, ShardedStore
from repro.store.migrate import DEFAULT_MOVE_BUDGET

__all__ = ["Action", "ControlConfig", "Observation", "RemediationController"]


@dataclass(frozen=True)
class ControlConfig:
    """Tunables for one controller.

    Attributes:
        target_scheme: scheme a drift trip reshard lands on (pMod — the
            paper's prime-modulo fix — unless overridden).
        latency_slo: SLO name whose fast page gates quarantining.
        reject_slo: SLO name whose page triggers a capacity grow.
        migration_budget: per-chunk key budget for controller-run
            migrations.
        max_quarantine_fraction: ceiling on the quarantined share of
            the fleet — the controller must never route around so many
            shards that the survivors become the hot spot.
        node_capacity: shards per node in a clustered deployment.  When
            set, the quarantine blast radius becomes *hierarchical*: no
            single step may quarantine more than one node's worth of
            shard capacity, however many shard ids the fault stream
            names — a correlated burst (one dying node stalling every
            shard behind it) degrades capacity one node at a time, with
            a re-observe between steps, instead of in one swing.
    """

    target_scheme: str = "pmod"
    latency_slo: str = "serve-p99-latency"
    reject_slo: str = "serve-reject-rate"
    migration_budget: int = DEFAULT_MOVE_BUDGET
    max_quarantine_fraction: float = 0.5
    node_capacity: Optional[int] = None

    def __post_init__(self):
        if self.migration_budget < 1:
            raise ValueError("migration_budget must be positive")
        if not 0.0 < self.max_quarantine_fraction <= 1.0:
            raise ValueError(
                "max_quarantine_fraction must be within (0, 1]")
        if self.node_capacity is not None and self.node_capacity < 1:
            raise ValueError("node_capacity must be >= 1 when set")


@dataclass(frozen=True)
class Action:
    """One decided remediation, before/after application."""

    kind: str  #: "quarantine" | "node_quarantine" | "key_rotation" | "scheme_swap" | "grow" | "shrink"
    reason: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "reason": self.reason,
                "detail": dict(self.detail)}


@dataclass(frozen=True)
class Observation:
    """One step's gathered evidence."""

    alerts: List[Alert]
    tripped: List[DriftStatus]
    stalled_shards: List[int]
    down_nodes: List[int] = field(default_factory=list)
    adversary: List[AdversaryStatus] = field(default_factory=list)

    def paging(self, slo: str) -> bool:
        """Whether ``slo`` has an active fast-window (paging) alert."""
        return any(a.slo == slo and a.window == "fast" for a in self.alerts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "alerts": [a.as_dict() for a in self.alerts],
            "tripped": [t.as_dict() for t in self.tripped],
            "stalled_shards": list(self.stalled_shards),
            "down_nodes": list(self.down_nodes),
            "adversary": [a.as_dict() for a in self.adversary],
        }


class RemediationController:
    """Polled controller wiring health signals to routing actions.

    Args:
        store: the store to remediate.
        slo_engine: burn-rate engine to evaluate each step.
        detector: drift detector to evaluate each step (optional).
        config: decision tunables.
        journal: event stream read (fault events) and written
            (``control.*`` events); process-global by default.
        registry: metrics registry for the ``control.*`` counters.
        cluster: optional :class:`~repro.cluster.Cluster`; when given,
            fresh ``cluster.node_down`` journal events become
            node-granularity quarantine actions (route the whole node's
            traffic to its ring successors, one node per step).
        rotator: optional :class:`KeyRotator`; when given (keyed
            schemes only), each observe also grades the store's
            telemetry through the detector's adversary mode, and an
            active ``health.adversary`` page on the current scheme
            becomes a ``key_rotation`` action.
        federation: optional :class:`~repro.obs.fed.Federation`; when
            given, every observe first collects a fresh cluster-wide
            merge and rebinds the SLO engine (and detector) onto it,
            so decisions run on federated quantiles instead of
            whatever single process the engine was built against.
    """

    def __init__(self, store: ShardedStore, slo_engine: SloEngine,
                 detector: Optional[HashQualityDetector] = None,
                 config: Optional[ControlConfig] = None,
                 journal: Optional[Journal] = None,
                 registry: Optional[MetricsRegistry] = None,
                 cluster=None, rotator: Optional[KeyRotator] = None,
                 federation=None):
        self.store = store
        self.slo_engine = slo_engine
        self.detector = detector
        self.config = config or ControlConfig()
        self._journal = journal
        self._registry = registry
        self.cluster = cluster
        self.rotator = rotator
        self.federation = federation
        #: schemes rotated for an adversary page whose resolution has
        #: not yet been journaled as ``adversary.mitigated``.
        self._awaiting_mitigation: set = set()
        #: schemes whose mitigation was journaled in the current step
        #: (one-step drift-rule grace; reset every observe).
        self._just_mitigated: set = set()
        #: journal seq cursor: fault events at or below it are consumed.
        self._fault_cursor = -1
        #: journal seq cursor for ``cluster.node_down`` events.
        self._node_cursor = -1
        self.steps = 0
        self.applied: List[Action] = []

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- observe -------------------------------------------------------

    def observe(self) -> Observation:
        """Evaluate the health layer and drain fresh fault events."""
        if self.federation is not None:
            now_s = (self.cluster.virtual_now_s
                     if self.cluster is not None else 0.0)
            merged = self.federation.collect(now_s)
            self.slo_engine.rebind(merged)
            if self.detector is not None:
                self.detector.rebind(merged)
        self.slo_engine.evaluate()
        if self.detector is not None:
            if self.rotator is not None:
                # Adversary mode needs the heavy-hitter rows, not just
                # published gauges — grade the live snapshot.  Grading
                # first also publishes this window's balance gauges, so
                # the drift evaluate below sees current skew, not last
                # step's (a rotation would otherwise leave a stale
                # attack-era trip behind for one extra step).
                self.detector.grade_adversary(self.store.telemetry())
            self.detector.evaluate()
        stalled: List[int] = []
        seen = set()
        cursor = self._fault_cursor
        for event in self.journal.find("serve.fault.stall"):
            if event.seq <= self._fault_cursor:
                continue
            cursor = max(cursor, event.seq)
            queue_id = event.fields.get("queue_id")
            if isinstance(queue_id, int) and queue_id not in seen:
                seen.add(queue_id)
                stalled.append(queue_id)
        self._fault_cursor = cursor
        down_nodes: List[int] = []
        if self.cluster is not None:
            seen_nodes = set()
            node_cursor = self._node_cursor
            for event in self.journal.find("cluster.node_down"):
                if event.seq <= self._node_cursor:
                    continue
                node_cursor = max(node_cursor, event.seq)
                node_id = event.fields.get("node")
                if isinstance(node_id, int) and node_id not in seen_nodes:
                    seen_nodes.add(node_id)
                    down_nodes.append(node_id)
            self._node_cursor = node_cursor
        tripped = self.detector.tripped() if self.detector is not None else []
        adversary = (self.detector.adversary_tripped()
                     if self.detector is not None else [])
        still_paging = {status.scheme for status in adversary}
        self._just_mitigated = set()
        for scheme in sorted(self._awaiting_mitigation - still_paging):
            self._awaiting_mitigation.discard(scheme)
            self._just_mitigated.add(scheme)
            self.journal.emit("adversary.mitigated", scheme=scheme,
                              epoch=self.store.epoch,
                              rotations=(self.rotator.rotations
                                         if self.rotator else 0))
        return Observation(alerts=self.slo_engine.active_alerts(),
                           tripped=list(tripped),
                           stalled_shards=stalled,
                           down_nodes=down_nodes,
                           adversary=list(adversary))

    # -- decide --------------------------------------------------------

    def _quarantine_candidates(self, shard_ids: Sequence[int]) -> List[int]:
        """Valid, novel shard ids that fit under the quarantine caps.

        Two ceilings compose hierarchically: the fleet-wide fraction
        (``max_quarantine_fraction``, the survivors-stay-viable bound)
        and, when ``node_capacity`` is set, a per-*step* bound of one
        node's worth of shards — a correlated fault burst never takes
        out more than one node of capacity per observe/decide cycle.
        """
        table = self.store.routing
        candidates = [s for s in shard_ids
                      if 0 <= s < table.n_shards
                      and s not in table.quarantined]
        cap = int(table.n_shards * self.config.max_quarantine_fraction)
        room = max(0, cap - len(table.quarantined))
        if self.config.node_capacity is not None:
            room = min(room, self.config.node_capacity)
        return candidates[:room]

    def _node_quarantine_candidates(self,
                                    node_ids: Sequence[int]) -> List[int]:
        """Valid, novel node ids — blast radius one node per step, and
        never so many that the live ring drops below half."""
        if self.cluster is None:
            return []
        table = self.cluster.router.node_table
        candidates = [n for n in node_ids
                      if 0 <= n < table.n_shards
                      and n not in table.quarantined]
        cap = int(table.n_shards * self.config.max_quarantine_fraction)
        room = max(0, cap - len(table.quarantined))
        return candidates[:min(room, 1)]

    def decide(self, observation: Observation) -> List[Action]:
        """Map one observation to remediation actions (may be empty)."""
        actions: List[Action] = []
        if observation.down_nodes:
            nodes = self._node_quarantine_candidates(observation.down_nodes)
            if nodes:
                actions.append(Action(
                    kind="node_quarantine",
                    reason=(f"cluster.node_down events for nodes "
                            f"{sorted(observation.down_nodes)}; "
                            f"quarantining {nodes} (one node per step)"),
                    detail={"nodes": nodes}))
        if (observation.stalled_shards
                and observation.paging(self.config.latency_slo)):
            shards = self._quarantine_candidates(observation.stalled_shards)
            if shards:
                actions.append(Action(
                    kind="quarantine",
                    reason=(f"fast-window page on "
                            f"{self.config.latency_slo} with stall "
                            f"events on shards {shards}"),
                    detail={"shards": shards}))
        current_scheme = self.store.scheme
        if self.rotator is not None:
            for status in observation.adversary:
                if status.scheme != current_scheme:
                    continue
                actions.append(Action(
                    kind="key_rotation",
                    reason=(f"health.adversary page on {current_scheme}: "
                            f"tail load {status.tail_load:.2f} >= "
                            f"{status.tail_max:g} with hot-key share "
                            f"{status.hot_key_share:.2f} >= "
                            f"{status.share_min:g}"),
                    detail={"scheme": current_scheme,
                            "tail_load": status.tail_load,
                            "hot_key_share": status.hot_key_share}))
                break  # one routing change per step
        if any(a.kind == "key_rotation" for a in actions):
            return actions  # the rotation IS this step's routing change
        for status in observation.tripped:
            if status.scheme != current_scheme:
                continue
            if (self.rotator is not None and self.detector is not None
                    and (self.detector.adversary_streak(current_scheme)
                         or current_scheme in self._awaiting_mitigation
                         or current_scheme in self._just_mitigated)):
                # Skew with an adversary verdict in flight (streak
                # building, rotation fired but not yet re-graded clean,
                # or mitigation confirmed this very step) is attack
                # residue, not organic drift — a scheme swap here would
                # abandon the keyed defense for a public map the
                # attacker can re-crack.  Hold fire; the adversary rule
                # owns this, and skew that *persists* past the grace
                # step reaches this rule on the next one.
                continue
            if current_scheme != self.config.target_scheme:
                actions.append(Action(
                    kind="scheme_swap",
                    reason=(f"drift trip on {current_scheme} "
                            f"(balance {status.balance:.2f} > "
                            f"{status.balance_max:g})"),
                    detail={"from_scheme": current_scheme,
                            "to_scheme": self.config.target_scheme}))
            else:
                actions.append(Action(
                    kind="grow",
                    reason=(f"drift trip on target scheme "
                            f"{current_scheme}; spreading load up the "
                            f"ladder"),
                    detail={"from_n_shards": self.store.n_shards}))
            break  # one routing change per step
        if (not any(a.kind in ("scheme_swap", "grow") for a in actions)
                and observation.paging(self.config.reject_slo)):
            actions.append(Action(
                kind="grow",
                reason=f"fast-window page on {self.config.reject_slo}",
                detail={"from_n_shards": self.store.n_shards}))
        return actions

    # -- apply ---------------------------------------------------------

    def _reshard_to(self, table) -> Dict[str, Any]:
        self.store.begin_reshard(table)
        report = Migrator(self.store, budget=self.config.migration_budget,
                          registry=self.registry).run()
        self.registry.counter("control.reshards").inc()
        return report.as_dict()

    def apply(self, action: Action) -> Action:
        """Execute one action against the store; returns the action
        enriched with the outcome in ``detail``."""
        registry = self.registry
        detail = dict(action.detail)
        if action.kind == "quarantine":
            table = self.store.quarantine(detail["shards"])
            registry.counter("control.quarantines").inc()
            self.journal.emit("control.quarantine",
                              shards=list(detail["shards"]),
                              epoch=table.epoch_id,
                              quarantined=sorted(table.quarantined),
                              reason=action.reason)
            detail["epoch"] = table.epoch_id
        elif action.kind == "node_quarantine":
            router = self.cluster.quarantine_node(detail["nodes"])
            registry.counter("control.node_quarantines").inc()
            self.journal.emit("control.node_quarantine",
                              nodes=list(detail["nodes"]),
                              epoch=router.epoch,
                              quarantined=sorted(router.quarantined_nodes),
                              reason=action.reason)
            detail["epoch"] = router.epoch
        elif action.kind == "key_rotation":
            if self.rotator is None:
                raise ValueError("key_rotation action without a rotator")
            detail["rotation"] = self.rotator.rotate(reason=action.reason)
            self._awaiting_mitigation.add(detail["rotation"]["scheme"])
        elif action.kind == "scheme_swap":
            table = self.store.routing.reschemed(detail["to_scheme"])
            detail["migration"] = self._reshard_to(table)
            registry.counter("control.scheme_swaps").inc()
        elif action.kind == "grow":
            detail["migration"] = self._reshard_to(self.store.routing.grown())
            detail["to_n_shards"] = self.store.n_shards
        elif action.kind == "shrink":
            detail["migration"] = self._reshard_to(self.store.routing.shrunk())
            detail["to_n_shards"] = self.store.n_shards
        else:
            raise ValueError(f"unknown action kind {action.kind!r}")
        registry.counter("control.actions").inc()
        applied = Action(kind=action.kind, reason=action.reason,
                         detail=detail)
        self.journal.emit("control.action", action=applied.kind,
                          reason=applied.reason,
                          epoch=self.store.epoch,
                          scheme=self.store.scheme,
                          n_shards=self.store.n_shards)
        self.applied.append(applied)
        return applied

    # -- the loop ------------------------------------------------------

    def step(self) -> List[Action]:
        """One observe → decide → apply cycle; returns applied actions."""
        self.steps += 1
        self.registry.counter("control.evaluations").inc()
        observation = self.observe()
        return [self.apply(action) for action in self.decide(observation)]

    def shrink(self, reason: str = "operator request") -> Action:
        """Explicit one-rung shrink (not reachable from ``decide`` —
        scale-down is an operator/policy call, not an alert reflex)."""
        return self.apply(Action(kind="shrink", reason=reason,
                                 detail={"from_n_shards":
                                         self.store.n_shards}))

    def __repr__(self) -> str:
        return (f"RemediationController(steps={self.steps}, "
                f"applied={len(self.applied)}, "
                f"store={self.store.scheme}/{self.store.n_shards}"
                f"@e{self.store.epoch})")

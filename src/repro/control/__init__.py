"""`repro.control` — the remediation controller closing the
detect→remediate loop.

The health layer (:mod:`repro.obs.health`) can *detect* a sick store —
burn-rate pages, hash-quality drift verdicts, stalled-shard fault
events on the journal — but until this package nothing could *act* on
the detection.  :class:`RemediationController` consumes exactly those
signals and drives the epoch-versioned routing machinery
(:mod:`repro.store.routing`, :meth:`repro.store.ShardedStore.
begin_reshard`, :class:`repro.store.Migrator`) to remediate live:

* **quarantine** — a fast-window latency page plus fresh
  ``serve.fault.stall`` journal events names the stalled shards; the
  controller routes around them without dropping the store;
* **scheme swap** — a :class:`~repro.obs.health.HashQualityDetector`
  drift trip on the store's scheme triggers an online reshard onto the
  configured target scheme (pMod by default — the paper's fix for
  conflict pile-ups, applied as an operational action);
* **grow / shrink** — capacity pages walk the shard count along the
  scheme's ladder (:func:`repro.store.ladder_up` — the *prime* ladder
  for pMod via :func:`repro.mathutil.next_prime`);
* **key rotation** — the detector's adversarial-skew page
  (``health.adversary``, fed by the store's heavy-hitter top-K) fires
  a :class:`KeyRotator`: a fresh secret for the keyed scheme, applied
  through the same dual-epoch migration, invalidating everything a
  :mod:`repro.adversary` probe campaign learned without losing a key.

Every decision lands on the journal (``control.action`` /
``control.quarantine``) and the pre-declared ``control.*`` counters, so
the loop's behavior is as observable as the symptoms it reacts to.
"""

from repro.control.controller import (
    Action,
    ControlConfig,
    Observation,
    RemediationController,
)
from repro.control.rotation import KeyRotator, key_fingerprint

__all__ = [
    "Action",
    "ControlConfig",
    "KeyRotator",
    "Observation",
    "RemediationController",
    "key_fingerprint",
]

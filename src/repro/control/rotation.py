"""Secret rotation for keyed schemes: new key, epoch migration.

Keyed indexing (:mod:`repro.hashing.keyed`) makes the key→shard map
secret-dependent, but a patient bucketing attacker can still learn it
one key at a time (:mod:`repro.adversary`).  The answer is not a
stronger hash — it is *rotation*: derive a fresh secret, route the
next epoch with it, and everything the attacker paid thousands of
probes to learn is worthless at once, while every stored key survives
via the same dual-epoch migration path a reshard uses.

:class:`KeyRotator` packages that move: mint a fresh 64-bit secret
(from its own deterministic stream, so drills reproduce),
:meth:`~repro.store.routing.RoutingTable.rekeyed` the routing table,
and run the :class:`~repro.store.Migrator` to completion.  It journals
``control.key_rotation`` with a *fingerprint* of the new secret — the
raw key never leaves the selector, least of all onto a log stream an
attacker might read.

The :class:`~repro.control.RemediationController` fires a rotation
when the :meth:`~repro.obs.health.HashQualityDetector.grade_adversary`
alarm pages (see the ``key_rotation`` decision rule), but operators
can rotate on schedule too — :meth:`KeyRotator.rotate` is just a
method call.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Optional

from repro.obs import Journal, MetricsRegistry, get_journal, get_registry
from repro.store import Migrator, ShardedStore
from repro.store.migrate import DEFAULT_MOVE_BUDGET

__all__ = ["KeyRotator", "key_fingerprint"]


def key_fingerprint(key: int) -> str:
    """Short non-invertible digest of a secret, safe to journal."""
    digest = hashlib.blake2b(
        int(key).to_bytes(16, "little", signed=False), digest_size=4)
    return digest.hexdigest()


class KeyRotator:
    """Rotates a keyed store's secret through an epoch migration.

    Args:
        store: the store to rotate.  Its scheme must be keyed (its
            selector exposes a ``key``) — checked at construction, not
            at the moment an attack is already underway.
        seed: seeds the rotator's private secret stream; two rotators
            with the same seed mint the same key sequence, which keeps
            attack/defense drills replayable.
        migration_budget: per-chunk key budget for the rotation's
            migration.
        registry: metrics override (defaults to the global registry).
        journal: journal override (defaults to the global journal).
    """

    def __init__(self, store: ShardedStore, seed: int = 0,
                 migration_budget: int = DEFAULT_MOVE_BUDGET,
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None):
        if store.routing.selector.key is None:
            raise ValueError(
                f"scheme {store.scheme!r} is not keyed; only keyed "
                f"schemes can rotate secrets")
        if migration_budget < 1:
            raise ValueError("migration_budget must be positive")
        self.store = store
        self.migration_budget = migration_budget
        self._registry = registry
        self._journal = journal
        self._rng = random.Random(seed)
        self.rotations = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    def rotate(self, reason: str = "operator request") -> Dict[str, Any]:
        """Mint a fresh secret, migrate onto it, journal the move.

        Returns a report dict: the new epoch, the new secret's
        fingerprint, and the completed migration's summary.  The store
        is serving on the new epoch when this returns; no stored key
        is lost (the migration moves every record, and the drill tests
        assert it).
        """
        new_key = self._rng.getrandbits(64) | 1  # never the zero key
        table = self.store.routing.rekeyed(new_key)
        self.store.begin_reshard(table)
        migration = Migrator(self.store, budget=self.migration_budget,
                             registry=self.registry).run()
        self.rotations += 1
        fingerprint = key_fingerprint(new_key)
        self.registry.counter("control.key_rotations").inc()
        self.journal.emit("control.key_rotation",
                          scheme=self.store.scheme,
                          epoch=table.epoch_id,
                          key_fingerprint=fingerprint,
                          moved=migration.moved,
                          reason=reason)
        return {
            "epoch": table.epoch_id,
            "scheme": self.store.scheme,
            "key_fingerprint": fingerprint,
            "migration": migration.as_dict(),
        }

    def __repr__(self) -> str:
        return (f"KeyRotator(rotations={self.rotations}, "
                f"store={self.store.scheme}/{self.store.n_shards}"
                f"@e{self.store.epoch})")

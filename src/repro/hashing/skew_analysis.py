"""Skewed-cache quality metrics.

Section 3.3: "cache blocks that are mapped to the same set in one bank
are most likely not to map to the same set in the other banks."  That
property — *inter-bank dispersion* — is what lets a skewed cache break
conflicts a single hash cannot.  This module measures it, plus a
conflict-diagnosis helper that names the blocks fighting over the
hottest sets of any indexing function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.hashing.base import BankIndexingFamily, IndexingFunction


@dataclass(frozen=True)
class DispersionReport:
    """Inter-bank dispersion of a skewed hashing family.

    Attributes:
        same_set_pair_rate: probability that a pair colliding in one
            bank also collides in another (0 = perfect dispersion; a
            single repeated hash would give 1).
        pairs_tested: number of colliding pairs examined.
    """

    same_set_pair_rate: float
    pairs_tested: int

    @property
    def disperses(self) -> bool:
        """True when cross-bank collisions are rare (< 5%)."""
        return self.same_set_pair_rate < 0.05


def inter_bank_dispersion(family: BankIndexingFamily,
                          n_samples: int = 20000,
                          seed: int = 0) -> DispersionReport:
    """Measure how often bank-0 conflicts persist in the other banks.

    Samples random block-address pairs that collide in bank 0 and
    counts how many also collide in at least one other bank.
    """
    if n_samples < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 32, size=n_samples, dtype=np.uint64)
    bank0 = np.fromiter(
        (family.bank_index(0, int(a)) for a in addresses),
        dtype=np.int64, count=n_samples,
    )
    # Group by bank-0 set; pair up consecutive members of each group.
    order = np.argsort(bank0, kind="stable")
    sorted_sets = bank0[order]
    same = sorted_sets[:-1] == sorted_sets[1:]
    first = addresses[order[:-1][same]]
    second = addresses[order[1:][same]]
    pairs = len(first)
    if pairs == 0:
        return DispersionReport(same_set_pair_rate=0.0, pairs_tested=0)
    collisions = 0
    for a, b in zip(first.tolist(), second.tolist()):
        for bank in range(1, family.n_banks):
            if family.bank_index(bank, a) == family.bank_index(bank, b):
                collisions += 1
                break
    return DispersionReport(same_set_pair_rate=collisions / pairs,
                            pairs_tested=pairs)


@dataclass(frozen=True)
class ConflictGroup:
    """The blocks crowding one set under some indexing function."""

    set_index: int
    accesses: int
    blocks: tuple  #: distinct block addresses mapped here, most-accessed first

    @property
    def pressure(self) -> int:
        """Distinct blocks competing for the set's ways."""
        return len(self.blocks)


def top_conflict_sets(indexing: IndexingFunction,
                      block_addresses: np.ndarray,
                      top: int = 5,
                      max_blocks_listed: int = 16) -> List[ConflictGroup]:
    """The most access-crowded sets and the blocks fighting over them.

    A diagnosis aid: point it at a trace and it names the addresses —
    hence, with a memory map, the data structures — responsible for the
    conflict misses an indexing function suffers.
    """
    if top < 1:
        raise ValueError("top must be positive")
    blocks = np.asarray(block_addresses, dtype=np.uint64)
    sets = indexing.index_array(blocks)
    counts = np.bincount(sets, minlength=indexing.n_sets)
    hottest = np.argsort(counts)[::-1][:top]
    groups = []
    for set_index in hottest:
        if counts[set_index] == 0:
            break
        members = blocks[sets == set_index]
        uniques, member_counts = np.unique(members, return_counts=True)
        ranked = uniques[np.argsort(member_counts)[::-1]]
        groups.append(ConflictGroup(
            set_index=int(set_index),
            accesses=int(counts[set_index]),
            blocks=tuple(int(b) for b in ranked[:max_blocks_listed]),
        ))
    return groups

"""Prime modulo indexing (the paper's *pMod*, Section 3.1)."""

from __future__ import annotations

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing
from repro.mathutil import largest_prime_below


@register_indexing("pmod")
class PrimeModuloIndexing(IndexingFunction):
    """``H(a) = a mod n_set`` with ``n_set`` the largest prime below the
    physical set count.

    Ideal balance for every stride not a multiple of ``n_set``, and
    sequence invariant, hence ideal concentration — the combination no
    other evaluated function achieves (paper Table 2).  The physical
    sets ``n_set .. n_set_phys - 1`` are never used; that fragmentation
    is Table 1 and is negligible for L2-sized caches.

    The functional result here is plain ``%``; the shift/add hardware
    that computes the same value without division is modeled bit-exactly
    in :mod:`repro.hardware` and tested equivalent.
    """

    name = "pMod"

    def __init__(self, n_sets_physical: int, n_sets: int = None):
        super().__init__(n_sets_physical)
        if n_sets is None:
            n_sets = largest_prime_below(n_sets_physical)
        if not 0 < n_sets <= n_sets_physical:
            raise ValueError(
                f"n_sets={n_sets} must be in (0, {n_sets_physical}]"
            )
        self.n_sets = n_sets
        self.delta = n_sets_physical - n_sets

    def index(self, block_address: int) -> int:
        return block_address % self.n_sets

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        return (a % np.uint64(self.n_sets)).astype(np.int64)

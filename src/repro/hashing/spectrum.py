"""Stride-spectrum analysis: predicting conflict behavior from a trace.

The paper's whole analysis is organized around strided access patterns
(Section 2.2: "Most applications, even some irregular applications,
often have strided access patterns").  This module extracts a trace's
dominant block-level strides and scores each indexing function against
that spectrum — letting a user predict, before simulating, whether
their workload will benefit from prime hashing:

>>> spectrum = stride_spectrum(trace.block_addresses(64))
>>> scores = score_indexings(spectrum, n_sets_physical=2048)

A score near 1.0 means the hash keeps ideal balance on (the weighted
mix of) the trace's strides; large scores flag expected conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.hashing.analysis import balance, concentration, strided_addresses
from repro.hashing.base import IndexingFunction, make_indexing


@dataclass(frozen=True)
class StrideComponent:
    """One dominant stride and its share of the trace's transitions."""

    stride: int     #: block-address delta (absolute value)
    weight: float   #: fraction of transitions exhibiting this stride


def stride_spectrum(block_addresses: np.ndarray, top: int = 8,
                    min_weight: float = 0.01) -> List[StrideComponent]:
    """Dominant strides of a block-address stream.

    Looks at consecutive-access deltas (the pattern the paper's
    Property 1 and 2 act on); zero deltas (same-block reuse) are
    ignored, and signs are folded since set-mapping quality is
    direction-independent.
    """
    blocks = np.asarray(block_addresses, dtype=np.int64)
    if len(blocks) < 2:
        return []
    deltas = np.abs(np.diff(blocks))
    deltas = deltas[deltas > 0]
    if len(deltas) == 0:
        return []
    values, counts = np.unique(deltas, return_counts=True)
    order = np.argsort(counts)[::-1]
    total = counts.sum()
    components = []
    for i in order[:top]:
        weight = counts[i] / total
        if weight < min_weight:
            break
        components.append(StrideComponent(int(values[i]), float(weight)))
    return components


def score_indexings(
    spectrum: Sequence[StrideComponent],
    n_sets_physical: int = 2048,
    keys: Sequence[str] = ("traditional", "xor", "pmod", "pdisp"),
    n_addresses: int = 8192,
    concentration_weight: float = 0.25,
) -> Dict[str, float]:
    """Weighted quality score per indexing function (1.0 = ideal).

    Each dominant stride contributes its balance plus a scaled
    concentration term (the paper's Section 2 pair: bad concentration
    causes pathologies even at ideal balance), weighted by the stride's
    share of the trace.  A first-order predictor that ignores
    interleaving and capacity effects.
    """
    if not spectrum:
        return {key: 1.0 for key in keys}
    total_weight = sum(c.weight for c in spectrum)
    scores = {}
    for key in keys:
        indexing = make_indexing(key, n_sets_physical)
        score = 0.0
        for component in spectrum:
            addrs = strided_addresses(component.stride, n_addresses)
            quality = balance(indexing, addrs)
            if concentration_weight:
                quality += concentration_weight * (
                    concentration(indexing, addrs) / indexing.n_sets
                )
            score += component.weight * quality
        scores[key] = score / total_weight
    return scores


def recommend_indexing(block_addresses: np.ndarray,
                       n_sets_physical: int = 2048) -> str:
    """The registered single-hash key with the best spectrum score.

    Ties (within 2%) break toward ``traditional`` — if the spectrum is
    already well handled, the zero-cost index is the right choice.
    """
    spectrum = stride_spectrum(block_addresses)
    scores = score_indexings(spectrum, n_sets_physical)
    best_key = min(scores, key=scores.get)
    if scores["traditional"] <= scores[best_key] * 1.02:
        return "traditional"
    return best_key

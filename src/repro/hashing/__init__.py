"""Cache indexing (hashing) functions — the paper's core contribution.

Single-hash functions (used by a conventional set-associative cache):

* :class:`TraditionalIndexing` — low index bits (the paper's *Base*).
* :class:`XorIndexing` — ``t ⊕ x`` pseudo-random hashing.
* :class:`PrimeModuloIndexing` — modulo a prime set count (*pMod*).
* :class:`PrimeDisplacementIndexing` — tag-displaced index (*pDisp*).

Multi-hash families (used by a skewed associative cache):

* :class:`SkewedXorFamily` — Seznec's circular-shift XOR (*SKW*).
* :class:`SkewedPrimeDisplacementFamily` — per-bank displacement
  constants (*skw+pDisp*).

Quality metrics from Section 2 live in :mod:`repro.hashing.analysis`.
"""

from repro.hashing.analysis import (
    UniformityReport,
    access_counts,
    balance,
    balance_from_counts,
    chi_square_uniformity,
    concentration,
    concentration_from_sets,
    is_sequence_invariant,
    reuse_distances,
    sequence_invariance_violations,
    strided_addresses,
    uniformity,
)
from repro.hashing.base import (
    BankIndexingFamily,
    IndexingFunction,
    available_indexings,
    make_indexing,
)
from repro.hashing.keyed import (
    DEFAULT_KEY,
    KeyedDisplacementIndexing,
    KeyedMersenneIndexing,
    MERSENNE_EXPONENT,
    MERSENNE_PRIME,
    derive_constants,
    mersenne_fold,
)
from repro.hashing.prime_displacement import (
    DEFAULT_DISPLACEMENT,
    PrimeDisplacementIndexing,
)
from repro.hashing.related import (
    FIBONACCI_MULTIPLIER_64,
    GF2PolynomialIndexing,
    MultiplicativeIndexing,
    XorFoldIndexing,
)
from repro.hashing.prime_modulo import PrimeModuloIndexing
from repro.hashing.skew_analysis import (
    ConflictGroup,
    DispersionReport,
    inter_bank_dispersion,
    top_conflict_sets,
)
from repro.hashing.spectrum import (
    StrideComponent,
    recommend_indexing,
    score_indexings,
    stride_spectrum,
)
from repro.hashing.skewed import (
    PAPER_BANK_DISPLACEMENTS,
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
)
from repro.hashing.traditional import TraditionalIndexing
from repro.hashing.xor import XorIndexing

__all__ = [
    "BankIndexingFamily",
    "ConflictGroup",
    "DEFAULT_DISPLACEMENT",
    "DEFAULT_KEY",
    "DispersionReport",
    "FIBONACCI_MULTIPLIER_64",
    "GF2PolynomialIndexing",
    "IndexingFunction",
    "KeyedDisplacementIndexing",
    "KeyedMersenneIndexing",
    "MERSENNE_EXPONENT",
    "MERSENNE_PRIME",
    "MultiplicativeIndexing",
    "XorFoldIndexing",
    "PAPER_BANK_DISPLACEMENTS",
    "PrimeDisplacementIndexing",
    "PrimeModuloIndexing",
    "SkewedPrimeDisplacementFamily",
    "SkewedXorFamily",
    "StrideComponent",
    "TraditionalIndexing",
    "UniformityReport",
    "XorIndexing",
    "access_counts",
    "available_indexings",
    "balance",
    "balance_from_counts",
    "chi_square_uniformity",
    "concentration",
    "concentration_from_sets",
    "derive_constants",
    "inter_bank_dispersion",
    "is_sequence_invariant",
    "make_indexing",
    "mersenne_fold",
    "recommend_indexing",
    "reuse_distances",
    "score_indexings",
    "stride_spectrum",
    "top_conflict_sets",
    "sequence_invariance_violations",
    "strided_addresses",
    "uniformity",
]

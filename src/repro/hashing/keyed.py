"""Keyed (secret) indexing functions — the defense against hash cracking.

Every scheme in this package is *public*: an adversary who knows the
scheme can compute the key→set map offline and synthesize worst-case
traffic (see :mod:`repro.adversary`, which does exactly that through
the serving API).  The two functions here make the map depend on a
secret key so the only attack left is online probing — and the
:class:`~repro.control.KeyRotator` invalidates whatever the probing
learned by rotating the key through an epoch migration.

* :class:`KeyedMersenneIndexing` (``"keyed"``) — the classic
  ``h(x) = (a·x + b) mod p`` universal hash with ``p = 2^61 − 1`` a
  Mersenne prime, per "The Power of Hashing with Mersenne Primes"
  (PAPERS.md).  Reduction mod ``2^q − 1`` is two shift-adds, so the
  keyed path stays cheap; the vectorized path does the 122-bit product
  in uint64 pieces.  Like pMod it can drive an *exact prime* set count
  (``n_sets=`` a prime below the physical power of two), keeping the
  paper's Eq.1/Eq.2 guarantees on accidental traffic.
* :class:`KeyedDisplacementIndexing` (``"keyed_pdisp"``) — the paper's
  pDisp with the public displacement constant replaced by a secret odd
  61-bit multiplier.  Keeps pDisp's partial sequence invariance
  (Section 3 Property 2) because it is still ``(d·T + x) mod 2^b``
  with ``d`` odd — only now ``d`` is unguessable.

Both carry ``.key`` and ``rekeyed(key)`` so ``ShardSelector`` /
``RoutingTable`` can rotate secrets without knowing the scheme.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing

#: Mersenne exponent: ``p = 2^61 − 1`` is prime and leaves 3 bits of
#: uint64 headroom for the shift-add reduction.
MERSENNE_EXPONENT = 61

#: The Mersenne prime modulus of the keyed hash.
MERSENNE_PRIME = (1 << MERSENNE_EXPONENT) - 1

#: Default secret for registry/factory construction (``make_indexing``
#: takes only a geometry).  A *deployed* defense must pass its own
#: key — a constant published in the repo is no secret.
DEFAULT_KEY = 0x9E3779B97F4A7C15

_M64 = (1 << 64) - 1
_LO31 = (1 << 31) - 1
_LO30 = (1 << 30) - 1


def derive_constants(key: int):
    """Map an arbitrary integer secret to hash constants ``(a, b)``.

    ``a`` is odd, nonzero, and ``< p − 1`` (``| 1`` after reducing mod
    the *even* ``p − 1`` can never reach ``p``); ``b`` is in ``[0, p)``.
    blake2b whitens the key so related secrets (``k``, ``k+1``) yield
    unrelated constants.
    """
    material = hashlib.blake2b(
        (key & ((1 << 128) - 1)).to_bytes(16, "little"),
        digest_size=16).digest()
    a = (int.from_bytes(material[:8], "little") % (MERSENNE_PRIME - 1)) | 1
    b = int.from_bytes(material[8:], "little") % MERSENNE_PRIME
    return a, b


def mersenne_fold(value: int) -> int:
    """``value mod 2^61 − 1`` via shift-add, for ``value < 2^122``."""
    p = MERSENNE_PRIME
    value = (value & p) + (value >> MERSENNE_EXPONENT)
    if value >= p:
        value = (value & p) + (value >> MERSENNE_EXPONENT)
    if value >= p:
        value -= p
    return value


def _fold61_array(values: np.ndarray) -> np.ndarray:
    """Elementwise ``v mod p`` for uint64 ``v`` (one fold suffices:
    ``(v & p) + (v >> 61) < 2^61 + 8``, then one conditional subtract)."""
    p = np.uint64(MERSENNE_PRIME)
    folded = (values & p) + (values >> np.uint64(MERSENNE_EXPONENT))
    return np.where(folded >= p, folded - p, folded)


def _mulmod61_array(multiplier: int, values: np.ndarray) -> np.ndarray:
    """``(multiplier · values) mod p`` without leaving uint64.

    Splits both operands at bit 31 so every partial product fits in 62
    bits, then folds the cross terms back with ``2^61 ≡ 1`` and
    ``2^62 ≡ 2 (mod p)``.  ``values`` must already be ``< p``.
    """
    a_hi = np.uint64(multiplier >> 31)
    a_lo = np.uint64(multiplier & _LO31)
    x_hi = values >> np.uint64(31)
    x_lo = values & np.uint64(_LO31)
    low = a_lo * x_lo                      # < 2^62
    mid = a_lo * x_hi + a_hi * x_lo        # < 2^62
    high = a_hi * x_hi                     # < 2^60
    # a·x = high·2^62 + mid·2^31 + low;  mid·2^31 = (mid >> 30)·2^61 +
    # (mid & (2^30−1))·2^31, and 2^61 ≡ 1, 2^62 ≡ 2 (mod p).  The four
    # terms sum below 2^63 + 2^32, so uint64 cannot wrap.
    total = (low
             + ((mid & np.uint64(_LO30)) << np.uint64(31))
             + (mid >> np.uint64(30))
             + np.uint64(2) * high)
    return _fold61_array(total)


@register_indexing("keyed")
class KeyedMersenneIndexing(IndexingFunction):
    """``H(a) = ((α·a + β) mod 2^61−1) mod n_set`` with secret ``α, β``.

    A strongly universal hash: without the key, any two addresses
    collide with probability ≈ ``1/n_set``, so the GF(2) linear solver
    the adversary uses on traditional/XOR finds no structure, and the
    statistical bucketing fallback learns only per-key facts the next
    rotation erases.  With ``n_sets=`` an exact prime the outer modulus
    keeps pMod's stride guarantees on legitimate traffic.
    """

    name = "keyed"

    def __init__(self, n_sets_physical: int, key: int = DEFAULT_KEY,
                 n_sets: int = None):
        super().__init__(n_sets_physical)
        if n_sets is None:
            n_sets = n_sets_physical
        if not 0 < n_sets <= n_sets_physical:
            raise ValueError(
                f"n_sets={n_sets} must be in (0, {n_sets_physical}]"
            )
        self.n_sets = n_sets
        self.key = int(key)
        self.multiplier, self.offset = derive_constants(self.key)

    def rekeyed(self, key: int) -> "KeyedMersenneIndexing":
        """Same geometry under a fresh secret."""
        return KeyedMersenneIndexing(self.n_sets_physical, key=key,
                                     n_sets=self.n_sets)

    def index(self, block_address: int) -> int:
        x = (block_address & _M64) % MERSENNE_PRIME
        h = mersenne_fold(self.multiplier * x + self.offset)
        return h % self.n_sets

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        x = _fold61_array(a)
        h = _mulmod61_array(self.multiplier, x) + np.uint64(self.offset)
        h = _fold61_array(h)
        return (h % np.uint64(self.n_sets)).astype(np.int64)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n_sets_physical="
                f"{self.n_sets_physical}, n_sets={self.n_sets})")


@register_indexing("keyed_pdisp")
class KeyedDisplacementIndexing(IndexingFunction):
    """pDisp with a secret odd displacement: ``H(a) = (d·T + x) mod 2^b``.

    The same truncated multiply-add as
    :class:`~repro.hashing.prime_displacement.PrimeDisplacementIndexing`
    — one narrow multiplier in hardware — but ``d`` is a keyed 61-bit
    odd constant instead of the published 9.  Inherits pDisp's partial
    sequence invariance (any odd ``d`` is invertible mod ``2^b``), so
    Eq.2 concentration stays near-ideal on legitimate sequential
    traffic while the adversary's solver sees an unknown ``d``.
    """

    name = "keyed-pDisp"

    def __init__(self, n_sets_physical: int, key: int = DEFAULT_KEY):
        super().__init__(n_sets_physical)
        self.key = int(key)
        # derive_constants guarantees the multiplier is odd, which is
        # exactly the invertibility pDisp needs mod 2^b.
        self.displacement, _ = derive_constants(self.key)
        self._mask = n_sets_physical - 1

    def rekeyed(self, key: int) -> "KeyedDisplacementIndexing":
        """Same geometry under a fresh secret."""
        return KeyedDisplacementIndexing(self.n_sets_physical, key=key)

    def index(self, block_address: int) -> int:
        masked = block_address & _M64
        x = masked & self._mask
        tag = masked >> self.index_bits
        return (self.displacement * tag + x) & self._mask

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        x = a & mask
        tag = a >> np.uint64(self.index_bits)
        # uint64 wraparound only discards bits above the mask anyway.
        return ((np.uint64(self.displacement) * tag + x) & mask).astype(
            np.int64)

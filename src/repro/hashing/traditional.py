"""Traditional power-of-two modulo indexing (the paper's *Base*)."""

from __future__ import annotations

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing


@register_indexing("traditional")
class TraditionalIndexing(IndexingFunction):
    """``H(a) = a mod n_set_phys`` — the low index bits of the address.

    Ideal balance only for odd strides; sequence invariant, hence ideal
    concentration whenever balance is ideal (paper Table 2, column 1).
    """

    name = "Base"

    def __init__(self, n_sets_physical: int):
        super().__init__(n_sets_physical)
        self._mask = n_sets_physical - 1

    def index(self, block_address: int) -> int:
        return block_address & self._mask

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        return (np.asarray(block_addresses, dtype=np.uint64) & np.uint64(self._mask)).astype(
            np.int64
        )

"""Prime displacement indexing (the paper's *pDisp*, Section 3.2)."""

from __future__ import annotations

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing

#: The displacement constant the paper uses for the single-hash scheme.
#: 9 is not prime; the paper's footnote 2 notes any odd constant with few
#: set bits works, and 9 = 1001b needs a single extra adder.
DEFAULT_DISPLACEMENT = 9


@register_indexing("pdisp")
class PrimeDisplacementIndexing(IndexingFunction):
    """``H(a) = (p·T + x) mod n_set_phys`` — index displaced by tag times p.

    ``T`` is the full tag (everything above the index bits) and ``x``
    the traditional index bits.  With an odd ``p`` this achieves ideal
    balance for all even strides and most odd strides, and is *partially*
    sequence invariant (all but one set per subsequence), which gives it
    concentration close to pMod's in practice (Section 3.3).

    Hardware is a narrow truncated multiply-add; with ``p = 9`` it is
    one shift and two adds.
    """

    name = "pDisp"

    def __init__(self, n_sets_physical: int, displacement: int = DEFAULT_DISPLACEMENT):
        super().__init__(n_sets_physical)
        if displacement % 2 == 0:
            raise ValueError(
                f"displacement must be odd to be invertible mod 2^k, got {displacement}"
            )
        self.displacement = displacement
        self._mask = n_sets_physical - 1

    def index(self, block_address: int) -> int:
        x = block_address & self._mask
        tag = block_address >> self.index_bits
        return (self.displacement * tag + x) & self._mask

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        x = a & mask
        tag = a >> np.uint64(self.index_bits)
        return ((np.uint64(self.displacement) * tag + x) & mask).astype(np.int64)

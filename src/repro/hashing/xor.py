"""XOR-based pseudo-random indexing (the paper's *XOR* comparator)."""

from __future__ import annotations

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing


@register_indexing("xor")
class XorIndexing(IndexingFunction):
    """``H(a) = t ⊕ x`` where ``t`` is the low tag chunk, ``x`` the index bits.

    The most studied alternative hashing; achieves ideal balance on most
    strides but is never sequence invariant, so its concentration is
    non-ideal — the source of its pathological behavior (Section 3.3).
    """

    name = "XOR"

    def __init__(self, n_sets_physical: int):
        super().__init__(n_sets_physical)
        self._mask = n_sets_physical - 1

    def index(self, block_address: int) -> int:
        x = block_address & self._mask
        t = (block_address >> self.index_bits) & self._mask
        return t ^ x

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        x = a & mask
        t = (a >> np.uint64(self.index_bits)) & mask
        return (t ^ x).astype(np.int64)

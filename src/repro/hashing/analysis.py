"""Hashing-quality metrics from Section 2 of the paper.

*Balance* (Equation 1) measures how evenly a hashing function spreads a
set of distinct addresses over the cache sets — 1.0 is ideal, larger is
worse.  *Concentration* (Equation 2) measures how evenly the sets are
revisited over time — 0.0 is ideal.  The paper's pathological-behavior
analysis rests entirely on these two numbers, plus the *sequence
invariance* property (Property 2) that separates pMod from XOR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.base import IndexingFunction


def access_counts(indexing: IndexingFunction, block_addresses: np.ndarray) -> np.ndarray:
    """Per-set access counts ``b_j`` for a sequence of block addresses."""
    sets = indexing.index_array(np.asarray(block_addresses, dtype=np.uint64))
    return np.bincount(sets, minlength=indexing.n_sets)


def balance_from_counts(counts: np.ndarray, n_accesses: int = None) -> float:
    """Balance (Equation 1) from per-set address counts ``b_j``.

    ``balance = Σ b_j(b_j+1)/2  /  [m/(2·n_set) · (m + 2·n_set − 1)]``

    where ``m`` is the number of (distinct) addresses and ``n_set`` the
    number of sets.  1.0 is the value a perfectly even distribution
    attains; higher means more clustered.
    """
    counts = np.asarray(counts, dtype=np.float64)
    n_set = len(counts)
    if n_set == 0:
        raise ValueError("counts must be non-empty")
    m = float(counts.sum()) if n_accesses is None else float(n_accesses)
    if m <= 0:
        raise ValueError("need at least one access to compute balance")
    numerator = float((counts * (counts + 1.0) / 2.0).sum())
    denominator = m / (2.0 * n_set) * (m + 2.0 * n_set - 1.0)
    return numerator / denominator


def balance(indexing: IndexingFunction, block_addresses: np.ndarray) -> float:
    """Balance of ``indexing`` over a sequence of distinct block addresses."""
    counts = access_counts(indexing, block_addresses)
    return balance_from_counts(counts, n_accesses=len(block_addresses))


def reuse_distances(set_sequence: np.ndarray) -> np.ndarray:
    """Distances ``d_i`` between successive accesses to the same set.

    ``d_i`` is defined for every access that has a later access mapping
    to the same set; the final access to each set has no successor and
    contributes no distance (the paper's formula assumes an unbounded
    sequence; this is the standard finite-sequence reading).
    """
    sets = np.asarray(set_sequence, dtype=np.int64)
    if len(sets) < 2:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    gaps = np.diff(order)
    same_set = sorted_sets[:-1] == sorted_sets[1:]
    return gaps[same_set]


def concentration_from_sets(set_sequence: np.ndarray, n_sets: int) -> float:
    """Concentration (Equation 2) from a sequence of set indices.

    ``concentration = sqrt( Σ (d_i − n_set)² / m )`` — the RMS deviation
    of the revisit distances from their ideal value ``n_set``.  Zero is
    ideal; it penalizes both bursts (d < n_set) and droughts (d > n_set).
    """
    distances = reuse_distances(set_sequence)
    if len(distances) == 0:
        return 0.0
    dev = distances.astype(np.float64) - float(n_sets)
    return float(np.sqrt(np.mean(dev * dev)))


def concentration(indexing: IndexingFunction, block_addresses: np.ndarray) -> float:
    """Concentration of ``indexing`` over a block-address sequence."""
    sets = indexing.index_array(np.asarray(block_addresses, dtype=np.uint64))
    return concentration_from_sets(sets, indexing.n_sets)


def strided_addresses(stride: int, count: int, base: int = 0) -> np.ndarray:
    """The strided block-address sequence used by Figures 5 and 6."""
    if stride == 0:
        raise ValueError("stride must be non-zero")
    if count <= 0:
        raise ValueError("count must be positive")
    return (np.uint64(base) + np.arange(count, dtype=np.uint64) * np.uint64(stride))


def sequence_invariance_violations(
    indexing: IndexingFunction, block_addresses: np.ndarray
) -> int:
    """Count violations of Property 2 (sequence invariance) on a sequence.

    For every pair ``(i, j)`` of consecutive same-set accesses,
    invariance requires the *next* accesses to also collide:
    ``H(a_i) = H(a_j)  ⇒  H(a_{i+1}) = H(a_{j+1})``.  Returns how many
    such pairs break the implication.  A sequence-invariant function
    (traditional, pMod) returns 0 on any sequence.
    """
    addrs = np.asarray(block_addresses, dtype=np.uint64)
    sets = indexing.index_array(addrs)
    if len(sets) < 3:
        return 0
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    same_set = sorted_sets[:-1] == sorted_sets[1:]
    i_pos = order[:-1][same_set]
    j_pos = order[1:][same_set]
    # Successor pairs must exist for both accesses.
    valid = j_pos < len(sets) - 1
    i_next = i_pos[valid] + 1
    j_next = j_pos[valid] + 1
    return int(np.count_nonzero(sets[i_next] != sets[j_next]))


def is_sequence_invariant(
    indexing: IndexingFunction, block_addresses: np.ndarray
) -> bool:
    """True when no access pair violates sequence invariance on the input."""
    return sequence_invariance_violations(indexing, block_addresses) == 0


@dataclass(frozen=True)
class UniformityReport:
    """Result of the paper's Section 4 uniformity classification."""

    ratio: float  #: stdev(f_i) / mean(f_i) over L2 set access counts
    threshold: float  #: classification threshold (paper: 0.5)

    @property
    def non_uniform(self) -> bool:
        """True when the application counts as having non-uniform accesses."""
        return self.ratio > self.threshold


def uniformity(counts: np.ndarray, threshold: float = 0.5) -> UniformityReport:
    """Classify a set-access histogram as uniform or non-uniform.

    The paper calls an application *non-uniform* when the coefficient of
    variation of its per-set L2 access frequencies exceeds 0.5; those
    applications are the ones expected to gain from better hashing.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if len(counts) == 0:
        raise ValueError("counts must be non-empty")
    mean = counts.mean()
    if mean == 0:
        raise ValueError("need at least one access to classify uniformity")
    return UniformityReport(ratio=float(counts.std() / mean), threshold=threshold)


def chi_square_uniformity(counts: np.ndarray) -> float:
    """p-value of a chi-square test against a uniform set distribution.

    A statistically rigorous companion to the paper's stdev/mean rule:
    small p-values reject "the accesses are spread uniformly".  Note
    that with the access counts real workloads produce, even tiny
    imbalances are significant — the paper's 0.5 threshold asks about
    *magnitude*, this asks about *existence*; report both.
    """
    from scipy import stats

    counts = np.asarray(counts, dtype=np.float64)
    if len(counts) < 2:
        raise ValueError("need at least two sets")
    if counts.sum() <= 0:
        raise ValueError("need at least one access")
    return float(stats.chisquare(counts).pvalue)

"""Related-work hashing functions (paper Section 6 comparators).

The paper's XOR baseline (``t1 ⊕ x``) is the most prominent member of a
family of pseudo-random indexing schemes.  For completeness — and for
the extended ablation benches — this module implements three more:

* :class:`XorFoldIndexing` — XOR-fold *every* tag chunk into the index,
  not just the lowest (the natural strengthening of the XOR baseline).
* :class:`GF2PolynomialIndexing` — Topham & González's conflict-avoiding
  cache: the index is the residue of the address polynomial modulo an
  irreducible polynomial over GF(2), computed by a linear bit-matrix.
* :class:`MultiplicativeIndexing` — Fibonacci/multiplicative hashing
  (Knuth): multiply by an odd constant derived from the golden ratio
  and take the top index bits; a software-hash classic included as a
  "how random can you get" reference point.

None of these is sequence invariant, so per the paper's Section 2
analysis all are exposed to concentration-driven pathologies; the
stride-sweep ablation quantifies that.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hashing.base import IndexingFunction, register_indexing


@register_indexing("xorfold")
class XorFoldIndexing(IndexingFunction):
    """XOR-fold all index-width tag chunks into the index bits."""

    name = "XOR-fold"

    def __init__(self, n_sets_physical: int, address_bits: int = 32):
        super().__init__(n_sets_physical)
        if address_bits < self.index_bits:
            raise ValueError("address must be at least index_bits wide")
        self.address_bits = address_bits
        self._mask = n_sets_physical - 1

    def index(self, block_address: int) -> int:
        value = block_address
        folded = 0
        while value:
            folded ^= value & self._mask
            value >>= self.index_bits
        return folded

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        shift = np.uint64(self.index_bits)
        folded = np.zeros_like(a)
        value = a.copy()
        for _ in range(0, 64, self.index_bits):
            folded ^= value & mask
            value >>= shift
            if not value.any():
                break
        return folded.astype(np.int64)


#: Default irreducible polynomials over GF(2) by degree (bitmask form,
#: excluding the leading x^k term).  E.g. degree 11: x^11 + x^2 + 1.
_IRREDUCIBLE = {
    4: 0b0011,            # x^4 + x + 1
    5: 0b00101,           # x^5 + x^2 + 1
    6: 0b000011,          # x^6 + x + 1
    7: 0b0000011,         # x^7 + x + 1
    8: 0b00011101,        # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b000010001,       # x^9 + x^4 + 1
    10: 0b0000001001,     # x^10 + x^3 + 1
    11: 0b00000000101,    # x^11 + x^2 + 1
    12: 0b000001010011,   # x^12 + x^6 + x^4 + x + 1
    13: 0b0000000011011,  # x^13 + x^4 + x^3 + x + 1
    14: 0b00000000101011,  # x^14 + x^5 + x^3 + x + 1
}


@register_indexing("gf2")
class GF2PolynomialIndexing(IndexingFunction):
    """Polynomial-residue indexing over GF(2) (Topham & González).

    The block address, read as a polynomial over GF(2), is reduced
    modulo an irreducible polynomial of degree ``index_bits``; the
    residue is the set index.  Hardware is a tree of XORs (one row per
    address bit above the index), captured here by a precomputed bit
    matrix applied column by column.
    """

    name = "GF2-poly"

    def __init__(self, n_sets_physical: int, address_bits: int = 32,
                 polynomial: int = None):
        super().__init__(n_sets_physical)
        degree = self.index_bits
        if polynomial is None:
            try:
                polynomial = _IRREDUCIBLE[degree]
            except KeyError:
                raise ValueError(
                    f"no default irreducible polynomial of degree {degree}; "
                    "pass one explicitly"
                ) from None
        self.polynomial = polynomial
        self.address_bits = address_bits
        self._mask = n_sets_physical - 1
        # Column i of the matrix: residue of x^i mod the polynomial.
        columns: List[int] = []
        residue = 1
        for _ in range(address_bits):
            columns.append(residue)
            residue <<= 1
            if residue & n_sets_physical:  # degree reached: reduce
                residue = (residue & self._mask) ^ polynomial
        self._columns = columns
        self._columns_array = np.asarray(columns, dtype=np.uint64)

    def index(self, block_address: int) -> int:
        result = 0
        bit = 0
        value = block_address
        while value:
            if value & 1:
                result ^= self._columns[bit]
            value >>= 1
            bit += 1
        return result

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        result = np.zeros_like(a)
        for bit in range(self.address_bits):
            mask = (a >> np.uint64(bit)) & np.uint64(1)
            result ^= mask * self._columns_array[bit]
        return result.astype(np.int64)


#: 2^64 / golden ratio, forced odd — Knuth's multiplicative constant.
FIBONACCI_MULTIPLIER_64 = 0x9E3779B97F4A7C15


@register_indexing("multiplicative")
class MultiplicativeIndexing(IndexingFunction):
    """Fibonacci (multiplicative) hashing: top bits of a * K mod 2^64."""

    name = "Multiplicative"

    def __init__(self, n_sets_physical: int,
                 multiplier: int = FIBONACCI_MULTIPLIER_64):
        super().__init__(n_sets_physical)
        if multiplier % 2 == 0:
            raise ValueError("multiplier must be odd")
        self.multiplier = multiplier & 0xFFFFFFFFFFFFFFFF

    def index(self, block_address: int) -> int:
        product = (block_address * self.multiplier) & 0xFFFFFFFFFFFFFFFF
        return product >> (64 - self.index_bits)

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        a = np.asarray(block_addresses, dtype=np.uint64)
        product = a * np.uint64(self.multiplier)  # wraps mod 2^64
        return (product >> np.uint64(64 - self.index_bits)).astype(np.int64)

"""Indexing-function interfaces.

An :class:`IndexingFunction` maps a *block address* (the memory address
already shifted right by the block-offset bits) to a cache set index.
Implementations provide both a scalar path, used by the cycle-level
cache simulator, and a vectorized numpy path, used by the stride sweeps
of Figures 5 and 6 where millions of addresses are hashed at once.

A :class:`BankIndexingFamily` is the multi-hash analogue used by skewed
associative caches: one indexing function per direct-mapped bank.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Type

import numpy as np

from repro.mathutil import is_power_of_two, log2_exact


class IndexingFunction(abc.ABC):
    """Maps block addresses to set indices of a single-hash cache.

    Attributes:
        name: short identifier used in reports (e.g. ``"pMod"``).
        n_sets_physical: the power-of-two number of physical sets.
        n_sets: the number of *usable* sets (< physical for prime modulo).
        index_bits: log2 of the physical set count.
    """

    name: str = "abstract"

    def __init__(self, n_sets_physical: int):
        if not is_power_of_two(n_sets_physical):
            raise ValueError(
                f"physical set count must be a power of two, got {n_sets_physical}"
            )
        self.n_sets_physical = n_sets_physical
        self.index_bits = log2_exact(n_sets_physical)
        self.n_sets = n_sets_physical  # subclasses may shrink this

    @abc.abstractmethod
    def index(self, block_address: int) -> int:
        """Set index for one block address."""

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index`; default falls back to the scalar path."""
        return np.fromiter(
            (self.index(int(a)) for a in block_addresses),
            dtype=np.int64,
            count=len(block_addresses),
        )

    @property
    def fragmentation(self) -> float:
        """Fraction of physical sets this function never uses."""
        return (self.n_sets_physical - self.n_sets) / self.n_sets_physical

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_sets_physical={self.n_sets_physical})"


class BankIndexingFamily(abc.ABC):
    """One indexing function per bank of a skewed associative cache."""

    name: str = "abstract-family"

    def __init__(self, n_sets_per_bank: int, n_banks: int):
        if not is_power_of_two(n_sets_per_bank):
            raise ValueError(
                f"per-bank set count must be a power of two, got {n_sets_per_bank}"
            )
        if n_banks < 2:
            raise ValueError("a skewed cache needs at least 2 banks")
        self.n_sets_per_bank = n_sets_per_bank
        self.index_bits = log2_exact(n_sets_per_bank)
        self.n_banks = n_banks

    @abc.abstractmethod
    def bank_index(self, bank: int, block_address: int) -> int:
        """Set index within ``bank`` for one block address."""

    def indices(self, block_address: int) -> List[int]:
        """Set index in every bank, in bank order."""
        return [self.bank_index(b, block_address) for b in range(self.n_banks)]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_sets_per_bank={self.n_sets_per_bank}, "
            f"n_banks={self.n_banks})"
        )


_REGISTRY: Dict[str, Callable[[int], IndexingFunction]] = {}


def register_indexing(key: str) -> Callable[[Type[IndexingFunction]], Type[IndexingFunction]]:
    """Class decorator registering an indexing function under ``key``."""

    def decorator(cls: Type[IndexingFunction]) -> Type[IndexingFunction]:
        _REGISTRY[key] = cls
        return cls

    return decorator


def make_indexing(key: str, n_sets_physical: int) -> IndexingFunction:
    """Instantiate a registered indexing function by key.

    Keys: ``traditional``, ``xor``, ``pmod``, ``pdisp``.
    """
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown indexing {key!r}; known: {known}") from None
    return factory(n_sets_physical)


def available_indexings() -> List[str]:
    """Registered indexing keys, sorted."""
    return sorted(_REGISTRY)

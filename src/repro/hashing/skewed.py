"""Multi-hash families for skewed associative caches (Section 3.3).

Seznec's skewed associative cache replaces the single indexing function
of a W-way cache with W direct-mapped banks, each indexed by a
*different* hash so that blocks conflicting in one bank rarely conflict
in another.  The paper evaluates two families:

* :class:`SkewedXorFamily` — Seznec's design: XOR the index bits with a
  circular shift of the tag chunk, shifting by a different amount per
  bank (a perfect-shuffle style dispersion).
* :class:`SkewedPrimeDisplacementFamily` — the paper's proposal: prime
  displacement with a distinct constant per bank (9, 19, 31, 37 for the
  evaluated four-bank L2).
"""

from __future__ import annotations

from typing import Sequence

from repro.hashing.base import BankIndexingFamily
from repro.mathutil import circular_shift_left

#: Per-bank displacement constants used in the paper's evaluation.
PAPER_BANK_DISPLACEMENTS = (9, 19, 31, 37)


class SkewedXorFamily(BankIndexingFamily):
    """Seznec's circular-shift + XOR bank hashes (paper's *SKW*)."""

    name = "SKW"

    def bank_index(self, bank: int, block_address: int) -> int:
        if not 0 <= bank < self.n_banks:
            raise IndexError(f"bank {bank} out of range [0, {self.n_banks})")
        mask = self.n_sets_per_bank - 1
        x = block_address & mask
        t = (block_address >> self.index_bits) & mask
        return circular_shift_left(t, bank, self.index_bits) ^ x


class SkewedPrimeDisplacementFamily(BankIndexingFamily):
    """Prime displacement with a unique constant per bank (*skw+pDisp*)."""

    name = "skw+pDisp"

    def __init__(
        self,
        n_sets_per_bank: int,
        n_banks: int,
        displacements: Sequence[int] = PAPER_BANK_DISPLACEMENTS,
    ):
        super().__init__(n_sets_per_bank, n_banks)
        if len(displacements) < n_banks:
            raise ValueError(
                f"need {n_banks} displacement constants, got {len(displacements)}"
            )
        if any(d % 2 == 0 for d in displacements[:n_banks]):
            raise ValueError("bank displacements must all be odd")
        if len(set(displacements[:n_banks])) != n_banks:
            raise ValueError("bank displacements must be distinct")
        self.displacements = tuple(displacements[:n_banks])

    def bank_index(self, bank: int, block_address: int) -> int:
        if not 0 <= bank < self.n_banks:
            raise IndexError(f"bank {bank} out of range [0, {self.n_banks})")
        mask = self.n_sets_per_bank - 1
        x = block_address & mask
        tag = block_address >> self.index_bits
        return (self.displacements[bank] * tag + x) & mask

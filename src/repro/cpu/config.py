"""Machine configuration (paper Table 3) and cache-scheme factories.

:meth:`MachineConfig.paper_default` encodes the simulated architecture
verbatim; :func:`build_hierarchy` assembles the L1+L2 hierarchy for any
of the paper's evaluated cache configurations:

========== =====================================================
key        configuration
========== =====================================================
base       traditional indexing, 4-way L2
8way       traditional indexing, 8-way same-size L2
xor        XOR indexing, 4-way L2
pmod       prime modulo indexing, 4-way L2
pdisp      prime displacement indexing, 4-way L2
skw        skewed associative L2 (circular-shift XOR, ENRU)
skw+pdisp  skewed associative L2 (prime displacement, ENRU)
fa         fully associative L2 of the same capacity
========== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache import (
    CacheHierarchy,
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.hashing import (
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
    TraditionalIndexing,
    XorIndexing,
)
from repro.memory import DramConfig


@dataclass(frozen=True)
class MachineConfig:
    """Processor + memory hierarchy parameters (defaults = Table 3)."""

    # Processor
    issue_width: int = 6
    frequency_ghz: float = 1.6
    pending_loads: int = 8
    pending_stores: int = 16
    branch_penalty: int = 12
    # L1 data cache
    l1_bytes: int = 16 * 1024
    l1_assoc: int = 2
    l1_block_bytes: int = 32
    l1_hit_cycles: int = 3
    # L2 data cache
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 4
    l2_block_bytes: int = 64
    l2_hit_cycles: int = 16
    # Fraction of the L2-hit round trip the out-of-order core cannot
    # hide behind independent work (model knob, not in Table 3).
    l2_exposed_fraction: float = 0.7

    @classmethod
    def paper_default(cls) -> "MachineConfig":
        """The exact configuration of Table 3."""
        return cls()

    @property
    def l1_sets(self) -> int:
        return self.l1_bytes // (self.l1_block_bytes * self.l1_assoc)

    @property
    def l2_sets(self) -> int:
        return self.l2_bytes // (self.l2_block_bytes * self.l2_assoc)

    @property
    def l2_blocks(self) -> int:
        return self.l2_bytes // self.l2_block_bytes

    def dram_config(self) -> DramConfig:
        """Table 3's memory latencies."""
        return DramConfig(row_hit_cycles=208, row_miss_cycles=243)


#: Cache configurations evaluated in the paper, in presentation order.
SCHEMES: List[str] = [
    "base", "8way", "xor", "pmod", "pdisp", "skw", "skw+pdisp", "fa",
]

#: Display names matching the paper's figures.
SCHEME_LABELS = {
    "base": "Base",
    "8way": "8-way",
    "xor": "XOR",
    "pmod": "pMod",
    "pdisp": "pDisp",
    "skw": "SKW",
    "skw+pdisp": "skw+pDisp",
    "fa": "FA",
}


def build_l2(scheme: str, config: MachineConfig = None,
             skew_replacement: str = "enru"):
    """The L2 cache object for one scheme key (see module docstring)."""
    config = config or MachineConfig.paper_default()
    n_sets = config.l2_sets
    if scheme == "base":
        return SetAssociativeCache(
            n_sets, config.l2_assoc, TraditionalIndexing(n_sets), name="Base"
        )
    if scheme == "8way":
        doubled = config.l2_assoc * 2
        return SetAssociativeCache(
            n_sets // 2, doubled, TraditionalIndexing(n_sets // 2), name="8-way"
        )
    if scheme == "xor":
        return SetAssociativeCache(
            n_sets, config.l2_assoc, XorIndexing(n_sets), name="XOR"
        )
    if scheme == "pmod":
        return SetAssociativeCache(
            n_sets, config.l2_assoc, PrimeModuloIndexing(n_sets), name="pMod"
        )
    if scheme == "pdisp":
        return SetAssociativeCache(
            n_sets, config.l2_assoc, PrimeDisplacementIndexing(n_sets), name="pDisp"
        )
    if scheme == "skw":
        family = SkewedXorFamily(n_sets, config.l2_assoc)
        return SkewedAssociativeCache(family, replacement=skew_replacement,
                                      name="SKW")
    if scheme == "skw+pdisp":
        family = SkewedPrimeDisplacementFamily(n_sets, config.l2_assoc)
        return SkewedAssociativeCache(family, replacement=skew_replacement,
                                      name="skw+pDisp")
    if scheme == "fa":
        return FullyAssociativeCache(config.l2_blocks)
    raise KeyError(f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}")


def build_hierarchy(scheme: str, config: MachineConfig = None,
                    skew_replacement: str = "enru") -> CacheHierarchy:
    """Full L1+L2 hierarchy for one scheme key."""
    config = config or MachineConfig.paper_default()
    l1 = SetAssociativeCache(
        config.l1_sets, config.l1_assoc, TraditionalIndexing(config.l1_sets),
        name="L1",
    )
    l2 = build_l2(scheme, config, skew_replacement)
    return CacheHierarchy(
        l1, l2,
        l1_block_bytes=config.l1_block_bytes,
        l2_block_bytes=config.l2_block_bytes,
    )

"""Trace-driven timing simulator.

Approximates the paper's 6-issue dynamic superscalar with an analytic
per-access model.  The figures the paper reports are *normalized
execution times*, broken into Busy / Other Stalls / Memory Stall — the
same three components this simulator produces:

* **busy** — dynamic instructions over the issue width.
* **other stalls** — branch-misprediction penalties (the dominant
  non-memory stall for the evaluated memory-bound codes).
* **memory stall** — exposed cache/DRAM latency.  L1 hits are fully
  hidden by the out-of-order window.  L2 hits expose a configurable
  fraction of their round trip.  DRAM accesses pay the row-hit/row-miss
  latency plus channel queueing, divided by the workload's achievable
  memory-level parallelism (clamped by the machine's pending-load
  limit).

Absolute cycle counts are not the point; ratios between indexing
schemes are driven by L2 miss counts and DRAM row behavior, which the
substrate models directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.config import MachineConfig, build_hierarchy
from repro.memory import DramModel
from repro.trace.records import Trace


@dataclass
class ExecutionResult:
    """Cycle breakdown of one simulated run."""

    workload: str
    scheme: str
    busy: float
    other_stalls: float
    memory_stall: float
    l1_misses: int
    l2_accesses: int
    l2_misses: int
    dram_row_hits: int
    dram_row_misses: int

    @property
    def cycles(self) -> float:
        return self.busy + self.other_stalls + self.memory_stall

    def speedup_over(self, baseline: "ExecutionResult") -> float:
        """Speedup of *this* configuration relative to ``baseline``."""
        if self.cycles == 0:
            raise ZeroDivisionError("run produced zero cycles")
        return baseline.cycles / self.cycles

    def normalized_to(self, baseline: "ExecutionResult") -> "NormalizedTime":
        """Per-component execution time normalized to ``baseline`` (the
        stacked bars of Figures 7-10)."""
        total = baseline.cycles
        return NormalizedTime(
            workload=self.workload,
            scheme=self.scheme,
            busy=self.busy / total,
            other_stalls=self.other_stalls / total,
            memory_stall=self.memory_stall / total,
        )


@dataclass(frozen=True)
class NormalizedTime:
    """One stacked bar of the paper's execution-time figures."""

    workload: str
    scheme: str
    busy: float
    other_stalls: float
    memory_stall: float

    @property
    def total(self) -> float:
        return self.busy + self.other_stalls + self.memory_stall


class Simulator:
    """Runs traces through a hierarchy + DRAM and accumulates timing."""

    def __init__(self, hierarchy: CacheHierarchy, dram: DramModel,
                 config: MachineConfig = None, scheme: str = ""):
        self.hierarchy = hierarchy
        self.dram = dram
        self.config = config or MachineConfig.paper_default()
        self.scheme = scheme

    def run(self, trace: Trace, warmup_fraction: float = 0.0) -> ExecutionResult:
        """Simulate the full trace; returns the cycle breakdown.

        ``warmup_fraction`` runs that leading share of the trace to
        populate the caches, then resets every statistic before the
        measured region — the standard way to exclude cold misses.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        cfg = self.config
        meta = trace.meta
        hierarchy = self.hierarchy
        dram = self.dram
        addresses = trace.addresses
        writes = trace.is_write

        start = int(len(trace) * warmup_fraction)
        if start:
            for i in range(start):
                hierarchy.access(int(addresses[i]), bool(writes[i]))
            hierarchy.l1.stats.reset()
            hierarchy.l2.stats.reset()
            self.dram.stats = type(self.dram.stats)()

        n = len(trace) - start
        busy = n * meta.instructions_per_access / cfg.issue_width
        other = n * (meta.mispredicts_per_kaccess / 1000.0) * cfg.branch_penalty

        mlp = min(meta.mlp, float(cfg.pending_loads))
        l2_exposed = cfg.l2_hit_cycles * cfg.l2_exposed_fraction
        memory_stall = 0.0
        now = 0.0
        for i in range(start, len(trace)):
            outcome = hierarchy.access(int(addresses[i]), bool(writes[i]))
            if outcome.level == "l1":
                stall = 0.0
            elif outcome.level == "l2":
                stall = l2_exposed
            else:
                stall = 0.0
                for block in outcome.memory_reads:
                    stall += dram.service(now + stall, block, is_write=False)
                # Writebacks leave the requester's critical path but
                # still occupy the channel (posted writes).
                for block in outcome.memory_writes:
                    dram.service(now + stall, block, is_write=True)
                stall /= mlp
            memory_stall += stall
            now += meta.instructions_per_access / cfg.issue_width + stall

        l1 = hierarchy.l1.stats
        l2 = hierarchy.l2.stats
        return ExecutionResult(
            workload=trace.name,
            scheme=self.scheme,
            busy=busy,
            other_stalls=other,
            memory_stall=memory_stall,
            l1_misses=l1.misses,
            l2_accesses=l2.accesses,
            l2_misses=l2.misses,
            dram_row_hits=dram.stats.row_hits,
            dram_row_misses=dram.stats.row_misses,
        )


def simulate_scheme(trace: Trace, scheme: str,
                    config: MachineConfig = None,
                    skew_replacement: str = "enru",
                    warmup_fraction: float = 0.0) -> ExecutionResult:
    """Convenience: build a fresh hierarchy for ``scheme`` and run."""
    config = config or MachineConfig.paper_default()
    hierarchy = build_hierarchy(scheme, config, skew_replacement)
    dram = DramModel(config.dram_config())
    return Simulator(hierarchy, dram, config, scheme=scheme).run(
        trace, warmup_fraction=warmup_fraction
    )

"""Machine configuration and the trace-driven timing simulator."""

from repro.cpu.config import (
    SCHEME_LABELS,
    SCHEMES,
    MachineConfig,
    build_hierarchy,
    build_l2,
)
from repro.cpu.simulator import (
    ExecutionResult,
    NormalizedTime,
    Simulator,
    simulate_scheme,
)

__all__ = [
    "ExecutionResult",
    "MachineConfig",
    "NormalizedTime",
    "SCHEMES",
    "SCHEME_LABELS",
    "Simulator",
    "build_hierarchy",
    "build_l2",
    "simulate_scheme",
]

"""Reproduction of "Using Prime Numbers for Cache Indexing to Eliminate
Conflict Misses" (Kharbutli, Irwin, Solihin, Lee — HPCA 2004).

The package is organized around the paper's structure:

* :mod:`repro.hashing` — the indexing functions and quality metrics
  (the paper's contribution, Sections 2-3).
* :mod:`repro.hardware` — bit-exact models of the fast shift/add
  hardware that computes the prime modulo without division (Section 3.1).
* :mod:`repro.cache`, :mod:`repro.memory`, :mod:`repro.cpu` — the
  simulated memory hierarchy and timing model (Section 4, Table 3).
* :mod:`repro.workloads` — synthetic stand-ins for the paper's 23
  memory-intensive applications.
* :mod:`repro.experiments` — one runnable module per paper table/figure.
"""

__version__ = "1.0.0"

"""Victim cache (Jouppi 1990) — the classic conflict-miss comparator.

A small fully associative buffer holds the most recent evictions from a
direct-mapped or set-associative cache; a main-cache miss that hits the
buffer swaps the two lines instead of going to memory.  Victim caches
are the traditional *hardware* answer to conflict misses, so they are
the natural baseline to contrast with the paper's *indexing* answer:
a handful of buffer entries absorbs a handful of conflicting lines,
while prime hashing redistributes thousands (the ablation bench makes
this quantitative on tree).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.setassoc import AccessResult, SetAssociativeCache
from repro.cache.stats import CacheStats


class VictimCache:
    """A set-associative cache backed by a small FA victim buffer.

    Exposes the same ``access`` protocol as the other caches, so it
    drops into :class:`~repro.cache.hierarchy.CacheHierarchy` as an L2.
    A victim-buffer hit counts as a cache hit (the swap's extra cycle
    is far below the memory latency this model resolves).
    """

    def __init__(self, main: SetAssociativeCache, n_victim_entries: int = 16):
        if n_victim_entries < 1:
            raise ValueError("victim buffer needs at least one entry")
        self.main = main
        self.n_victim_entries = n_victim_entries
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()  # block -> dirty
        self.name = f"{main.name}+victim{n_victim_entries}"
        self.victim_hits = 0

    @property
    def stats(self) -> CacheStats:
        """Main-array statistics; misses are adjusted via access()."""
        return self.main.stats

    @property
    def n_blocks(self) -> int:
        return self.main.n_blocks + self.n_victim_entries

    def _stash(self, block: int, dirty: bool) -> AccessResult:
        """Push an evicted main-cache line into the buffer; returns the
        buffer's own overflow (if any) as the outward eviction."""
        overflow_block = None
        overflow_dirty = False
        if len(self._buffer) >= self.n_victim_entries:
            overflow_block, overflow_dirty = self._buffer.popitem(last=False)
        self._buffer[block] = dirty
        return overflow_block, overflow_dirty

    def access(self, block_address: int, is_write: bool = False) -> AccessResult:
        result = self.main.access(block_address, is_write)
        if result.hit:
            return result

        stats = self.main.stats
        buffered_dirty = self._buffer.pop(block_address, None)
        if buffered_dirty is not None:
            # Victim hit: the fill already happened inside main.access;
            # reclassify the miss as a hit and keep the line's dirt.
            self.victim_hits += 1
            stats.misses -= 1
            stats.hits += 1
            stats.set_misses[result.set_index] -= 1
            if buffered_dirty:
                # The promoted line carries its dirt back into the array.
                ways = self.main._blocks[result.set_index]
                way = ways.index(block_address)
                self.main._dirty[result.set_index][way] = True
            hit_result = AccessResult(hit=True, set_index=result.set_index)
            if result.victim_block is not None:
                overflow, overflow_dirty = self._stash(
                    result.victim_block, result.writeback
                )
                if overflow is not None:
                    return AccessResult(
                        hit=True, set_index=result.set_index,
                        victim_block=overflow, writeback=overflow_dirty,
                    )
            return hit_result

        # True miss: stash the main eviction; the buffer overflow is
        # what leaves the cache for the next level.
        if result.victim_block is None:
            return result
        overflow, overflow_dirty = self._stash(result.victim_block,
                                               result.writeback)
        return AccessResult(
            hit=False, set_index=result.set_index,
            victim_block=overflow, writeback=overflow_dirty,
        )

    def contains(self, block_address: int) -> bool:
        return self.main.contains(block_address) or \
            block_address in self._buffer

    def __repr__(self) -> str:
        return (f"VictimCache(main={self.main!r}, "
                f"entries={self.n_victim_entries})")

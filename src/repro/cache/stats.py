"""Cache statistics shared by all cache models.

Per-set counters back two paper analyses: the uniformity classification
of Section 4 (stdev/mean of per-set *accesses*) and the miss
distribution of Figure 13 (per-set *misses*).
"""

from __future__ import annotations

import numpy as np


class CacheStats:
    """Counters for one cache: totals plus per-set access/miss arrays."""

    def __init__(self, n_sets: int):
        self.n_sets = n_sets
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.set_accesses = np.zeros(n_sets, dtype=np.int64)
        self.set_misses = np.zeros(n_sets, dtype=np.int64)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter (e.g. after a warm-up phase)."""
        self.reads = self.writes = 0
        self.hits = self.misses = 0
        self.evictions = self.writebacks = 0
        self.set_accesses[:] = 0
        self.set_misses[:] = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, hits={self.hits}, "
            f"misses={self.misses}, miss_rate={self.miss_rate:.4f})"
        )

"""Cache models: conventional, skewed, fully associative, and the
two-level write-back hierarchy of the paper's Table 3.
"""

from repro.cache.fastsim import (
    FastSimResult,
    simulate_fully_associative_misses,
    simulate_misses,
)
from repro.cache.fully import FullyAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome
from repro.cache.multilevel import MultiLevelHierarchy
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_replacement,
)
from repro.cache.setassoc import AccessResult, SetAssociativeCache
from repro.cache.skewed import (
    BankVictimPolicy,
    EnruPolicy,
    NrunrwPolicy,
    PlainNruPolicy,
    SkewedAssociativeCache,
)
from repro.cache.stats import CacheStats
from repro.cache.victim import VictimCache

__all__ = [
    "AccessResult",
    "BankVictimPolicy",
    "CacheHierarchy",
    "CacheStats",
    "EnruPolicy",
    "FIFOPolicy",
    "FastSimResult",
    "FullyAssociativeCache",
    "HierarchyOutcome",
    "LRUPolicy",
    "MultiLevelHierarchy",
    "NRUPolicy",
    "NrunrwPolicy",
    "PlainNruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SkewedAssociativeCache",
    "TreePLRUPolicy",
    "VictimCache",
    "make_replacement",
    "simulate_fully_associative_misses",
    "simulate_misses",
]

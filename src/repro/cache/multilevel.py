"""Generalized N-level write-back cache hierarchy.

:class:`~repro.cache.hierarchy.CacheHierarchy` models the paper's
two-level system; this class chains any number of levels (e.g.
L1+L2+L3) with per-level line sizes, so the indexing question can be
asked at the last-level cache of a modern three-level hierarchy — the
``l3_hashing`` experiment does exactly that.

Semantics per level (all write-back, write-allocate):

* a hit at level *i* services the access;
* a miss allocates at level *i* and recurses to level *i+1*;
* a dirty eviction at level *i* is written to level *i+1*
  (write-allocating there), and a dirty eviction at the last level
  surfaces as a memory write.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cache.hierarchy import HierarchyOutcome
from repro.mathutil import log2_exact


class MultiLevelHierarchy:
    """A chain of caches with non-decreasing line sizes."""

    def __init__(self, levels: Sequence[Tuple[object, int]]):
        """``levels`` is a list of (cache, block_bytes), L1 first."""
        if not levels:
            raise ValueError("need at least one cache level")
        self.caches = [cache for cache, _ in levels]
        self.block_bytes = [block for _, block in levels]
        self.offset_bits = [log2_exact(b) for b in self.block_bytes]
        for smaller, larger in zip(self.block_bytes, self.block_bytes[1:]):
            if larger < smaller:
                raise ValueError(
                    "line sizes must be non-decreasing toward memory"
                )

    @property
    def n_levels(self) -> int:
        return len(self.caches)

    def _fill(self, level: int, byte_address: int, is_write: bool,
              outcome: HierarchyOutcome) -> str:
        """Access ``level`` for ``byte_address``; recurse below on miss.

        Returns the level name where the data was found.
        """
        cache = self.caches[level]
        block = byte_address >> self.offset_bits[level]
        result = cache.access(block, is_write)
        serviced = f"l{level + 1}"
        if result.writeback:
            self._writeback(level + 1, result.victim_block, outcome)
        if result.hit:
            return serviced
        if level + 1 == self.n_levels:
            outcome.memory_reads.append(block)
            return "mem"
        return self._fill(level + 1, byte_address, False, outcome)

    def _writeback(self, level: int, victim_block: int,
                   outcome: HierarchyOutcome) -> None:
        """Write a dirty level-(level-1) victim into ``level``."""
        shift = self.offset_bits[level - 1]
        byte_address = victim_block << shift
        if level == self.n_levels:
            outcome.memory_writes.append(
                byte_address >> self.offset_bits[-1]
            )
            return
        cache = self.caches[level]
        block = byte_address >> self.offset_bits[level]
        result = cache.access(block, is_write=True)
        if result.writeback:
            self._writeback(level + 1, result.victim_block, outcome)
        if not result.hit:
            # Write-allocate: the fill comes from further down.
            if level + 1 == self.n_levels:
                outcome.memory_reads.append(block)
            else:
                self._fill(level + 1, byte_address, False, outcome)

    def access(self, byte_address: int, is_write: bool = False) -> HierarchyOutcome:
        """One CPU access; returns where it was serviced plus DRAM traffic."""
        if byte_address < 0:
            raise ValueError("address must be non-negative")
        outcome = HierarchyOutcome(level="")
        outcome.level = self._fill(0, byte_address, is_write, outcome)
        return outcome

    def __repr__(self) -> str:
        names = " -> ".join(getattr(c, "name", type(c).__name__)
                            for c in self.caches)
        return f"MultiLevelHierarchy({names})"

"""Skewed associative cache (Seznec [18, 19]; paper Section 3.3, 5.3).

The cache is split into ``n_banks`` direct-mapped banks; each bank is
indexed by a *different* hashing function from a
:class:`~repro.hashing.base.BankIndexingFamily`.  A block may live in
exactly one location per bank, so a lookup probes ``n_banks`` frames.

LRU is impractical (the candidate frames differ per address), so the
paper evaluates Seznec's pseudo-LRU policies:

* **ENRU** (Enhanced Not Recently Used) — each line carries a
  recently-used bit; bits are swept clear periodically, and the victim
  is preferentially a not-recently-used line.
* **NRUNRW** (Not Recently Used, Not Recently Written) — additionally
  tracks a written bit and prefers lines that are neither recently used
  nor dirty (avoiding writebacks); the paper found it performs like
  ENRU.

The imprecision of these policies is one of the two sources of the
skewed cache's pathological behavior (the other is non-ideal
concentration).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Type

from repro.cache.setassoc import AccessResult
from repro.cache.stats import CacheStats
from repro.hashing.base import BankIndexingFamily


class BankVictimPolicy(abc.ABC):
    """Chooses which bank's candidate line to evict in a skewed cache."""

    def __init__(self, cache: "SkewedAssociativeCache"):
        self.cache = cache
        self._tick = 0
        self._rng_state = 0x9E3779B9
        # Sweep period: twice the line count, so RU bits age out at
        # roughly the cache's natural reuse scale — long enough that a
        # resident line re-touched every 'epoch' usually keeps its bit
        # (shorter periods randomize victims and overstate the
        # pathological damage; the paper's worst case is -9%).
        self._sweep_period = max(1, 2 * cache.n_banks * cache.n_sets_per_bank)

    def on_access(self) -> None:
        """Advance the policy clock; sweeps RU state periodically."""
        self._tick += 1
        if self._tick % self._sweep_period == 0:
            for bank_ru in self.cache.recently_used:
                for i in range(len(bank_ru)):
                    bank_ru[i] = False

    @abc.abstractmethod
    def choose_bank(self, indices: List[int]) -> int:
        """Bank whose line at ``indices[bank]`` should be replaced."""

    def _rotate(self, candidates: List[int]) -> int:
        """Deterministic pseudo-random tiebreak (xorshift).

        Seznec's hardware breaks ties with a free-running counter whose
        phase is uncorrelated with any one set's access stream; a
        round-robin tied to the global access tick would instead track
        cyclic sweeps in lock-step and degenerate into FIFO.
        """
        s = self._rng_state
        s ^= (s << 13) & 0xFFFFFFFF
        s ^= s >> 17
        s ^= (s << 5) & 0xFFFFFFFF
        self._rng_state = s
        return candidates[s % len(candidates)]


class EnruPolicy(BankVictimPolicy):
    """Enhanced NRU: evict a not-recently-used candidate when one exists."""

    def choose_bank(self, indices: List[int]) -> int:
        cache = self.cache
        cold = [
            b for b, idx in enumerate(indices) if not cache.recently_used[b][idx]
        ]
        if cold:
            return self._rotate(cold)
        return self._rotate(list(range(cache.n_banks)))


class PlainNruPolicy(BankVictimPolicy):
    """Textbook NRU: no periodic sweep; when every candidate is recently
    used, clear *their* bits and pick among them.

    The "enhancement" ENRU adds is the global aging sweep — without it
    a busy set's bits saturate and victims degenerate to random.  Kept
    as the ablation baseline for the two published policies.
    """

    def on_access(self) -> None:
        self._tick += 1  # no sweep

    def choose_bank(self, indices: List[int]) -> int:
        cache = self.cache
        cold = [
            b for b, idx in enumerate(indices) if not cache.recently_used[b][idx]
        ]
        if cold:
            return self._rotate(cold)
        for bank, idx in enumerate(indices):
            cache.recently_used[bank][idx] = False
        return self._rotate(list(range(cache.n_banks)))


class NrunrwPolicy(BankVictimPolicy):
    """NRU-NRW: prefer lines neither recently used nor recently written."""

    def choose_bank(self, indices: List[int]) -> int:
        cache = self.cache
        not_used = [
            b for b, idx in enumerate(indices) if not cache.recently_used[b][idx]
        ]
        clean_and_cold = [
            b for b in not_used if not cache.dirty[b][indices[b]]
        ]
        if clean_and_cold:
            return self._rotate(clean_and_cold)
        if not_used:
            return self._rotate(not_used)
        clean = [
            b for b, idx in enumerate(indices) if not cache.dirty[b][idx]
        ]
        if clean:
            return self._rotate(clean)
        return self._rotate(list(range(cache.n_banks)))


_BANK_POLICIES: Dict[str, Type[BankVictimPolicy]] = {
    "enru": EnruPolicy,
    "nru": PlainNruPolicy,
    "nrunrw": NrunrwPolicy,
}


class SkewedAssociativeCache:
    """Write-back skewed associative cache with pseudo-LRU replacement.

    Args:
        family: per-bank indexing functions (size fixes the geometry).
        replacement: ``"enru"`` (paper default) or ``"nrunrw"``.
        name: label used in reports; defaults to the family's name.
    """

    def __init__(
        self,
        family: BankIndexingFamily,
        replacement: str = "enru",
        name: str = None,
    ):
        self.family = family
        self.n_banks = family.n_banks
        self.n_sets_per_bank = family.n_sets_per_bank
        self.name = name or family.name
        n = self.n_sets_per_bank
        self._blocks: List[List[Optional[int]]] = [
            [None] * n for _ in range(self.n_banks)
        ]
        self.dirty: List[List[bool]] = [[False] * n for _ in range(self.n_banks)]
        self.recently_used: List[List[bool]] = [
            [False] * n for _ in range(self.n_banks)
        ]
        try:
            policy_cls = _BANK_POLICIES[replacement]
        except KeyError:
            known = ", ".join(sorted(_BANK_POLICIES))
            raise KeyError(
                f"unknown skewed replacement {replacement!r}; known: {known}"
            ) from None
        self.policy = policy_cls(self)
        # Aggregate per-"set" stats indexed by bank-0 position, so the
        # uniformity/miss-distribution analyses remain meaningful.
        self.stats = CacheStats(self.n_sets_per_bank)

    @property
    def n_blocks(self) -> int:
        return self.n_banks * self.n_sets_per_bank

    def access(self, block_address: int, is_write: bool = False) -> AccessResult:
        """Probe all banks; on miss, fill the policy-chosen victim frame."""
        indices = self.family.indices(block_address)
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.set_accesses[indices[0]] += 1
        self.policy.on_access()

        for bank, idx in enumerate(indices):
            if self._blocks[bank][idx] == block_address:
                stats.hits += 1
                self.recently_used[bank][idx] = True
                if is_write:
                    self.dirty[bank][idx] = True
                return AccessResult(hit=True, set_index=indices[0])

        stats.misses += 1
        stats.set_misses[indices[0]] += 1

        # Prefer an empty frame in any bank.
        victim_block = None
        writeback = False
        for bank, idx in enumerate(indices):
            if self._blocks[bank][idx] is None:
                break
        else:
            bank = self.policy.choose_bank(indices)
            idx = indices[bank]
            victim_block = self._blocks[bank][idx]
            writeback = self.dirty[bank][idx]
            stats.evictions += 1
            if writeback:
                stats.writebacks += 1
        self._blocks[bank][idx] = block_address
        self.dirty[bank][idx] = is_write
        self.recently_used[bank][idx] = True
        return AccessResult(
            hit=False,
            set_index=indices[0],
            victim_block=victim_block,
            writeback=writeback,
        )

    def contains(self, block_address: int) -> bool:
        return any(
            self._blocks[bank][idx] == block_address
            for bank, idx in enumerate(self.family.indices(block_address))
        )

    def __repr__(self) -> str:
        return (
            f"SkewedAssociativeCache(name={self.name!r}, banks={self.n_banks}, "
            f"sets_per_bank={self.n_sets_per_bank})"
        )

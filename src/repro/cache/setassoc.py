"""Conventional set-associative cache with a pluggable indexing function.

This is the cache model behind the paper's *Base*, *8-way*, *XOR*,
*pMod* and *pDisp* configurations — same storage, different
:class:`~repro.hashing.base.IndexingFunction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import ReplacementPolicy, make_replacement
from repro.cache.stats import CacheStats
from repro.hashing.base import IndexingFunction


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the block was present.
        set_index: the set the block mapped to.
        victim_block: block address evicted to make room (misses only).
        writeback: True when the evicted block was dirty and must be
            written to the next level.
    """

    hit: bool
    set_index: int
    victim_block: Optional[int] = None
    writeback: bool = False


class SetAssociativeCache:
    """W-way set-associative, write-back, write-allocate cache.

    Blocks are identified by their full block address (the indexing
    function need not be invertible, so the stored "tag" is the whole
    block address).

    Args:
        n_sets_physical: power-of-two physical set count (storage).
        assoc: associativity W.
        indexing: maps block addresses to set indices; its ``n_sets``
            may be below ``n_sets_physical`` (prime modulo), in which
            case the residual sets sit idle — the fragmentation of
            Table 1.
        replacement: policy key (default ``"lru"``, as in the paper).
        name: label used in reports.
    """

    def __init__(
        self,
        n_sets_physical: int,
        assoc: int,
        indexing: IndexingFunction,
        replacement: str = "lru",
        name: Optional[str] = None,
    ):
        if indexing.n_sets_physical != n_sets_physical:
            raise ValueError(
                f"indexing is built for {indexing.n_sets_physical} physical "
                f"sets, cache has {n_sets_physical}"
            )
        if assoc < 1:
            raise ValueError("associativity must be positive")
        self.n_sets_physical = n_sets_physical
        self.assoc = assoc
        self.indexing = indexing
        self.name = name or indexing.name
        self._blocks: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(indexing.n_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(indexing.n_sets)
        ]
        self.policy: ReplacementPolicy = make_replacement(
            replacement, indexing.n_sets, assoc
        )
        self.stats = CacheStats(indexing.n_sets)

    @property
    def n_blocks(self) -> int:
        """Physical block frames (includes fragmented sets)."""
        return self.n_sets_physical * self.assoc

    def access(self, block_address: int, is_write: bool = False) -> AccessResult:
        """Look up ``block_address``, filling on miss. Returns the outcome."""
        set_index = self.indexing.index(block_address)
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.set_accesses[set_index] += 1

        ways = self._blocks[set_index]
        dirty = self._dirty[set_index]
        for way, resident in enumerate(ways):
            if resident == block_address:
                stats.hits += 1
                self.policy.on_hit(set_index, way)
                if is_write:
                    dirty[way] = True
                return AccessResult(hit=True, set_index=set_index)

        stats.misses += 1
        stats.set_misses[set_index] += 1

        # Prefer an invalid frame; otherwise ask the policy for a victim.
        victim_block = None
        writeback = False
        for way, resident in enumerate(ways):
            if resident is None:
                break
        else:
            way = self.policy.victim(set_index)
            victim_block = ways[way]
            writeback = dirty[way]
            stats.evictions += 1
            if writeback:
                stats.writebacks += 1
        ways[way] = block_address
        dirty[way] = is_write
        self.policy.on_fill(set_index, way)
        return AccessResult(
            hit=False,
            set_index=set_index,
            victim_block=victim_block,
            writeback=writeback,
        )

    def contains(self, block_address: int) -> bool:
        """True when the block is resident (no state change)."""
        set_index = self.indexing.index(block_address)
        return block_address in self._blocks[set_index]

    def invalidate(self, block_address: int) -> bool:
        """Drop a block if resident; returns whether it was dirty."""
        set_index = self.indexing.index(block_address)
        ways = self._blocks[set_index]
        for way, resident in enumerate(ways):
            if resident == block_address:
                was_dirty = self._dirty[set_index][way]
                ways[way] = None
                self._dirty[set_index][way] = False
                return was_dirty
        return False

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (for tests and debugging)."""
        return [b for ways in self._blocks for b in ways if b is not None]

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(name={self.name!r}, sets={self.n_sets_physical}, "
            f"assoc={self.assoc}, indexing={self.indexing.name})"
        )

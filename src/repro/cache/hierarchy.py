"""Two-level write-back cache hierarchy (paper Table 3).

L1 always uses traditional indexing (the paper only rehashes the L2 —
Section 3.3 explains why XOR-style functions are a bad idea for L1).
The L2 can be any object with the cache ``access(block, is_write)``
protocol: set-associative with any indexing function, skewed
associative, or fully associative.

Both levels are write-back/write-allocate.  A dirty L1 eviction is
written into L2 (possibly allocating there); a dirty L2 eviction goes
to memory.  The outcome records every DRAM-level transfer so the timing
model can charge row hits/misses and bus occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cache.setassoc import SetAssociativeCache
from repro.mathutil import log2_exact


@dataclass
class HierarchyOutcome:
    """What one CPU access did to the hierarchy.

    Attributes:
        level: where the data was found — ``"l1"``, ``"l2"`` or ``"mem"``.
        memory_reads: L2-block addresses fetched from DRAM.
        memory_writes: L2-block addresses written back to DRAM.
    """

    level: str
    memory_reads: List[int] = field(default_factory=list)
    memory_writes: List[int] = field(default_factory=list)

    @property
    def touched_memory(self) -> bool:
        return bool(self.memory_reads or self.memory_writes)


class CacheHierarchy:
    """L1 + L2 write-back hierarchy driven by byte addresses."""

    def __init__(self, l1: SetAssociativeCache, l2, l1_block_bytes: int,
                 l2_block_bytes: int):
        if l2_block_bytes < l1_block_bytes:
            raise ValueError("L2 lines must be at least as large as L1 lines")
        self.l1 = l1
        self.l2 = l2
        self.l1_offset_bits = log2_exact(l1_block_bytes)
        self.l2_offset_bits = log2_exact(l2_block_bytes)
        self._l1_to_l2_shift = self.l2_offset_bits - self.l1_offset_bits

    def _l2_write(self, l2_block: int, outcome: HierarchyOutcome) -> None:
        """Write a dirty L1 victim into L2 (write-allocate)."""
        result = self.l2.access(l2_block, is_write=True)
        if not result.hit:
            outcome.memory_reads.append(l2_block)  # allocate fill
            if result.writeback:
                outcome.memory_writes.append(result.victim_block)

    def access(self, byte_address: int, is_write: bool = False) -> HierarchyOutcome:
        """One CPU load/store; returns where it was serviced."""
        if byte_address < 0:
            raise ValueError("address must be non-negative")
        l1_block = byte_address >> self.l1_offset_bits
        l1_result = self.l1.access(l1_block, is_write)
        if l1_result.hit:
            return HierarchyOutcome(level="l1")

        outcome = HierarchyOutcome(level="l2")
        if l1_result.writeback:
            self._l2_write(l1_result.victim_block >> self._l1_to_l2_shift, outcome)

        l2_block = byte_address >> self.l2_offset_bits
        l2_result = self.l2.access(l2_block, is_write=False)
        if not l2_result.hit:
            outcome.level = "mem"
            outcome.memory_reads.append(l2_block)
            if l2_result.writeback:
                outcome.memory_writes.append(l2_result.victim_block)
        return outcome

    def __repr__(self) -> str:
        return f"CacheHierarchy(l1={self.l1!r}, l2={self.l2!r})"

"""Fully associative cache (the *FA* bars of Figures 11-12).

A fully associative cache of the same capacity isolates conflict misses:
whatever misses remain are compulsory or capacity misses.  True LRU via
an ordered map keeps this O(1) per access.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.setassoc import AccessResult
from repro.cache.stats import CacheStats


class FullyAssociativeCache:
    """LRU fully associative, write-back, write-allocate cache.

    Per-set statistics collapse to a single "set" so the stats object
    stays interface-compatible with the set-associative model.
    """

    name = "FA"

    def __init__(self, n_blocks: int):
        if n_blocks < 1:
            raise ValueError("capacity must be at least one block")
        self.n_blocks = n_blocks
        self._lru: "OrderedDict[int, bool]" = OrderedDict()  # block -> dirty
        self.stats = CacheStats(n_sets=1)

    def access(self, block_address: int, is_write: bool = False) -> AccessResult:
        """Look up ``block_address``, filling on miss."""
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.set_accesses[0] += 1

        if block_address in self._lru:
            stats.hits += 1
            self._lru.move_to_end(block_address)
            if is_write:
                self._lru[block_address] = True
            return AccessResult(hit=True, set_index=0)

        stats.misses += 1
        stats.set_misses[0] += 1
        victim_block = None
        writeback = False
        if len(self._lru) >= self.n_blocks:
            victim_block, victim_dirty = self._lru.popitem(last=False)
            writeback = victim_dirty
            stats.evictions += 1
            if writeback:
                stats.writebacks += 1
        self._lru[block_address] = is_write
        return AccessResult(
            hit=False, set_index=0, victim_block=victim_block, writeback=writeback
        )

    def contains(self, block_address: int) -> bool:
        return block_address in self._lru

    def __repr__(self) -> str:
        return f"FullyAssociativeCache(n_blocks={self.n_blocks})"

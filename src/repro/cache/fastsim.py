"""Fast miss-only simulation for single-hash LRU caches.

The cycle-level model in :class:`~repro.cache.setassoc.SetAssociativeCache`
pays Python-object overhead on every access.  When an experiment needs
only hit/miss counts — the miss-reduction figures, the uniformity
classification, design-space sweeps — this path is far faster: it
exploits the fact that LRU is a *stack algorithm*, so hit/miss outcomes
are a pure function of the access sequence and need no simulated cache
state at all.

An access to block ``b`` in set ``s`` hits a ``W``-way LRU cache iff
fewer than ``W`` *distinct* other blocks of ``s`` were touched since
the previous access to ``b`` (and ``b`` was touched before).  The
vectorized path computes, entirely in numpy:

1. the set index of every access (one ``index_array`` call);
2. each access's set-local position and its previous/next occurrence
   (two stable argsorts);
3. the distinct-block count of each reuse window, counted as the
   intervening accesses whose *next* occurrence falls at or beyond the
   current access — evaluated only for the ambiguous windows (those
   with at least ``W`` intervening accesses; shorter windows are hits
   by construction), batched by window length.

Equivalence with the reference model is property-tested — the original
pure-Python loop survives as :func:`simulate_misses_reference` and any
divergence is a bug in one of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import numpy as np

from repro.hashing.base import IndexingFunction
from repro.obs import get_registry

#: Cap on the scratch matrix used by one windowed-count batch.
_BATCH_ELEMENT_LIMIT = 1 << 22


@dataclass(frozen=True)
class FastSimResult:
    """Counters produced by a fast simulation run.

    ``set_accesses`` / ``set_misses`` are None when the run was asked
    not to keep per-set counters (``per_set_counters=False``).
    """

    accesses: int
    misses: int
    set_accesses: Optional[np.ndarray]
    set_misses: Optional[np.ndarray]

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _radix_argsort(values: np.ndarray, hi: int = None) -> np.ndarray:
    """Stable ascending argsort of non-negative integers.

    numpy's stable sort uses a radix sort for <=16-bit integer keys,
    which is several times faster than the comparison sort it falls
    back to on wider types; sorting 16 bits per pass keeps that fast
    path for arbitrary integer magnitudes.  ``hi`` is an optional
    known upper bound on the values, saving the max scan.
    """
    if len(values) == 0:
        return np.empty(0, dtype=np.intp)
    if hi is None:
        hi = int(values.max())
    if hi < 1 << 16:
        return np.argsort(values.astype(np.uint16), kind="stable")
    unsigned = values.astype(np.uint64, copy=False)
    order = np.argsort(unsigned.astype(np.uint16),
                       kind="stable").astype(np.int32)
    shift = 16
    while hi >> shift:
        digits = (unsigned >> np.uint64(shift)).astype(np.uint16)
        order = order[np.argsort(digits[order], kind="stable")]
        shift += 16
    return order


def _lru_miss_mask(blocks: np.ndarray, sets: np.ndarray,
                   assoc: int, smax: int = None) -> np.ndarray:
    """Boolean per-access miss mask of a W-way LRU set-associative cache.

    ``smax`` is an optional known upper bound on the set indices
    (``n_sets - 1``), saving a max scan.
    """
    n = len(blocks)
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n >= 1 << 30:  # 2*n coordinates must stay within int32
        raise ValueError("trace too long for the int32 fast path")
    arange = np.arange(n, dtype=np.int32)

    # Set-local position of every access: a stable sort by set lays the
    # trace out set-major while preserving time order within each set,
    # and subtracting each set's first layout position localizes it.
    skey = np.asarray(sets)
    if smax is None:
        smax = int(skey.max())
    order = _radix_argsort(skey, hi=smax)
    ordered_sets = (skey.astype(np.uint16)[order]
                    if smax < 1 << 16 else skey[order])
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(ordered_sets[1:], ordered_sets[:-1], out=boundary[1:])
    pos_in_layout = np.empty(n, dtype=np.int32)
    pos_in_layout[order] = arange
    group_firsts = arange[boundary]
    set_first = np.empty(smax + 1, dtype=np.int32)
    set_first[ordered_sets[boundary]] = group_firsts
    local = pos_in_layout - set_first[skey]
    # the largest set population bounds every set-local index
    max_group = int(np.diff(group_firsts, append=np.int32(n)).max())

    # Previous access of the same block (same set by construction):
    # prev[i] = -1 when block i was never touched before.  The matching
    # next-occurrence links are scattered straight into the window
    # layout further down instead of materializing a full nxt array.
    border = _radix_argsort(blocks)
    ordered_blocks = blocks[border]
    same = np.flatnonzero(ordered_blocks[1:] == ordered_blocks[:-1])
    earlier = border[same]
    later = border[same + 1]
    prev = np.full(n, -1, dtype=np.int32)
    prev[later] = earlier

    # Reuse window of a warm access: the set-local gap between its
    # previous occurrence and itself.  Fewer than W intervening
    # accesses cannot contain W distinct blocks -> guaranteed hit.
    # (prev == -1 wraps the gather to the last element; the warm mask
    # discards those lanes.)
    gap = local - local[prev]
    ambiguous = np.flatnonzero((gap > assoc) & (prev >= 0))
    miss = prev < 0  # cold accesses always miss
    if ambiguous.size == 0:
        return miss
    if assoc == 1:
        # Any non-empty window contains >=1 distinct block: the access
        # right before this one in the set has its next occurrence at
        # or beyond it by construction.
        miss[ambiguous] = True
        return miss

    # Distinct blocks in a window == intervening accesses whose next
    # occurrence (in set-local coordinates) falls at or beyond the
    # current access.
    #
    # Lay the trace out set-major with each set's block of the layout
    # followed by padding of its own size, which makes the padded
    # coordinate of an access simply ``2*pos - local``.  A window read
    # that overruns its end then lands either on a later access of the
    # *same* set (its next-local exceeds its own local, which exceeds
    # the threshold, so it always counts) or on sentinel padding (also
    # counts) — never on another set — so the overrun contributes
    # exactly ``width - length`` and the per-element window mask
    # disappears into a subtraction.
    # Sort the ambiguous windows by length up front so the batched
    # scans below slice contiguous ranges.
    prev_amb = prev[ambiguous]
    by_length = _radix_argsort(pos_in_layout[ambiguous]
                               - pos_in_layout[prev_amb])
    amb = ambiguous[by_length]
    prev_amb = prev_amb[by_length]
    padded = 2 * pos_in_layout - local
    starts = padded[prev_amb] + np.int32(1)
    lengths = pos_in_layout[amb] - pos_in_layout[prev_amb] - np.int32(1)
    max_len = int(lengths[-1])

    # Window values are next-occurrence set-local positions; uint16
    # cells halve gather bandwidth when every set-local index fits.
    next_locals = local[later]
    if max_group <= 0xFFFF:
        cell = np.uint16
        sentinel = 0xFFFF
    else:
        cell = np.int32
        sentinel = np.iinfo(np.int32).max
    layout = np.full(2 * n + max_len, sentinel, dtype=cell)
    layout[padded[earlier]] = next_locals.astype(cell, copy=False)
    thresholds = local[amb].astype(cell)

    # Scan in chunks, each chunk's width capped at 1.25x its shortest
    # length: a window's overrun then stays shorter than the window
    # itself, hence inside its set's padding.
    amb_miss = np.empty(amb.size, dtype=bool)
    m = amb.size
    cols = np.arange(max_len, dtype=np.int32)
    index_buf = np.empty(_BATCH_ELEMENT_LIMIT, dtype=np.int32)
    window_buf = np.empty(_BATCH_ELEMENT_LIMIT, dtype=cell)
    closes_buf = np.empty(_BATCH_ELEMENT_LIMIT, dtype=bool)
    lo = 0
    while lo < m:
        shortest = int(lengths[lo])
        hi = min(lo + max(_BATCH_ELEMENT_LIMIT // shortest, 1), m)
        hi = int(np.searchsorted(lengths[:hi],
                                 shortest + (shortest >> 2), "right"))
        hi = max(hi, lo + 1)
        width = int(lengths[hi - 1])
        hi = min(lo + max(_BATCH_ELEMENT_LIMIT // width, 1), hi)
        width = int(lengths[hi - 1])
        rows = hi - lo
        indices = index_buf[:rows * width].reshape(rows, width)
        np.add(starts[lo:hi, None], cols[:width], out=indices)
        windows = window_buf[:rows * width].reshape(rows, width)
        np.take(layout, indices, out=windows)
        closes = closes_buf[:rows * width].reshape(rows, width)
        np.greater_equal(windows, thresholds[lo:hi, None], out=closes)
        counts = np.count_nonzero(closes, axis=1)
        # true distinct count = counts - (width - length); miss iff
        # that reaches the associativity
        amb_miss[lo:hi] = counts >= (assoc + width) - lengths[lo:hi]
        lo = hi
    miss[amb] = amb_miss
    return miss


def simulate_misses(
    indexing: IndexingFunction,
    block_addresses: np.ndarray,
    assoc: int,
    per_set_counters: bool = True,
) -> FastSimResult:
    """LRU set-associative miss counts for a block-address stream.

    Vectorized; bit-identical to driving the stream through
    :class:`~repro.cache.setassoc.SetAssociativeCache` with LRU
    replacement (see :func:`simulate_misses_reference`).

    Observability lives only at this boundary (one counter and one
    wall-time observation per *call*, nothing per access), and only
    when the registry is enabled; ``benchmarks/bench_obs_overhead.py``
    guards the disabled path at <2% over the bare core.
    """
    registry = get_registry()
    if not registry.enabled:
        return _simulate_misses_core(indexing, block_addresses, assoc,
                                     per_set_counters)
    start = perf_counter()
    result = _simulate_misses_core(indexing, block_addresses, assoc,
                                   per_set_counters)
    registry.counter("fastsim.calls").inc()
    registry.histogram("fastsim.wall_s").observe(perf_counter() - start)
    return result


def _simulate_misses_core(
    indexing: IndexingFunction,
    block_addresses: np.ndarray,
    assoc: int,
    per_set_counters: bool = True,
) -> FastSimResult:
    """The uninstrumented simulation body (also the overhead-guard
    baseline)."""
    if assoc < 1:
        raise ValueError("associativity must be positive")
    blocks = np.ascontiguousarray(block_addresses, dtype=np.uint64)
    if blocks.ndim != 1:
        raise ValueError("block addresses must be one-dimensional")
    n_sets = indexing.n_sets
    if len(blocks) == 0:
        empty = np.zeros(n_sets, dtype=np.int64) if per_set_counters else None
        return FastSimResult(0, 0, empty,
                             empty.copy() if per_set_counters else None)
    sets = np.asarray(indexing.index_array(blocks), dtype=np.int64)
    miss = _lru_miss_mask(blocks, sets, assoc, smax=n_sets - 1)
    set_accesses = set_misses = None
    if per_set_counters:
        set_accesses = np.bincount(sets, minlength=n_sets)
        set_misses = np.bincount(sets[miss], minlength=n_sets)
    return FastSimResult(
        accesses=len(blocks),
        misses=int(np.count_nonzero(miss)),
        set_accesses=set_accesses,
        set_misses=set_misses,
    )


def simulate_misses_reference(
    indexing: IndexingFunction,
    block_addresses: np.ndarray,
    assoc: int,
    per_set_counters: bool = True,
) -> FastSimResult:
    """The original per-access Python loop; the equivalence oracle.

    Kept as the property-test reference for :func:`simulate_misses`
    and as the baseline the vectorized-speedup benchmark compares
    against.
    """
    if assoc < 1:
        raise ValueError("associativity must be positive")
    blocks = np.ascontiguousarray(block_addresses, dtype=np.uint64)
    if blocks.ndim != 1:
        raise ValueError("block addresses must be one-dimensional")
    sets = indexing.index_array(blocks)
    n_sets = indexing.n_sets
    set_accesses = np.zeros(n_sets, dtype=np.int64) if per_set_counters else None
    set_misses = np.zeros(n_sets, dtype=np.int64) if per_set_counters else None

    lru = [[] for _ in range(n_sets)]  # most recent last, length <= assoc
    misses = 0
    for block, set_index in zip(blocks.tolist(), sets.tolist()):
        ways = lru[set_index]
        try:
            ways.remove(block)
        except ValueError:
            misses += 1
            if per_set_counters:
                set_misses[set_index] += 1
            if len(ways) >= assoc:
                del ways[0]
        ways.append(block)
        if per_set_counters:
            set_accesses[set_index] += 1
    return FastSimResult(
        accesses=len(blocks),
        misses=misses,
        set_accesses=set_accesses,
        set_misses=set_misses,
    )


class _SingleSetIndexing(IndexingFunction):
    """Maps every block to set 0 (fully associative as one LRU set)."""

    name = "single-set"

    def __init__(self):
        super().__init__(1)

    def index(self, block_address: int) -> int:
        return 0

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        return np.zeros(len(block_addresses), dtype=np.int64)


def simulate_fully_associative_misses(
    block_addresses: np.ndarray, n_blocks: int
) -> FastSimResult:
    """LRU fully associative miss counts (single-"set" counters).

    A fully associative LRU cache of ``n_blocks`` frames is exactly one
    LRU set with associativity ``n_blocks``, so this reuses the
    vectorized stack-distance path.
    """
    if n_blocks < 1:
        raise ValueError("capacity must be positive")
    return simulate_misses(_SingleSetIndexing(), block_addresses, n_blocks)

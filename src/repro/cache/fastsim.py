"""Fast miss-only simulation for single-hash LRU caches.

The cycle-level model in :class:`~repro.cache.setassoc.SetAssociativeCache`
pays Python-object overhead on every access.  When an experiment needs
only hit/miss counts — the miss-reduction figures, the uniformity
classification, design-space sweeps — this path is several times
faster: set indices are computed in one vectorized call, and each
access then touches a per-set LRU list of at most ``assoc`` entries
with no intermediate objects.

Equivalence with the reference model is property-tested; any divergence
is a bug in one of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.base import IndexingFunction


@dataclass(frozen=True)
class FastSimResult:
    """Counters produced by a fast simulation run."""

    accesses: int
    misses: int
    set_accesses: np.ndarray
    set_misses: np.ndarray

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def simulate_misses(
    indexing: IndexingFunction,
    block_addresses: np.ndarray,
    assoc: int,
    per_set_counters: bool = True,
) -> FastSimResult:
    """LRU set-associative miss counts for a block-address stream."""
    if assoc < 1:
        raise ValueError("associativity must be positive")
    blocks = np.ascontiguousarray(block_addresses, dtype=np.uint64)
    if blocks.ndim != 1:
        raise ValueError("block addresses must be one-dimensional")
    sets = indexing.index_array(blocks)
    n_sets = indexing.n_sets
    set_accesses = np.zeros(n_sets, dtype=np.int64) if per_set_counters else None
    set_misses = np.zeros(n_sets, dtype=np.int64) if per_set_counters else None

    lru = [[] for _ in range(n_sets)]  # most recent last, length <= assoc
    misses = 0
    for block, set_index in zip(blocks.tolist(), sets.tolist()):
        ways = lru[set_index]
        try:
            ways.remove(block)
        except ValueError:
            misses += 1
            if per_set_counters:
                set_misses[set_index] += 1
            if len(ways) >= assoc:
                del ways[0]
        ways.append(block)
        if per_set_counters:
            set_accesses[set_index] += 1
    return FastSimResult(
        accesses=len(blocks),
        misses=misses,
        set_accesses=set_accesses,
        set_misses=set_misses,
    )


def simulate_fully_associative_misses(
    block_addresses: np.ndarray, n_blocks: int
) -> FastSimResult:
    """LRU fully associative miss counts (single-"set" counters)."""
    if n_blocks < 1:
        raise ValueError("capacity must be positive")
    blocks = np.ascontiguousarray(block_addresses, dtype=np.uint64)
    from collections import OrderedDict
    lru: "OrderedDict[int, None]" = OrderedDict()
    misses = 0
    for block in blocks.tolist():
        if block in lru:
            lru.move_to_end(block)
        else:
            misses += 1
            if len(lru) >= n_blocks:
                lru.popitem(last=False)
            lru[block] = None
    return FastSimResult(
        accesses=len(blocks),
        misses=misses,
        set_accesses=np.array([len(blocks)], dtype=np.int64),
        set_misses=np.array([misses], dtype=np.int64),
    )

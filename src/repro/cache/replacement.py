"""Replacement policies for set-associative caches.

The paper's conventional caches use true LRU; the skewed associative
cache cannot implement LRU cheaply (Section 3.3) and uses pseudo-LRU
policies instead — those bank-selection policies live in
:mod:`repro.cache.skewed`.  Here are the per-set policies for
conventional caches: LRU, tree-PLRU, NRU, FIFO, and a deterministic
pseudo-random policy.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Type


class ReplacementPolicy(abc.ABC):
    """Per-set victim selection for a conventional W-way cache.

    The cache calls :meth:`on_hit`/:meth:`on_fill` to update recency
    state and :meth:`victim` only when the set is full.
    """

    def __init__(self, n_sets: int, assoc: int):
        if n_sets < 1 or assoc < 1:
            raise ValueError("need at least one set and one way")
        self.n_sets = n_sets
        self.assoc = assoc

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        """Record a hit on ``way`` of ``set_index``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record a fill (after miss) into ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Way to evict from a full ``set_index``."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used; what the paper's conventional L2 uses."""

    def __init__(self, n_sets: int, assoc: int):
        super().__init__(n_sets, assoc)
        # Most-recently-used way at the end of each list.
        self._order: List[List[int]] = [list(range(assoc)) for _ in range(n_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    on_fill = on_hit

    def victim(self, set_index: int) -> int:
        return self._order[set_index][0]


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (requires a power-of-two associativity)."""

    def __init__(self, n_sets: int, assoc: int):
        super().__init__(n_sets, assoc)
        if assoc & (assoc - 1):
            raise ValueError("tree-PLRU needs a power-of-two associativity")
        self._bits: List[List[int]] = [[0] * max(1, assoc - 1) for _ in range(n_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        # Walk from root to the leaf for `way`, pointing each node away
        # from the path taken.
        bits = self._bits[set_index]
        node = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            go_right = way >= half
            bits[node] = 0 if go_right else 1  # point away
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way -= half
            span = half

    on_hit = _touch
    on_fill = _touch

    def victim(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 0
        way = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        return way


class NRUPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per line."""

    def __init__(self, n_sets: int, assoc: int):
        super().__init__(n_sets, assoc)
        self._ref: List[List[bool]] = [[False] * assoc for _ in range(n_sets)]

    def _mark(self, set_index: int, way: int) -> None:
        ref = self._ref[set_index]
        ref[way] = True
        if all(ref):
            # All referenced: clear everyone else, keep this one marked.
            for w in range(self.assoc):
                ref[w] = w == way

    on_hit = _mark
    on_fill = _mark

    def victim(self, set_index: int) -> int:
        ref = self._ref[set_index]
        for way, marked in enumerate(ref):
            if not marked:
                return way
        return 0  # unreachable given _mark's invariant; defensive


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out; ignores hits entirely."""

    def __init__(self, n_sets: int, assoc: int):
        super().__init__(n_sets, assoc)
        self._next: List[int] = [0] * n_sets

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        if way == self._next[set_index]:
            self._next[set_index] = (way + 1) % self.assoc

    def victim(self, set_index: int) -> int:
        return self._next[set_index]


class RandomPolicy(ReplacementPolicy):
    """Deterministic pseudo-random victim (xorshift, fixed seed)."""

    def __init__(self, n_sets: int, assoc: int, seed: int = 0x9E3779B9):
        super().__init__(n_sets, assoc)
        self._state = seed or 1

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        s = self._state
        s ^= (s << 13) & 0xFFFFFFFF
        s ^= s >> 17
        s ^= (s << 5) & 0xFFFFFFFF
        self._state = s
        return s % self.assoc


_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "plru": TreePLRUPolicy,
    "nru": NRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_replacement(key: str, n_sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by key (lru/plru/nru/fifo/random)."""
    try:
        cls = _POLICIES[key]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown replacement {key!r}; known: {known}") from None
    return cls(n_sets, assoc)

"""Trace containers, deterministic synthetic stream builders, and
npz / Dinero file I/O."""

from repro.trace.io import (
    load_trace_npz,
    read_dinero,
    save_trace_npz,
    write_dinero,
)
from repro.trace.multiprogram import interleave_traces
from repro.trace.records import Trace, TraceMetadata
from repro.trace.synthetic import (
    blocked_sweep,
    gather_scatter,
    hot_cold_mix,
    interleaved_streams,
    pointer_chase,
    strided_stream,
    write_mask,
)

__all__ = [
    "Trace",
    "TraceMetadata",
    "blocked_sweep",
    "load_trace_npz",
    "read_dinero",
    "save_trace_npz",
    "write_dinero",
    "gather_scatter",
    "hot_cold_mix",
    "interleave_traces",
    "interleaved_streams",
    "pointer_chase",
    "strided_stream",
    "write_mask",
]

"""Trace persistence: compressed numpy archives and Dinero text traces.

Two formats:

* **npz** — the native format: addresses, write mask, and the CPU
  metadata, round-tripped losslessly.  Use this to cache generated
  workload traces between runs.
* **Dinero** — the classic ``label address`` text format of Dinero IV
  (label 0 = read, 1 = write, 2 = instruction fetch; addresses in hex).
  Reading it lets real program traces drive the simulator; writing it
  lets our synthetic workloads drive other cache simulators.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

import numpy as np

from repro.trace.records import Trace, TraceMetadata

_DINERO_READ = 0
_DINERO_WRITE = 1
_DINERO_IFETCH = 2


def save_trace_npz(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace (and its metadata) to a compressed .npz archive."""
    np.savez_compressed(
        path,
        addresses=trace.addresses,
        is_write=trace.is_write,
        name=np.array(trace.name),
        instructions_per_access=np.array(trace.meta.instructions_per_access),
        mispredicts_per_kaccess=np.array(trace.meta.mispredicts_per_kaccess),
        mlp=np.array(trace.meta.mlp),
    )


def load_trace_npz(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace written by :func:`save_trace_npz`."""
    with np.load(path, allow_pickle=False) as data:
        meta = TraceMetadata(
            instructions_per_access=float(data["instructions_per_access"]),
            mispredicts_per_kaccess=float(data["mispredicts_per_kaccess"]),
            mlp=float(data["mlp"]),
        )
        return Trace(
            name=str(data["name"]),
            addresses=data["addresses"],
            is_write=data["is_write"],
            meta=meta,
        )


def write_dinero(trace: Trace, stream: TextIO) -> int:
    """Write the trace in Dinero 'label address' format; returns the
    number of records written.  Instruction fetches are not modeled, so
    only labels 0 (read) and 1 (write) are produced."""
    count = 0
    for address, is_write in zip(trace.addresses, trace.is_write):
        label = _DINERO_WRITE if is_write else _DINERO_READ
        stream.write(f"{label} {int(address):x}\n")
        count += 1
    return count


def read_dinero(stream: TextIO, name: str = "dinero",
                meta: TraceMetadata = None,
                include_ifetch: bool = False) -> Trace:
    """Parse a Dinero 'label address' stream into a Trace.

    Unknown labels and malformed lines raise ValueError with the line
    number; instruction fetches (label 2) are skipped unless
    ``include_ifetch`` (in which case they count as reads).
    """
    addresses = []
    writes = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: expected 'label address', "
                             f"got {line!r}")
        try:
            label = int(parts[0])
            address = int(parts[1], 16)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
        if label == _DINERO_IFETCH:
            if not include_ifetch:
                continue
            label = _DINERO_READ
        if label not in (_DINERO_READ, _DINERO_WRITE):
            raise ValueError(f"line {lineno}: unknown label {label}")
        if address < 0:
            raise ValueError(f"line {lineno}: negative address")
        addresses.append(address)
        writes.append(label == _DINERO_WRITE)
    if not addresses:
        raise ValueError("trace stream contained no records")
    return Trace(
        name=name,
        addresses=np.asarray(addresses, dtype=np.uint64),
        is_write=np.asarray(writes, dtype=bool),
        meta=meta or TraceMetadata(),
    )

"""Multiprogrammed traces: two workloads timesharing one cache.

Interleaves two traces in scheduling quanta, with the second program's
addresses relocated to a disjoint physical region (distinct processes).
Used by the shared-cache experiment to ask whether prime hashing's
conflict removal survives a co-runner polluting the L2 — and whether it
ever *creates* cross-program conflicts the traditional index did not
have.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import Trace, TraceMetadata


def interleave_traces(
    first: Trace,
    second: Trace,
    quantum: int = 2048,
    second_base: int = 1 << 36,
) -> Trace:
    """Round-robin the two traces in ``quantum``-access time slices.

    The shorter trace wraps until the longer is exhausted, modeling two
    long-running programs.  The combined metadata averages the
    per-program CPU characteristics (a scheduler-level approximation).
    """
    if quantum < 1:
        raise ValueError("quantum must be positive")
    if len(first) == 0 or len(second) == 0:
        raise ValueError("both traces must be non-empty")
    total = len(first) + len(second)
    addresses = np.empty(total, dtype=np.uint64)
    writes = np.empty(total, dtype=bool)
    pos_a = pos_b = out = 0
    relocated = second.addresses + np.uint64(second_base)
    take_from_first = True
    while out < total:
        if take_from_first and pos_a < len(first):
            end = min(pos_a + quantum, len(first))
            n = end - pos_a
            addresses[out:out + n] = first.addresses[pos_a:end]
            writes[out:out + n] = first.is_write[pos_a:end]
            pos_a = end
            out += n
        elif not take_from_first and pos_b < len(second):
            end = min(pos_b + quantum, len(second))
            n = end - pos_b
            addresses[out:out + n] = relocated[pos_b:end]
            writes[out:out + n] = second.is_write[pos_b:end]
            pos_b = end
            out += n
        take_from_first = not take_from_first
        if pos_a >= len(first) and pos_b >= len(second):
            break
        if pos_a >= len(first):
            take_from_first = False
        if pos_b >= len(second):
            take_from_first = True
    meta = TraceMetadata(
        instructions_per_access=(
            first.meta.instructions_per_access
            + second.meta.instructions_per_access
        ) / 2,
        mispredicts_per_kaccess=(
            first.meta.mispredicts_per_kaccess
            + second.meta.mispredicts_per_kaccess
        ) / 2,
        mlp=(first.meta.mlp + second.meta.mlp) / 2,
    )
    return Trace(
        name=f"{first.name}+{second.name}",
        addresses=addresses[:out],
        is_write=writes[:out],
        meta=meta,
    )

"""Memory-trace containers used by the simulator and workload models.

A :class:`Trace` is a dense array of byte addresses plus a write mask
and per-workload CPU metadata.  The metadata carries the non-memory
behavior the trace-driven timing model needs: how much computation sits
between memory accesses, how often branches mispredict, and how much
memory-level parallelism the code exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TraceMetadata:
    """CPU-side characteristics of a workload.

    Attributes:
        instructions_per_access: dynamic instructions per memory access
            (drives busy cycles).
        mispredicts_per_kaccess: branch mispredictions per 1000 memory
            accesses (drives "other stalls" via the branch penalty).
        mlp: average number of overlappable outstanding misses, >= 1
            (bounded by the machine's pending-load limit; divides the
            exposed memory latency).
    """

    instructions_per_access: float = 4.0
    mispredicts_per_kaccess: float = 5.0
    mlp: float = 1.5

    def __post_init__(self) -> None:
        if self.instructions_per_access <= 0:
            raise ValueError("instructions_per_access must be positive")
        if self.mispredicts_per_kaccess < 0:
            raise ValueError("mispredicts_per_kaccess cannot be negative")
        if self.mlp < 1.0:
            raise ValueError("mlp must be at least 1 (no negative overlap)")


@dataclass
class Trace:
    """A complete memory trace for one workload run."""

    name: str
    addresses: np.ndarray                 #: byte addresses, uint64
    is_write: np.ndarray                  #: bool mask, same length
    meta: TraceMetadata = field(default_factory=TraceMetadata)

    def __post_init__(self) -> None:
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.uint64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        if self.addresses.shape != self.is_write.shape:
            raise ValueError("addresses and is_write must have equal length")
        if self.addresses.ndim != 1:
            raise ValueError("a trace is one-dimensional")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def write_fraction(self) -> float:
        return float(self.is_write.mean()) if len(self) else 0.0

    def block_addresses(self, block_bytes: int) -> np.ndarray:
        """Addresses at cache-block granularity."""
        shift = np.uint64(int(block_bytes).bit_length() - 1)
        if (1 << int(shift)) != block_bytes:
            raise ValueError("block size must be a power of two")
        return self.addresses >> shift

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, accesses={len(self)}, "
            f"writes={self.write_fraction:.0%})"
        )

"""Deterministic building blocks for synthetic address streams.

The 23 workload models in :mod:`repro.workloads` are composed from
these primitives.  Every generator takes an explicit seed (where
randomness is involved) and returns plain numpy arrays of *byte*
addresses, so traces are reproducible run to run.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def strided_stream(
    base: int, stride_bytes: int, count: int, repeats: int = 1
) -> np.ndarray:
    """``repeats`` sequential sweeps of ``count`` strided addresses."""
    if count <= 0 or repeats <= 0:
        raise ValueError("count and repeats must be positive")
    sweep = np.uint64(base) + np.arange(count, dtype=np.uint64) * np.uint64(stride_bytes)
    return np.tile(sweep, repeats)


def interleaved_streams(streams: Sequence[np.ndarray]) -> np.ndarray:
    """Round-robin interleave equal-length streams (A1 B1 C1 A2 B2 ...).

    Models loop bodies touching several arrays per iteration; unequal
    lengths are truncated to the shortest.
    """
    if not streams:
        raise ValueError("need at least one stream")
    n = min(len(s) for s in streams)
    if n == 0:
        raise ValueError("streams must be non-empty")
    stacked = np.stack([np.asarray(s[:n], dtype=np.uint64) for s in streams], axis=1)
    return stacked.reshape(-1)


def pointer_chase(
    n_nodes: int,
    node_bytes: int,
    count: int,
    seed: int,
    base: int = 0,
    region_skew: float = 0.0,
) -> np.ndarray:
    """A pseudo-random pointer chase over heap-allocated nodes.

    ``region_skew`` in [0, 1) concentrates the chase onto a shrinking
    prefix of the node pool (hot allocation regions — the behavior that
    makes tree/mcf set-access histograms lopsided when node sizes are
    power-of-two multiples of the block size).
    """
    if n_nodes <= 0 or count <= 0:
        raise ValueError("n_nodes and count must be positive")
    if not 0.0 <= region_skew < 1.0:
        raise ValueError("region_skew must be in [0, 1)")
    rng = np.random.default_rng(seed)
    pool = max(1, int(n_nodes * (1.0 - region_skew)))
    nodes = rng.integers(0, pool, size=count, dtype=np.uint64)
    return np.uint64(base) + nodes * np.uint64(node_bytes)


def gather_scatter(
    table_base: int,
    table_entries: int,
    entry_bytes: int,
    index_stream: np.ndarray,
) -> np.ndarray:
    """Indexed accesses ``table[index[i]]`` (sparse matrix / hash table)."""
    idx = np.asarray(index_stream, dtype=np.uint64)
    if table_entries <= 0:
        raise ValueError("table must have entries")
    return np.uint64(table_base) + (idx % np.uint64(table_entries)) * np.uint64(entry_bytes)


def blocked_sweep(
    base: int,
    rows: int,
    cols: int,
    element_bytes: int,
    tile: int,
    row_major: bool = True,
) -> np.ndarray:
    """A tiled 2-D array walk (blocked linear algebra kernels).

    Walking a power-of-two-pitched matrix column-wise produces the
    power-of-two strides that thrash a traditionally indexed cache.
    """
    if rows <= 0 or cols <= 0 or tile <= 0:
        raise ValueError("rows, cols and tile must be positive")
    addresses: List[int] = []
    pitch = cols * element_bytes
    for tile_r in range(0, rows, tile):
        for tile_c in range(0, cols, tile):
            r_range = range(tile_r, min(tile_r + tile, rows))
            c_range = range(tile_c, min(tile_c + tile, cols))
            if row_major:
                addresses.extend(
                    base + r * pitch + c * element_bytes
                    for r in r_range for c in c_range
                )
            else:
                addresses.extend(
                    base + r * pitch + c * element_bytes
                    for c in c_range for r in r_range
                )
    return np.asarray(addresses, dtype=np.uint64)


def hot_cold_mix(
    hot: np.ndarray, cold: np.ndarray, hot_fraction: float, seed: int
) -> np.ndarray:
    """Blend a hot working set with cold background traffic.

    Each output element draws from ``hot`` with probability
    ``hot_fraction`` (sequentially consumed) else from ``cold``; output
    length is ``len(hot) + len(cold)`` with both streams fully consumed
    in order, modeling temporal reuse against streaming traffic.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be strictly between 0 and 1")
    hot = np.asarray(hot, dtype=np.uint64)
    cold = np.asarray(cold, dtype=np.uint64)
    rng = np.random.default_rng(seed)
    total = len(hot) + len(cold)
    take_hot = np.zeros(total, dtype=bool)
    # Choose positions for hot elements without replacement, in order.
    hot_positions = rng.choice(total, size=len(hot), replace=False)
    take_hot[hot_positions] = True
    out = np.empty(total, dtype=np.uint64)
    out[take_hot] = hot
    out[~take_hot] = cold
    return out


def write_mask(n: int, write_fraction: float, seed: int) -> np.ndarray:
    """Deterministic boolean mask marking ~write_fraction of accesses."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    return rng.random(n) < write_fraction

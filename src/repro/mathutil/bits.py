"""Bit-field helpers mirroring the address decomposition of Figure 1.

A block address ``a`` is split into the ``log2(n_set_phys)`` index bits
``x`` and successive tag chunks ``t1, t2, ...`` of the same width.  The
hardware models in :mod:`repro.hardware` are defined purely in terms of
these fields.
"""

from __future__ import annotations

from typing import List, Tuple


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return log2(n) for an exact power of two; raise otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def bit_length(n: int) -> int:
    """Number of bits needed to represent ``n`` (0 needs 1 bit here)."""
    return max(1, int(n).bit_length())


def bit_field(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or width < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & ((1 << width) - 1)


def split_address(block_address: int, index_bits: int, address_bits: int) -> Tuple[int, List[int]]:
    """Split a block address into ``(x, [t1, t2, ...])`` per Figure 1.

    ``x`` is the low ``index_bits`` bits; each ``t_j`` is the next
    ``index_bits``-wide chunk of the tag, until ``address_bits`` are
    consumed.  The last chunk may be narrower.
    """
    if block_address < 0:
        raise ValueError("block address must be non-negative")
    x = bit_field(block_address, 0, index_bits)
    chunks: List[int] = []
    low = index_bits
    while low < address_bits:
        width = min(index_bits, address_bits - low)
        chunks.append(bit_field(block_address, low, width))
        low += index_bits
    return x, chunks


def circular_shift_left(value: int, shift: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``shift``.

    Used by Seznec's skewed associative hashing, which circularly shifts
    the tag chunk by a different amount in each cache bank.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    shift %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << shift) | (value >> (width - shift))) & mask


def ones_positions(n: int) -> List[int]:
    """Bit positions set in ``n`` (low to high).

    The hardware cost model uses this to turn a constant multiply into
    its shift-and-add decomposition (e.g. 9 = 1001b -> [0, 3]).
    """
    positions = []
    bit = 0
    while n:
        if n & 1:
            positions.append(bit)
        n >>= 1
        bit += 1
    return positions

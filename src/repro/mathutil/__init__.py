"""Number-theory and bit-manipulation utilities.

These back the prime-number indexing functions (largest prime below a
power of two, Mersenne primes) and the hardware models (bit-field
extraction mirroring Figure 1 of the paper).
"""

from repro.mathutil.bits import (
    bit_field,
    bit_length,
    circular_shift_left,
    is_power_of_two,
    log2_exact,
    ones_positions,
    split_address,
)
from repro.mathutil.primes import (
    LADDER_INPUT_BOUND,
    MILLER_RABIN_DETERMINISTIC_BOUND,
    is_mersenne_prime,
    is_prime,
    largest_prime_below,
    mersenne_primes_below,
    next_prime,
    prev_prime,
    primes_below,
)

__all__ = [
    "LADDER_INPUT_BOUND",
    "MILLER_RABIN_DETERMINISTIC_BOUND",
    "bit_field",
    "bit_length",
    "circular_shift_left",
    "is_mersenne_prime",
    "is_power_of_two",
    "is_prime",
    "largest_prime_below",
    "log2_exact",
    "mersenne_primes_below",
    "next_prime",
    "ones_positions",
    "prev_prime",
    "primes_below",
    "split_address",
]

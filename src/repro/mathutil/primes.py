"""Primality helpers used to select cache set counts.

The paper's prime modulo hashing uses ``n_set``, the largest prime
strictly below the physical (power-of-two) number of sets.  All
functions here are deterministic; :func:`is_prime` is a deterministic
Miller-Rabin valid for every 64-bit integer, which covers any plausible
cache geometry.
"""

from __future__ import annotations

from typing import List

# Witnesses proven sufficient for a deterministic Miller-Rabin test on
# all integers below 3,317,044,064,679,887,385,961,981 (> 2^64).
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

#: Largest integer (exclusive) for which the witness set above is a
#: *proof*, not a probabilistic argument (Sorenson & Webster 2015).
MILLER_RABIN_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

#: Inputs the ladder functions (:func:`next_prime` / :func:`prev_prime`)
#: accept.  Shard, set, and key counts in this codebase are all 64-bit;
#: capping here keeps every ladder walk inside the deterministic
#: Miller-Rabin range with margin (the prime gap below 2**66 is < 1500).
LADDER_INPUT_BOUND = 1 << 64


def is_prime(n: int) -> bool:
    """Return True if ``n`` is prime (deterministic for n < 2**64).

    Raises ValueError for ``n`` at or beyond
    :data:`MILLER_RABIN_DETERMINISTIC_BOUND`, where the fixed witness
    set stops being a proof — a wrong "prime" there would silently
    corrupt a shard count, so the function refuses rather than guesses.
    """
    if n >= MILLER_RABIN_DETERMINISTIC_BOUND:
        raise ValueError(
            f"is_prime({n}) exceeds the deterministic Miller-Rabin "
            f"bound {MILLER_RABIN_DETERMINISTIC_BOUND}"
        )
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 as d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def prev_prime(n: int) -> int:
    """Return the largest prime strictly less than ``n``.

    Raises ValueError when no prime exists below ``n`` (i.e. ``n <= 2``
    — including zero and negative inputs) and for ``n`` beyond
    :data:`LADDER_INPUT_BOUND`, so a resize controller walking the
    prime ladder gets a loud error instead of a silently unproven
    primality verdict.
    """
    if n <= 2:
        raise ValueError(f"no prime below {n}")
    if n > LADDER_INPUT_BOUND:
        raise ValueError(
            f"prev_prime({n}) exceeds the supported input bound "
            f"2**64 (shard/set counts are 64-bit)"
        )
    candidate = n - 1
    if candidate > 2 and candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 2 if candidate > 3 else 1
    raise ValueError(f"no prime below {n}")  # pragma: no cover - unreachable


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``.

    Accepts any ``n`` up to :data:`LADDER_INPUT_BOUND` (negative inputs
    included — the answer is 2); larger inputs raise ValueError because
    the search would leave the range this module can certify.  Bertrand's
    postulate bounds the walk, so the result for any accepted input is
    still safely below the deterministic Miller-Rabin limit.
    """
    if n > LADDER_INPUT_BOUND:
        raise ValueError(
            f"next_prime({n}) exceeds the supported input bound "
            f"2**64 (shard/set counts are 64-bit)"
        )
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while True:
        if is_prime(candidate):
            return candidate
        candidate += 2 if candidate > 2 else 1


def largest_prime_below(power_of_two: int) -> int:
    """Largest prime below a power-of-two set count (paper Table 1).

    This is the ``n_set`` the prime modulo hashing uses for a cache with
    ``power_of_two`` physical sets.
    """
    if power_of_two < 4:
        raise ValueError("need at least 4 physical sets to pick a prime")
    return prev_prime(power_of_two)


def primes_below(limit: int) -> List[int]:
    """All primes strictly below ``limit`` via a sieve of Eratosthenes."""
    if limit <= 2:
        return []
    sieve = bytearray([1]) * limit
    sieve[0] = sieve[1] = 0
    for p in range(2, int(limit ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
    return [i for i in range(limit) if sieve[i]]


def is_mersenne_prime(n: int) -> bool:
    """True when ``n`` is prime and of the form 2**k - 1.

    Mersenne primes admit the simplified folding of Equation 5 (Δ = 1);
    the paper's contribution is removing this restriction.
    """
    return (n & (n + 1)) == 0 and is_prime(n)


def mersenne_primes_below(limit: int) -> List[int]:
    """All Mersenne primes below ``limit`` (sparse: 3, 7, 31, 127, 8191, ...)."""
    result = []
    k = 2
    while (1 << k) - 1 < limit:
        candidate = (1 << k) - 1
        if is_prime(candidate):
            result.append(candidate)
        k += 1
    return result

"""Content-addressed identity of a simulation run.

A single cache-scheme simulation is fully determined by five inputs:
the workload, the trace scale, the RNG seed, the scheme key, and the
skewed-cache replacement policy — plus the machine configuration the
hierarchy is built from.  :class:`SimulationKey` freezes all of them
into one hashable value whose :meth:`~SimulationKey.fingerprint` is
stable across processes and sessions, which is what lets the on-disk
result cache (:mod:`repro.engine.cache`) reuse runs between figure
regenerations, benchmarks and the examples.

Any change to the result payload layout bumps
:data:`RESULT_SCHEMA_VERSION`; any change to the machine parameters
changes :func:`machine_fingerprint`.  Either way stale cache entries
stop matching instead of being silently reused.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.cpu.config import MachineConfig

#: Version of the persisted result payload.  Bump when the meaning or
#: layout of cached results changes; old entries are then ignored.
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunConfig:
    """Knobs shared by all simulation-based experiments.

    Attributes:
        scale: trace-length multiplier (1.0 = ~120k accesses/app; tests
            and benches use smaller values).
        seed: RNG seed for the workload generators.
        skew_replacement: pseudo-LRU used by the skewed caches
            (``enru``, the paper's default, or ``nrunrw``).
    """

    scale: float = 1.0
    seed: int = 0
    skew_replacement: str = "enru"


def machine_fingerprint(machine: MachineConfig = None) -> str:
    """Short stable digest of every MachineConfig field."""
    machine = machine or MachineConfig.paper_default()
    payload = json.dumps(asdict(machine), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class SimulationKey:
    """Everything that determines one (workload, scheme) run."""

    workload: str
    scheme: str
    scale: float
    seed: int
    skew_replacement: str
    machine: str = field(default_factory=machine_fingerprint)
    schema: int = RESULT_SCHEMA_VERSION

    @classmethod
    def for_run(cls, workload: str, scheme: str, config: RunConfig,
                machine: MachineConfig = None) -> "SimulationKey":
        """Key for one cell of a RunConfig-driven grid."""
        return cls(
            workload=workload,
            scheme=scheme,
            scale=config.scale,
            seed=config.seed,
            skew_replacement=config.skew_replacement,
            machine=machine_fingerprint(machine),
        )

    def fingerprint(self) -> str:
        """Hex digest over every field; the content address."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def stem(self) -> str:
        """Human-readable file stem: ``<workload>--<scheme>--<hash>``."""
        scheme = self.scheme.replace("/", "-")
        return f"{self.workload}--{scheme}--{self.fingerprint()}"

"""The simulation engine every experiment flows through.

:class:`SimulationEngine` unifies three concerns that used to live in
separate, partially-private pieces (``ResultStore`` memoization, the
``diskcache`` persistence subclass, and ``experiments.parallel``'s
regenerate-per-cell worker):

* **memoization + persistence** — every result is content-addressed by
  a :class:`~repro.engine.key.SimulationKey`; with a cache directory
  configured, results survive across processes and sessions and a
  warm cache performs zero new simulations;
* **trace materialization** — each workload trace is generated once per
  engine (and once per worker task in parallel mode) and shared across
  all schemes, instead of once per grid cell;
* **grid scheduling** — :meth:`SimulationEngine.run_grid` schedules the
  process pool *by workload*, so a worker synthesizes its workload's
  trace a single time and then simulates every outstanding scheme
  against it.

The engine is call-compatible with the historical ``ResultStore``
(``result`` / ``speedup`` / ``miss_ratio`` / ``.config``), so every
figure builder accepts either.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cpu.config import MachineConfig
from repro.cpu.simulator import ExecutionResult, simulate_scheme
from repro.engine.cache import ResultCache
from repro.engine.key import RunConfig, SimulationKey
from repro.engine.materialize import TraceMaterializer
from repro.obs import get_registry, trace_span
from repro.workloads import get_workload

#: One parallel task: simulate every listed scheme of one workload.
_WorkloadTask = Tuple[str, Tuple[str, ...], RunConfig, Optional[MachineConfig]]


def _simulate_workload_schemes(
    task: _WorkloadTask,
) -> Tuple[str, List[Tuple[str, ExecutionResult]]]:
    """Worker: one trace generation, many scheme simulations.

    Module-level so it pickles under the spawn start method too.
    """
    workload, schemes, config, machine = task
    trace = get_workload(workload).trace(scale=config.scale, seed=config.seed)
    return workload, [
        (
            scheme,
            simulate_scheme(
                trace, scheme, config=machine,
                skew_replacement=config.skew_replacement,
            ),
        )
        for scheme in schemes
    ]


class SimulationEngine:
    """Memoizing, disk-caching, trace-sharing simulation runner.

    Args:
        config: scale / seed / skew replacement for every run.
        machine: architecture parameters (default: paper Table 3).
        cache_dir: directory for the persistent result cache; ``None``
            disables persistence (in-memory memoization only).
        jobs: default worker-process count for :meth:`run_grid`
            (0 or 1 = serial, in-process).
    """

    def __init__(self, config: RunConfig = RunConfig(),
                 machine: MachineConfig = None,
                 cache_dir: str = None, jobs: int = 1):
        self.config = config
        self.machine = machine or MachineConfig.paper_default()
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        self.traces = TraceMaterializer(config)
        self.jobs = jobs
        #: simulations actually executed by this engine (cache misses)
        self.sim_count = 0
        self._results: Dict[Tuple[str, str], ExecutionResult] = {}

    # -- identity ------------------------------------------------------

    def key(self, workload: str, scheme: str) -> SimulationKey:
        """Content address of one grid cell under this engine's config."""
        return SimulationKey.for_run(workload, scheme, self.config,
                                     self.machine)

    # -- single-cell API (ResultStore-compatible) ----------------------

    def result(self, workload: str, scheme: str) -> ExecutionResult:
        """Simulate (or fetch the cached run of) one configuration."""
        cell = (workload, scheme)
        cached = self._results.get(cell)
        if cached is not None:
            return cached
        if self.cache is not None:
            persisted = self.cache.get(self.key(workload, scheme))
            if persisted is not None:
                self._results[cell] = persisted
                return persisted
        result = self._simulate(workload, scheme)
        self._store(cell, result)
        return result

    def speedup(self, workload: str, scheme: str) -> float:
        """Speedup of ``scheme`` over Base for one workload."""
        return self.result(workload, scheme).speedup_over(
            self.result(workload, "base")
        )

    def miss_ratio(self, workload: str, scheme: str) -> float:
        """L2 misses normalized to Base for one workload."""
        base = self.result(workload, "base").l2_misses
        if base == 0:
            return 1.0
        return self.result(workload, scheme).l2_misses / base

    def preload(self, results: Dict[Tuple[str, str], ExecutionResult]) -> None:
        """Adopt externally computed results (and persist them)."""
        for cell, result in results.items():
            self._store(cell, result)

    def _simulate(self, workload: str, scheme: str) -> ExecutionResult:
        trace = self.traces.get(workload)
        self.sim_count += 1
        get_registry().counter("engine.sim.runs").inc()
        with trace_span("simulate", workload=workload, scheme=scheme):
            return simulate_scheme(
                trace, scheme, config=self.machine,
                skew_replacement=self.config.skew_replacement,
            )

    def _store(self, cell: Tuple[str, str], result: ExecutionResult) -> None:
        self._results[cell] = result
        if self.cache is not None:
            self.cache.put(self.key(*cell), result)

    # -- grid API ------------------------------------------------------

    def missing_cells(self, workloads: Iterable[str],
                      schemes: Iterable[str]) -> Dict[str, List[str]]:
        """Grid cells not yet in memory or on disk, grouped by workload."""
        missing: Dict[str, List[str]] = {}
        for workload in workloads:
            for scheme in schemes:
                cell = (workload, scheme)
                if cell in self._results:
                    continue
                if self.cache is not None:
                    persisted = self.cache.get(self.key(workload, scheme))
                    if persisted is not None:
                        self._results[cell] = persisted
                        continue
                missing.setdefault(workload, []).append(scheme)
        return missing

    def run_grid(self, workloads: Iterable[str], schemes: Iterable[str],
                 jobs: int = None) -> Dict[Tuple[str, str], ExecutionResult]:
        """Ensure every (workload, scheme) cell is simulated.

        Cells already memoized or persisted are reused; the remainder
        are scheduled one *workload* per task so each trace is
        generated exactly once, serially or across ``jobs`` worker
        processes.  Returns the complete grid.
        """
        workloads = list(workloads)
        schemes = list(schemes)
        jobs = self.jobs if jobs is None else jobs
        with trace_span("run_grid", workloads=len(workloads),
                        schemes=len(schemes)):
            missing = self.missing_cells(workloads, schemes)
            if missing:
                if jobs and jobs > 1:
                    tasks: List[_WorkloadTask] = [
                        (workload, tuple(todo), self.config, self.machine)
                        for workload, todo in missing.items()
                    ]
                    max_workers = min(jobs, len(tasks)) or 1
                    with trace_span("parallel_grid", tasks=len(tasks),
                                    jobs=max_workers), \
                            ProcessPoolExecutor(max_workers=max_workers) as pool:
                        for workload, cells in pool.map(
                            _simulate_workload_schemes, tasks
                        ):
                            self.sim_count += len(cells)
                            get_registry().counter(
                                "engine.sim.runs").inc(len(cells))
                            for scheme, result in cells:
                                self._store((workload, scheme), result)
                else:
                    for workload, todo in missing.items():
                        for scheme in todo:
                            self._store((workload, scheme),
                                        self._simulate(workload, scheme))
        return {
            (w, s): self._results[(w, s)] for w in workloads for s in schemes
        }


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` style auto selection."""
    return os.cpu_count() or 1

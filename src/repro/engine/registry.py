"""Declarative experiment registry and the shared artifact schema.

Every paper table/figure (and every extension/ablation) registers an
:class:`ExperimentSpec` describing how to *build* a JSON-serializable
artifact from an :class:`ExperimentContext` and how to *render* that
artifact back into the terminal report.  The registry gives all of them
one uniform surface:

* ``python -m repro.experiments <name> --scale --seed --jobs
  --cache-dir`` runs any registered experiment;
* every artifact conforms to one schema (below), so reporting and the
  benchmarks can consume them without per-experiment knowledge;
* rendering is decoupled from running — an artifact loaded from a JSON
  file renders identically to a freshly built one.

Artifact schema (version :data:`ARTIFACT_SCHEMA_VERSION`)::

    {
      "schema_version": 1,
      "experiment": "<registry name>",
      "title": "<human title>",
      "repro_version": "<package version>",
      "config": {"scale": float, "seed": int, "skew_replacement": str,
                 "params": {...extra experiment parameters...}},
      "data": {...experiment-specific JSON payload...}
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

import repro
from repro.engine.key import RunConfig
from repro.engine.runner import SimulationEngine

#: Version of the artifact envelope written by :func:`run_experiment`.
ARTIFACT_SCHEMA_VERSION = 1

#: Keys every artifact must carry, in envelope order.
ARTIFACT_REQUIRED_KEYS = (
    "schema_version", "experiment", "title", "repro_version", "config",
    "data",
)


@dataclass
class ExperimentContext:
    """Everything an experiment needs to build its artifact.

    Attributes:
        engine: the simulation engine (config, cache, trace sharing,
            parallel grid scheduling).
        params: experiment-specific parameters from the CLI (e.g. the
            ``--workload`` of the sweep experiments).
    """

    engine: SimulationEngine
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def config(self) -> RunConfig:
        return self.engine.config

    @property
    def jobs(self) -> int:
        return self.engine.jobs

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes:
        name: registry key (= CLI name).
        title: human-readable one-liner (shown by ``list``).
        build: builds the JSON-serializable ``data`` payload.
        render: renders a *full artifact* into the terminal report.
        uses_simulation: False for pure-analysis experiments
            (fragmentation, qualitative, machine, stride sweeps).
    """

    name: str
    title: str
    build: Callable[[ExperimentContext], Mapping]
    render: Callable[[Mapping], str]
    uses_simulation: bool = True


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add one experiment to the registry (idempotent per name)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment, loading the standard set."""
    _load_standard_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(all_experiment_names())
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def all_experiment_names() -> List[str]:
    """Registered experiment names, sorted."""
    _load_standard_experiments()
    return sorted(_REGISTRY)


def _load_standard_experiments() -> None:
    """Import the experiment modules so their specs self-register."""
    from repro.experiments import load_all_experiments

    load_all_experiments()


def run_experiment(name: str, context: ExperimentContext) -> Dict[str, Any]:
    """Build the named experiment's artifact (envelope + data)."""
    spec = get_experiment(name)
    data = spec.build(context)
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "experiment": spec.name,
        "title": spec.title,
        "repro_version": repro.__version__,
        "config": {
            "scale": context.config.scale,
            "seed": context.config.seed,
            "skew_replacement": context.config.skew_replacement,
            "params": dict(context.params),
        },
        "data": data,
    }


def render_artifact(artifact: Mapping) -> str:
    """Render any conforming artifact via its experiment's renderer."""
    validate_artifact(artifact)
    return get_experiment(artifact["experiment"]).render(artifact)


def validate_artifact(artifact: Mapping) -> None:
    """Raise ValueError unless ``artifact`` matches the shared schema."""
    missing = [k for k in ARTIFACT_REQUIRED_KEYS if k not in artifact]
    if missing:
        raise ValueError(f"artifact is missing keys: {', '.join(missing)}")
    if artifact["schema_version"] != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema v{artifact['schema_version']} != "
            f"supported v{ARTIFACT_SCHEMA_VERSION}"
        )
    config = artifact["config"]
    for field_name in ("scale", "seed", "skew_replacement", "params"):
        if field_name not in config:
            raise ValueError(f"artifact config is missing {field_name!r}")

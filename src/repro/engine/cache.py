"""Persistent on-disk cache of simulation results.

Layout (all under a configurable cache directory, default
``.repro-cache/``)::

    .repro-cache/
      v1/                                   # RESULT_SCHEMA_VERSION
        tree--pmod--<hash16>.json           # one ExecutionResult
        tree--pmod--<hash16>.npz            # optional array sidecar

Each JSON entry stores the full :class:`~repro.engine.key.SimulationKey`
next to the result; on load the stored key is compared field-by-field
against the requested one, so a truncated-hash collision or a
hand-edited file degrades to a cache miss instead of a wrong result.
Schema bumps move to a fresh ``v<N>/`` subdirectory, invalidating every
older entry at once; config changes (scale, seed, machine parameters,
…) change the fingerprint and therefore the filename.

Writes go through a temp file + :meth:`~pathlib.Path.replace` so
concurrent processes never observe a half-written entry.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.cpu.simulator import ExecutionResult
from repro.engine.key import RESULT_SCHEMA_VERSION, SimulationKey

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed JSON + npz store for simulation outputs."""

    def __init__(self, cache_dir: Union[str, os.PathLike] = DEFAULT_CACHE_DIR):
        self.root = Path(cache_dir) / f"v{RESULT_SCHEMA_VERSION}"
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: SimulationKey, suffix: str) -> Path:
        return self.root / f"{key.stem}{suffix}"

    def _publish(self, path: Path, write) -> None:
        """Atomically create ``path`` via a sibling temp file."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            write(tmp)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self.writes += 1

    # -- ExecutionResult entries --------------------------------------

    def get(self, key: SimulationKey) -> Optional[ExecutionResult]:
        """The cached result for ``key``, or None."""
        path = self._path(key, ".json")
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("key") != asdict(key):
            self.misses += 1  # fingerprint collision or stale schema
            return None
        self.hits += 1
        return ExecutionResult(**payload["result"])

    def put(self, key: SimulationKey, result: ExecutionResult) -> Path:
        """Persist one result; returns the entry path."""
        path = self._path(key, ".json")
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "key": asdict(key),
            "result": asdict(result),
        }

        def write(tmp: Path) -> None:
            with open(tmp, "w") as stream:
                json.dump(payload, stream, indent=1)

        self._publish(path, write)
        return path

    # -- npz array sidecars -------------------------------------------

    def get_arrays(self, key: SimulationKey) -> Optional[Dict[str, np.ndarray]]:
        """Arrays stored next to ``key``'s entry, or None."""
        path = self._path(key, ".npz")
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return arrays

    def put_arrays(self, key: SimulationKey, **arrays: np.ndarray) -> Path:
        """Persist named arrays as ``<stem>.npz``."""
        path = self._path(key, ".npz")

        def write(tmp: Path) -> None:
            # np.savez appends .npz when missing; write to the exact tmp
            # path by handing it an open file object instead.
            with open(tmp, "wb") as stream:
                np.savez(stream, **arrays)

        self._publish(path, write)
        return path

    def __repr__(self) -> str:
        return (f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes})")

"""Persistent on-disk cache of simulation results.

Layout (all under a configurable cache directory, default
``.repro-cache/``)::

    .repro-cache/
      v1/                                   # RESULT_SCHEMA_VERSION
        tree--pmod--<hash16>.json           # one ExecutionResult
        tree--pmod--<hash16>.npz            # optional array sidecar

Each JSON entry stores the full :class:`~repro.engine.key.SimulationKey`
next to the result; on load the stored key is compared field-by-field
against the requested one, so a truncated-hash collision or a
hand-edited file degrades to a cache miss instead of a wrong result.
Schema bumps move to a fresh ``v<N>/`` subdirectory, invalidating every
older entry at once; config changes (scale, seed, machine parameters,
…) change the fingerprint and therefore the filename.

Writes go through a temp file + :meth:`~pathlib.Path.replace` so
concurrent processes never observe a half-written entry.  Reads are
hardened the same way: a truncated or hand-corrupted entry — invalid
JSON, a payload of the wrong shape, a damaged npz — counts as a cache
miss and the broken file is discarded, so corruption can cost a re-run
but never an exception out of :class:`~repro.engine.runner.
SimulationEngine`.

Besides :class:`~repro.cpu.simulator.ExecutionResult` entries, the
cache stores free-form JSON payloads (``get_payload``/``put_payload``)
under the same content addressing; the ``store_sharding`` experiment
persists its per-(scheme, traffic) measurements through that surface.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.cpu.simulator import ExecutionResult
from repro.engine.key import RESULT_SCHEMA_VERSION, SimulationKey
from repro.obs import get_journal, get_registry

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed JSON + npz store for simulation outputs."""

    def __init__(self, cache_dir: Union[str, os.PathLike] = DEFAULT_CACHE_DIR):
        self.root = Path(cache_dir) / f"v{RESULT_SCHEMA_VERSION}"
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def _path(self, key: SimulationKey, suffix: str) -> Path:
        return self.root / f"{key.stem}{suffix}"

    def _hit(self) -> None:
        self.hits += 1
        get_registry().counter("engine.cache.hits").inc()

    def _miss(self) -> None:
        self.misses += 1
        get_registry().counter("engine.cache.misses").inc()

    def _publish(self, path: Path, write) -> None:
        """Atomically create ``path`` via a sibling temp file."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            write(tmp)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self.writes += 1
        get_registry().counter("engine.cache.writes").inc()

    def _discard(self, path: Path) -> None:
        """Drop a corrupt entry so the next run rewrites it cleanly.

        Corruption degrades to a re-run, never an exception — but a
        degrading cache must not degrade *silently*: every discarded
        entry counts on ``corrupt`` (mirrored to the metrics registry)
        and emits one warning.
        """
        self.corrupt += 1
        get_registry().counter("engine.cache.corrupt").inc()
        get_journal().emit("engine.cache.corrupt_discard", entry=path.name,
                           total_corrupt=self.corrupt)
        warnings.warn(
            f"repro result cache: discarding corrupt entry {path.name} "
            f"(total corrupt entries this cache: {self.corrupt})",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # read-only cache dir: miss anyway, leave the file

    def _load_verified(self, path: Path, key: SimulationKey,
                       field: str) -> Optional[dict]:
        """Entry payload at ``path`` iff readable and keyed to ``key``.

        A missing file is a plain miss; unreadable JSON or an envelope
        of the wrong shape is a miss *plus* a discard of the broken
        file.  A well-formed entry whose stored key differs (truncated-
        hash collision, stale schema) is a miss but is left in place —
        it is some other key's valid entry.
        """
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            self._miss()
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._miss()
            self._discard(path)
            return None
        if not isinstance(payload, dict) or field not in payload:
            self._miss()
            self._discard(path)
            return None
        if payload.get("key") != asdict(key):
            self._miss()  # fingerprint collision or stale schema
            return None
        return payload

    # -- ExecutionResult entries --------------------------------------

    def get(self, key: SimulationKey) -> Optional[ExecutionResult]:
        """The cached result for ``key``, or None."""
        path = self._path(key, ".json")
        payload = self._load_verified(path, key, "result")
        if payload is None:
            return None
        try:
            result = ExecutionResult(**payload["result"])
        except TypeError:  # truncated or hand-edited field set
            self._miss()
            self._discard(path)
            return None
        self._hit()
        return result

    def put(self, key: SimulationKey, result: ExecutionResult) -> Path:
        """Persist one result; returns the entry path."""
        path = self._path(key, ".json")
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "key": asdict(key),
            "result": asdict(result),
        }

        def write(tmp: Path) -> None:
            with open(tmp, "w") as stream:
                json.dump(payload, stream, indent=1)

        self._publish(path, write)
        return path

    # -- free-form JSON payload entries -------------------------------

    def get_payload(self, key: SimulationKey) -> Optional[dict]:
        """The cached JSON payload for ``key``, or None."""
        payload = self._load_verified(self._path(key, ".payload.json"),
                                      key, "payload")
        if payload is None:
            return None
        self._hit()
        return payload["payload"]

    def put_payload(self, key: SimulationKey, payload: dict) -> Path:
        """Persist one JSON-serializable payload; returns the entry path."""
        path = self._path(key, ".payload.json")
        entry = {
            "schema": RESULT_SCHEMA_VERSION,
            "key": asdict(key),
            "payload": payload,
        }

        def write(tmp: Path) -> None:
            with open(tmp, "w") as stream:
                json.dump(entry, stream, indent=1)

        self._publish(path, write)
        return path

    # -- npz array sidecars -------------------------------------------

    def get_arrays(self, key: SimulationKey) -> Optional[Dict[str, np.ndarray]]:
        """Arrays stored next to ``key``'s entry, or None.

        A missing sidecar is a plain miss; a truncated or corrupted
        archive is a miss that also discards the broken file.
        """
        path = self._path(key, ".npz")
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:  # zipfile/pickle raise a zoo of types here
            self._miss()
            self._discard(path)
            return None
        self._hit()
        return arrays

    def put_arrays(self, key: SimulationKey, **arrays: np.ndarray) -> Path:
        """Persist named arrays as ``<stem>.npz``."""
        path = self._path(key, ".npz")

        def write(tmp: Path) -> None:
            # np.savez appends .npz when missing; write to the exact tmp
            # path by handing it an open file object instead.
            with open(tmp, "wb") as stream:
                np.savez(stream, **arrays)

        self._publish(path, write)
        return path

    def __repr__(self) -> str:
        return (f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes}, "
                f"corrupt={self.corrupt})")

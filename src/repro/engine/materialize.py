"""Build each workload trace once and share it across schemes.

A full paper grid is 23 workloads x 8 schemes; generating the trace
inside every cell would synthesize each one 8 times.  The materializer
memoizes traces per (workload, scale, seed) — the grid runner asks it
for the trace of a workload once and reuses it for every scheme, and
``build_counts`` lets tests assert that sharing actually happened.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.engine.key import RunConfig
from repro.obs import get_registry, trace_span
from repro.trace.records import Trace
from repro.workloads import get_workload


class TraceMaterializer:
    """Per-config memo of generated workload traces."""

    def __init__(self, config: RunConfig = RunConfig()):
        self.config = config
        self._traces: Dict[str, Trace] = {}
        #: how many times each workload's trace was actually generated
        self.build_counts: Counter = Counter()

    def get(self, workload: str) -> Trace:
        """The (possibly memoized) trace for one workload."""
        trace = self._traces.get(workload)
        if trace is None:
            with trace_span("materialize", workload=workload):
                trace = get_workload(workload).trace(
                    scale=self.config.scale, seed=self.config.seed
                )
            self._traces[workload] = trace
            self.build_counts[workload] += 1
            get_registry().counter("engine.trace.builds").inc()
        return trace

    def materialized(self) -> List[str]:
        """Workloads whose traces are currently held in memory."""
        return sorted(self._traces)

    def drop(self, workload: str = None) -> None:
        """Release one workload's trace (or all of them) to free memory."""
        if workload is None:
            self._traces.clear()
        else:
            self._traces.pop(workload, None)

"""Unified simulation engine.

One layer every figure, table, ablation and benchmark flows through:

* :class:`SimulationKey` — content-addresses a run by (workload, scale,
  seed, scheme, skew replacement, machine fingerprint, schema version).
* :class:`ResultCache` — persistent JSON + npz store under a
  configurable ``.repro-cache/`` directory with hash-based
  invalidation.
* :class:`TraceMaterializer` — each workload trace is generated once
  per grid and shared across schemes.
* :class:`SimulationEngine` — memoization + persistence + a process
  pool scheduled by workload; call-compatible with the historical
  ``ResultStore``.
* :class:`ExperimentSpec` / :func:`register` / :func:`run_experiment` —
  the declarative experiment registry behind
  ``python -m repro.experiments <name>`` and the shared artifact
  schema.
"""

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.key import (
    RESULT_SCHEMA_VERSION,
    RunConfig,
    SimulationKey,
    machine_fingerprint,
)
from repro.engine.materialize import TraceMaterializer
from repro.engine.registry import (
    ARTIFACT_SCHEMA_VERSION,
    ExperimentContext,
    ExperimentSpec,
    all_experiment_names,
    get_experiment,
    register,
    render_artifact,
    run_experiment,
    validate_artifact,
)
from repro.engine.runner import SimulationEngine, default_jobs

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExperimentContext",
    "ExperimentSpec",
    "RESULT_SCHEMA_VERSION",
    "ResultCache",
    "RunConfig",
    "SimulationEngine",
    "SimulationKey",
    "TraceMaterializer",
    "all_experiment_names",
    "default_jobs",
    "get_experiment",
    "machine_fingerprint",
    "register",
    "render_artifact",
    "run_experiment",
    "validate_artifact",
]

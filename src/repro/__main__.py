"""``python -m repro`` — list the reproducible tables and figures."""

INDEX = """repro — 'Using Prime Numbers for Cache Indexing to Eliminate
Conflict Misses' (HPCA 2004) reproduction.

Every experiment is registered in the declarative registry and runs
through the unified simulation engine (content-addressed results,
persistent caching, shared traces, parallel grids):

  python -m repro.experiments list                all experiments
  python -m repro.experiments <name>              run one of them
      [--scale S] [--seed N] [--skew-replacement P]
      [--jobs J] [--cache-dir DIR]
      [--param KEY=VALUE ...] [--artifact PATH]

The paper's tables and figures (each also has a bench under
benchmarks/):

  python -m repro.experiments fragmentation       Table 1
  python -m repro.experiments qualitative         Table 2
  python -m repro.experiments machine             Table 3
  python -m repro.experiments summary             Table 4
  python -m repro.experiments stride_sweep        Figures 5-6
  python -m repro.experiments single_hash         Figures 7-8
  python -m repro.experiments multi_hash          Figures 9-10
  python -m repro.experiments miss_reduction      Figures 11-12
  python -m repro.experiments miss_distribution   Figure 13
  python -m repro.experiments uniformity_table    Section 4

  python examples/paper_evaluation.py             everything above
  make figures                                    artifacts/<name>.json

Extensions/ablations: design_space, sensitivity, page_allocation,
shared_cache, seeds, l1_hashing, l3_hashing.  See README.md, DESIGN.md
and docs/architecture.md for details.
"""

if __name__ == "__main__":
    print(INDEX)

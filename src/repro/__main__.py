"""``python -m repro`` — list the reproducible tables and figures."""

INDEX = """repro — 'Using Prime Numbers for Cache Indexing to Eliminate
Conflict Misses' (HPCA 2004) reproduction.

Experiments (each also has a bench under benchmarks/):

  python -m repro.experiments.fragmentation       Table 1
  python -m repro.experiments.qualitative         Table 2
  python -m repro.experiments.machine             Table 3
  python -m repro.experiments.summary             Table 4
  python -m repro.experiments.stride_sweep        Figures 5-6
  python -m repro.experiments.single_hash         Figures 7-8
  python -m repro.experiments.multi_hash          Figures 9-10
  python -m repro.experiments.miss_reduction      Figures 11-12
  python -m repro.experiments.miss_distribution   Figure 13

  python examples/paper_evaluation.py             everything above

Simulation experiments accept --scale (trace length multiplier,
default 1.0) and --seed.  See README.md and DESIGN.md for details.
"""

if __name__ == "__main__":
    print(INDEX)

"""`repro.adversary` — black-box hash cracking against the serve stack.

The paper eliminates *accidental* conflict misses; this subsystem asks
what a *deliberate* adversary can do.  Following the probe attack of
"Cracking Intel Sandy Bridge's Cache Hash Function" (PAPERS.md), an
attacker who can only issue requests through the
:class:`~repro.serve.Frontend` — no access to the store, the routing
table, or the scheme internals — learns the key→shard map from the
timing side channel the serving fabric cannot help exposing: requests
for the *same* shard coalesce into one batch, and a batched request's
deterministic virtual-clock ``Response.service_time_s`` grows with its
batch position.

* :class:`ConflictOracle` — turns that co-batching signal into a
  yes/no conflict test: burst B copies of one key plus a probe key in
  a single co-submitted gather; the probe drains at batch position
  B+1 iff both keys route to the same shard.
* :class:`ProbeAdversary` — drives the oracle through a full crack:
  representative discovery (one key per shard equivalence class),
  then **exact reconstruction** for GF(2)-linear schemes (traditional
  and pow2-XOR fall to ~n + key_bits classifications, verified on
  held-out keys) with a **statistical bucketing** fallback that prime
  schemes (pMod / pDisp) force — per-key classification at ~n/2
  conflict tests each, which is where their ≥5× probe cost comes from.
* :func:`synthesize_hostile_trace` — emits worst-case traffic from a
  crack: a small recycled key set all routing to one victim shard,
  driving Eq. 1 balance and Eq. 2 concentration to their pathological
  corner on *any* unkeyed scheme.

The same attacker pointed at a :class:`~repro.serve.Frontend` over a
:class:`~repro.cluster.Cluster` (which batches per *node*) learns the
key→node map with zero extra code.

The defense lives where it belongs: keyed schemes in
:mod:`repro.hashing.keyed`, the adversarial-drift alarm in
:class:`repro.obs.health.HashQualityDetector`, and the
:class:`~repro.control.KeyRotator` the controller fires to rotate the
secret through an epoch migration.  ``python -m repro.experiments
adversary`` runs attack → detection → rotation end to end.
"""

from repro.adversary.hostile import HostileTrace, synthesize_hostile_trace
from repro.adversary.oracle import ConflictOracle
from repro.adversary.probe import CrackResult, ProbeAdversary, run_crack

__all__ = [
    "ConflictOracle",
    "CrackResult",
    "HostileTrace",
    "ProbeAdversary",
    "run_crack",
    "synthesize_hostile_trace",
]

"""The probe adversary: learn the key→shard map through the serve API.

The crack runs in phases, each journaled as ``adversary.probe_phase``:

1. **Representative discovery** — walk keys 0, 1, 2, ... testing each
   against the representatives found so far; a key colocated with none
   of them founds a new shard equivalence class.  For the paper's
   public schemes the first ``n_shards`` keys already cover every
   class (tag 0 ⇒ the index bits *are* the key), so this costs
   ~n²/2 conflict tests.
2. **GF(2) solve** — hypothesize the map is linear over GF(2), the
   structure the Sandy Bridge attack exploited: classify the basis
   keys ``2^i`` and predict ``H(k) = H(0) ⊕ ⊕_{bit i of k}(H(2^i) ⊕
   H(0))`` (labels are representative keys, which for a linear map lie
   in the label space the XOR runs over).  Verified against held-out
   random keys; traditional and pow2-XOR pass and are **exactly
   recovered** — every future key is predicted offline, no more
   probes.  pMod's carry chain and pDisp's multiply are not
   GF(2)-linear, so verification fails fast.
3. **Bucketing fallback** — with no algebraic shortcut, every key the
   attack cares about must be classified *individually* (~n/2 conflict
   tests each).  This still cracks pMod/pDisp — nothing public
   survives probing — but at a probe bill ≥5× the linear schemes',
   which is precisely the "how long do the prime schemes hold"
   measurement the ``adversary`` experiment reports.

Keyed schemes (:mod:`repro.hashing.keyed`) change the economics, not
the mechanics: bucketing still learns per-key facts, but a
:class:`~repro.control.KeyRotator` epoch rotation invalidates the
entire learned table at once.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import Journal, MetricsRegistry, get_journal, get_registry
from repro.serve.frontend import Frontend
from repro.adversary.oracle import ConflictOracle

__all__ = ["CrackResult", "ProbeAdversary", "run_crack"]

#: Class id used for keys the solver could not place (no representative
#: colocated — only possible when discovery was capped early).
UNKNOWN = -1


@dataclass
class CrackResult:
    """Everything a finished crack learned, plus its probe bill.

    ``method`` is ``"gf2"`` when the linear model verified (the map is
    fully reconstructed; :meth:`predict` covers every key in the
    universe) or ``"bucketing"`` when only the individually classified
    keys in :attr:`buckets` are known.  Class ids are *local* labels
    (the index of the class's representative in :attr:`reps`) — a
    black-box attacker never observes true shard numbers, and does not
    need to: all it needs for a hostile trace is "these keys collide".
    """

    scheme: str
    method: str
    n_classes: int
    key_bits: int
    reps: List[int]
    probes: int
    conflict_tests: int
    accuracy: float  #: held-out verification accuracy of the model
    verified: bool
    basis_labels: Dict[int, int] = field(default_factory=dict)
    buckets: Dict[int, List[int]] = field(default_factory=dict)

    def predict(self, key: int) -> Optional[int]:
        """Predicted class id for ``key`` (None when unknown)."""
        if self.method == "gf2":
            label = self.reps[0]
            for i in range(self.key_bits):
                if key >> i & 1:
                    label ^= self.basis_labels[i] ^ self.reps[0]
            try:
                return self.reps.index(label)
            except ValueError:
                return None
        for class_id, keys in self.buckets.items():
            if key in keys:
                return class_id
        return None

    def keys_for_class(self, class_id: int,
                       limit: int = 16) -> List[int]:
        """Up to ``limit`` known keys routing to ``class_id``."""
        if self.method == "gf2":
            out: List[int] = []
            for key in range(1 << self.key_bits):
                if self.predict(key) == class_id:
                    out.append(key)
                    if len(out) >= limit:
                        break
            return out
        return list(self.buckets.get(class_id, ()))[:limit]

    def largest_class(self) -> int:
        """The class id with the most known keys (the natural victim)."""
        if self.method == "gf2":
            return 0
        best = max(((len(keys), class_id)
                    for class_id, keys in self.buckets.items()
                    if class_id != UNKNOWN), default=(0, 0))
        return best[1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (no key lists — they can be big)."""
        return {
            "scheme": self.scheme,
            "method": self.method,
            "n_classes": self.n_classes,
            "key_bits": self.key_bits,
            "probes": self.probes,
            "conflict_tests": self.conflict_tests,
            "accuracy": self.accuracy,
            "verified": self.verified,
            "cracked_keys": sum(len(v) for v in self.buckets.values()),
        }


class ProbeAdversary:
    """Black-box crack of a frontend's key→shard map.

    Args:
        frontend: the started :class:`Frontend` under attack (point it
            at a frontend over a :class:`~repro.cluster.Cluster` and
            the same probes learn the key→*node* map).
        n_classes: shard classes to look for; defaults to the
            frontend's advertised ``store.n_shards`` (a serving fleet's
            size is capacity planning, not a secret).
        key_bits: the key universe is ``[0, 2^key_bits)`` — both the
            GF(2) basis size and the bucketing universe bound.
        crack_keys: how many universe keys the bucketing fallback
            classifies individually.
        seed: seeds the held-out verification sample.
        reps: oracle burst width (see :class:`ConflictOracle`).
        verify_n: held-out keys used to accept/reject the GF(2) model.
    """

    def __init__(self, frontend: Frontend, n_classes: int = None,
                 key_bits: int = 16, crack_keys: int = 256,
                 seed: int = 0, reps: int = 3, verify_n: int = 16,
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None):
        self.frontend = frontend
        self.n_classes = (frontend.store.n_shards if n_classes is None
                          else int(n_classes))
        if self.n_classes < 2:
            raise ValueError("need at least 2 shard classes to attack")
        if key_bits < 1 or key_bits > 32:
            raise ValueError("key_bits must be in [1, 32]")
        self.key_bits = key_bits
        self.crack_keys = min(int(crack_keys), 1 << key_bits)
        self.seed = seed
        self.verify_n = verify_n
        self._registry = get_registry() if registry is None else registry
        self._journal = journal if journal is not None else get_journal()
        self.oracle = ConflictOracle(frontend, reps=reps,
                                     registry=self._registry)
        self._classes: Dict[int, int] = {}  # key -> class id cache

    # -- classification primitives -------------------------------------

    async def _classify(self, key: int, reps: List[int]) -> Optional[int]:
        """Class id of ``key`` against ``reps`` (cached; None if new)."""
        if key in self._classes:
            return self._classes[key]
        for class_id, rep in enumerate(reps):
            if await self.oracle.colocated(key, rep):
                self._classes[key] = class_id
                return class_id
        return None

    def _phase(self, phase: str, **fields: Any) -> None:
        self._journal.emit("adversary.probe_phase", phase=phase,
                           probes=self.oracle.probes,
                           conflict_tests=self.oracle.conflict_tests,
                           **fields)

    # -- the crack ------------------------------------------------------

    async def crack(self) -> CrackResult:
        """Run discovery → GF(2) solve → bucketing fallback."""
        scheme = self.frontend.store.scheme
        self._journal.emit("adversary.attack_start", scheme=scheme,
                           n_classes=self.n_classes,
                           key_bits=self.key_bits,
                           crack_keys=self.crack_keys,
                           reps=self.oracle.reps)
        reps = await self._discover_reps()
        solved, basis, accuracy = await self._solve_gf2(reps)
        if solved:
            method, buckets = "gf2", {}
        else:
            method = "bucketing"
            buckets = await self._bucket(reps)
            accuracy = 1.0 if buckets else 0.0  # each key tested directly
        result = CrackResult(
            scheme=scheme, method=method, n_classes=len(reps),
            key_bits=self.key_bits, reps=reps,
            probes=self.oracle.probes,
            conflict_tests=self.oracle.conflict_tests,
            accuracy=accuracy, verified=solved,
            basis_labels=basis, buckets=buckets)
        self._registry.counter("adversary.cracks").inc()
        self._registry.gauge("adversary.recovery_accuracy",
                             scheme=scheme).set(accuracy)
        return result

    async def _discover_reps(self) -> List[int]:
        """One representative key per reachable shard class."""
        reps: List[int] = []
        limit = max(4 * self.n_classes, 64)
        key = 0
        while len(reps) < self.n_classes and key < limit:
            class_id = await self._classify(key, reps)
            if class_id is None:
                self._classes[key] = len(reps)
                reps.append(key)
            key += 1
        self._phase("reps", classes=len(reps), keys_walked=key)
        return reps

    async def _solve_gf2(self, reps: List[int]):
        """Try the linear model; returns (verified, basis_labels,
        accuracy).  Bails at the first held-out mismatch — a wrong
        hypothesis should cost as few probes as possible."""
        basis: Dict[int, int] = {}
        for i in range(self.key_bits):
            class_id = await self._classify(1 << i, reps)
            if class_id is None:  # basis key outside known classes
                self._phase("solve", verified=False, checked=0)
                return False, {}, 0.0
            basis[i] = reps[class_id]

        def predict_label(key: int) -> int:
            label = reps[0]
            for i in range(self.key_bits):
                if key >> i & 1:
                    label ^= basis[i] ^ reps[0]
            return label

        rng = _lcg(self.seed)
        matches = checked = 0
        for _ in range(self.verify_n):
            key = next(rng) % (1 << self.key_bits)
            true_class = await self._classify(key, reps)
            checked += 1
            predicted = predict_label(key)
            if true_class is None or predicted != reps[true_class]:
                break
            matches += 1
        accuracy = matches / checked if checked else 0.0
        verified = matches == self.verify_n
        self._phase("solve", verified=verified, checked=checked,
                    accuracy=accuracy)
        return verified, (basis if verified else {}), accuracy

    async def _bucket(self, reps: List[int]) -> Dict[int, List[int]]:
        """Classify ``crack_keys`` universe keys one by one."""
        buckets: Dict[int, List[int]] = {}
        for key in range(self.crack_keys):
            class_id = await self._classify(key, reps)
            buckets.setdefault(UNKNOWN if class_id is None else class_id,
                               []).append(key)
        self._phase("bucketing", cracked=self.crack_keys,
                    classes=len(buckets))
        return buckets


def _lcg(seed: int):
    """Tiny deterministic integer stream (no numpy needed here)."""
    state = (seed * 0x9E3779B97F4A7C15 + 1) & (1 << 64) - 1
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) \
            & (1 << 64) - 1
        yield state >> 16


def run_crack(frontend_factory, **kwargs) -> CrackResult:
    """Sync convenience wrapper: build a frontend, crack it, stop it.

    ``frontend_factory`` is a zero-arg callable returning an unstarted
    :class:`Frontend` (the same contract as
    :func:`repro.serve.loadgen.run_open_loop`); remaining keyword
    arguments go to :class:`ProbeAdversary`.
    """

    async def run() -> CrackResult:
        async with frontend_factory() as frontend:
            return await ProbeAdversary(frontend, **kwargs).crack()

    return asyncio.run(run())

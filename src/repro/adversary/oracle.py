"""The timing/conflict oracle: co-batching as a side channel.

The serving fabric coalesces same-shard requests into batches
(:class:`~repro.serve.batcher.Batcher`) and charges each batched item a
deterministic virtual-clock service time proportional to its batch
position (:data:`~repro.serve.frontend.VIRTUAL_TICK_S`).  That is
exactly a cache bank-conflict timing channel: co-submit B copies of a
*reference* key and then a *probe* key, and the probe's service time
reads B+1 ticks iff the two keys share a shard (one batch, probe
last), 1 tick otherwise (its own singleton batch).

The submission order is load-bearing and deterministic: asyncio
schedules the co-submitted tasks in creation order, and each enqueues
synchronously before yielding, so the whole burst is queued before any
batcher worker wakes — one batch per touched shard, positions in
submission order, reproducible under a fixed seed.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

from repro.obs import MetricsRegistry, get_registry
from repro.serve.frontend import VIRTUAL_TICK_S, Frontend

__all__ = ["ConflictOracle", "OracleError"]


class OracleError(RuntimeError):
    """The frontend violated the oracle's setup contract (e.g. a probe
    burst was rejected by admission — the timing read is then void)."""


class ConflictOracle:
    """Black-box same-shard tests against a started :class:`Frontend`.

    Args:
        frontend: the (already started) serving frontend under attack.
            Its batcher must coalesce at least ``reps + 1`` items and
            its admission must not throttle the burst, else the timing
            read is void (checked, not assumed).
        reps: reference copies per conflict test.  More copies widen
            the timing gap between "own batch" (1 tick) and "shared
            batch" (reps+1 ticks); 3 is plenty for a virtual clock.
        registry: metrics override (defaults to the global registry).

    Every issued request counts into ``adversary.probes``; every
    resolved same-shard question into ``adversary.conflict_tests``.
    """

    def __init__(self, frontend: Frontend, reps: int = 3,
                 registry: Optional[MetricsRegistry] = None):
        if reps < 1:
            raise ValueError("reps must be >= 1")
        max_batch = frontend._batch_config.max_batch_size
        if max_batch < reps + 1:
            raise ValueError(
                f"oracle needs max_batch_size >= {reps + 1} to co-batch "
                f"a burst, frontend has {max_batch}")
        self.frontend = frontend
        self.reps = reps
        self.probes = 0
        self.conflict_tests = 0
        registry = get_registry() if registry is None else registry
        self._probe_counter = registry.counter("adversary.probes")
        self._test_counter = registry.counter("adversary.conflict_tests")

    async def batch_positions(self, keys: Sequence[int]) -> List[int]:
        """Co-submit one ``get`` per key; return each batch position.

        Positions are in virtual ticks (1 = first item of its batch);
        two keys shared a shard iff their positions differ within one
        burst.  Raises :class:`OracleError` if any response is not
        ``ok`` — a throttled burst yields no timing information.
        """
        responses = await asyncio.gather(
            *(self.frontend.get(key) for key in keys))
        self.probes += len(keys)
        self._probe_counter.inc(len(keys))
        for response in responses:
            if not response.ok:
                raise OracleError(
                    f"probe burst not served cleanly: {response.status} "
                    f"({response.reason})")
        return [round(r.service_time_s / VIRTUAL_TICK_S)
                for r in responses]

    async def colocated(self, probe_key: int, reference_key: int) -> bool:
        """Whether ``probe_key`` routes to ``reference_key``'s shard."""
        positions = await self.batch_positions(
            [reference_key] * self.reps + [probe_key])
        self.conflict_tests += 1
        self._test_counter.inc()
        return positions[-1] >= self.reps + 1

    def __repr__(self) -> str:
        return (f"ConflictOracle(reps={self.reps}, probes={self.probes}, "
                f"tests={self.conflict_tests})")

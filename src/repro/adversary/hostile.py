"""Worst-case traffic synthesis from a finished crack.

A crack's value is the traffic it enables: pick one victim class and
emit a request stream whose every key routes there.  On the receiving
store this drives Eq. 1 balance toward ``n_shards`` (all load on one
shard) and Eq. 2 concentration toward its pathological maximum —
the exact quantities the paper's Figure 5 shows prime indexing keeping
near-ideal on *accidental* structure, manufactured here on purpose.
The stream deliberately recycles a small distinct-key set: that is
what makes it cheap to synthesize *and* what the adversarial-drift
alarm (:meth:`repro.obs.health.HashQualityDetector.grade_adversary`)
keys on — a hot shard whose heavy-hitter top-K explains the load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adversary.probe import CrackResult
from repro.obs import MetricsRegistry, get_registry
from repro.store.traffic import Request

__all__ = ["HostileTrace", "synthesize_hostile_trace"]


@dataclass(frozen=True)
class HostileTrace:
    """One synthesized attack stream and the class it targets."""

    requests: List[Request]
    target_class: int
    keys: List[int]  #: the distinct keys being recycled

    def __len__(self) -> int:
        return len(self.requests)


def synthesize_hostile_trace(result: CrackResult, n_requests: int,
                             target_class: Optional[int] = None,
                             distinct_keys: int = 16, op: str = "get",
                             registry: Optional[MetricsRegistry] = None,
                             ) -> HostileTrace:
    """Emit ``n_requests`` all routing to one shard class of ``result``.

    ``target_class`` defaults to the class with the most known keys
    (for a verified GF(2) model any class works — keys are generated
    on demand).  ``distinct_keys`` bounds the recycled key set; ``op``
    is ``"get"`` or ``"put"`` (puts also pile *occupancy* onto the
    victim shard, not just load).
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if op not in ("get", "put"):
        raise ValueError(f"op must be 'get' or 'put', got {op!r}")
    if target_class is None:
        target_class = result.largest_class()
    keys = result.keys_for_class(target_class, limit=max(1, distinct_keys))
    if not keys:
        raise ValueError(
            f"crack knows no keys for class {target_class}; pick one of "
            f"{sorted(result.buckets)}")
    requests = [
        Request(op, keys[i % len(keys)],
                value=i if op == "put" else None)
        for i in range(n_requests)
    ]
    registry = get_registry() if registry is None else registry
    registry.counter("adversary.hostile_requests").inc(len(requests))
    return HostileTrace(requests=requests, target_class=target_class,
                        keys=keys)

"""Admission control: token-bucket rate limiting + queue-depth caps.

A serving frontend must never queue unboundedly: past the point where
the backend (here, the sharded store's per-shard batchers) can keep up,
every additional admitted request only adds latency for everyone.  The
:class:`AdmissionController` therefore makes the *admit/reject* decision
before a request touches any queue, on two independent criteria:

* a **token bucket** (``rate`` tokens/second, ``burst`` capacity) that
  bounds the sustained admitted rate while letting short bursts through
  untaxed — the knob that turns an open-loop overload into explicit
  :class:`~repro.serve.frontend.Response` rejects instead of collapse;
* a **queue-depth cap** (``max_queue_depth``) on the frontend's total
  in-flight count, the backstop that holds even when the rate limit is
  generous but one shard stalls (see :mod:`repro.serve.faults`) and its
  queue starts eating the budget.

Rejections carry a machine-readable reason (:data:`REASON_RATE` /
:data:`REASON_QUEUE`) so callers, metrics and the load generator can
distinguish "offered too fast" from "backend backed up".

The clock is injectable, so the token bucket is exactly testable
without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "REASON_QUEUE",
    "REASON_RATE",
]

#: Reject reason: the token bucket is empty (sustained offered rate
#: above the configured admitted rate).
REASON_RATE = "rate_limited"

#: Reject reason: the frontend's in-flight count hit ``max_queue_depth``.
REASON_QUEUE = "queue_full"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one :class:`AdmissionController`.

    Attributes:
        rate: sustained admitted requests/second; ``None`` disables the
            token bucket (queue-depth is then the only guard).
        burst: token-bucket capacity — how many requests may be
            admitted back-to-back after an idle period.
        max_queue_depth: hard cap on the frontend's in-flight requests
            (queued + executing); admission beyond it is rejected.
    """

    rate: Optional[float] = None
    burst: int = 64
    max_queue_depth: int = 1024

    def __post_init__(self):
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")


class AdmissionController:
    """Stateful admit/reject gate combining both criteria.

    Not thread-safe by design: the frontend drives it from a single
    asyncio event loop, so admissions are already serialized.
    """

    def __init__(self, config: AdmissionConfig = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._tokens = float(self.config.burst)
        self._last_refill = clock()
        self.admitted = 0
        self.rejected: Dict[str, int] = {REASON_RATE: 0, REASON_QUEUE: 0}

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last_refill
        self._last_refill = now
        if elapsed > 0:
            self._tokens = min(float(self.config.burst),
                               self._tokens + elapsed * self.config.rate)

    def admit(self, queue_depth: int) -> Optional[str]:
        """Decide one request: ``None`` = admitted, else the reason.

        ``queue_depth`` is the caller's current in-flight count; the
        depth check runs first so a backed-up frontend rejects even
        when tokens are available (tokens are only consumed on
        admission, so a queue-full reject does not burn rate budget).
        """
        if queue_depth >= self.config.max_queue_depth:
            self.rejected[REASON_QUEUE] += 1
            return REASON_QUEUE
        if self.config.rate is not None:
            self._refill()
            if self._tokens < 1.0:
                self.rejected[REASON_RATE] += 1
                return REASON_RATE
            self._tokens -= 1.0
        self.admitted += 1
        return None

    def stats(self) -> Dict[str, int]:
        """Admission counters (JSON-friendly)."""
        return {
            "admitted": self.admitted,
            "rejected_rate_limited": self.rejected[REASON_RATE],
            "rejected_queue_full": self.rejected[REASON_QUEUE],
        }

    def __repr__(self) -> str:
        return (f"AdmissionController(rate={self.config.rate}, "
                f"burst={self.config.burst}, "
                f"max_queue_depth={self.config.max_queue_depth}, "
                f"admitted={self.admitted})")

"""Fault tolerance policy and chaos-testing fault injection.

Two halves, deliberately separate:

* :class:`FaultPolicy` — how the *frontend* behaves when a request goes
  wrong: a per-request timeout (no request waits forever on a stalled
  shard), bounded exponential-backoff retries (transient injected
  errors get re-queued, persistent ones surface), and a deterministic
  backoff schedule so tests can assert exact values.
* :class:`FaultInjector` — how tests and chaos runs make things go
  wrong on purpose: seeded-random **delays** (slow batches), **errors**
  (failed batches, raising :class:`InjectedFault`), and targeted
  **shard stalls** (one shard's batches sleep ``stall_s`` every time —
  the "one slow replica" scenario from sliced-LLC land, where a single
  hot or broken slice must not take the whole fabric down).

The batcher awaits :meth:`FaultInjector.before_batch` ahead of every
batch it executes; with no injector configured the serving path never
touches this module.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.obs import get_journal

__all__ = ["FaultInjector", "FaultPolicy", "InjectedFault"]


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` in place of a real backend error."""


@dataclass(frozen=True)
class FaultPolicy:
    """Per-request timeout and bounded-retry schedule.

    Attributes:
        timeout_s: how long one attempt may wait for its batch result
            before the frontend abandons it (the item is skipped by the
            batcher once its future is cancelled).
        max_retries: attempts after the first (0 = fail fast).
        backoff_base_s: backoff before the first retry.
        backoff_multiplier: exponential growth factor per retry.
        backoff_cap_s: ceiling on any single backoff sleep.
    """

    timeout_s: float = 1.0
    max_retries: int = 2
    backoff_base_s: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 0.1

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic capped exponential backoff before retry
        ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_base_s
                   * self.backoff_multiplier ** (attempt - 1))


@dataclass
class FaultInjector:
    """Seeded, targetable fault source for the serving path.

    Probabilistic faults draw from one ``numpy`` generator seeded at
    construction, so a chaos run replays exactly under the same seed.
    Shard stalls are deterministic: every batch on a stalled shard
    sleeps ``stall_s`` before executing, which is how a test creates
    the "one stalled shard" scenario the frontend must degrade
    gracefully under (timeouts + rejects, never a hang).

    Attributes:
        delay_probability: chance a batch is delayed ``delay_s``.
        delay_s: injected batch delay.
        error_probability: chance a batch raises :class:`InjectedFault`.
        stall_s: sleep applied to every batch of a stalled shard.
        seed: RNG seed for the probabilistic faults.
    """

    delay_probability: float = 0.0
    delay_s: float = 0.005
    error_probability: float = 0.0
    stall_s: float = 0.25
    seed: int = 0
    stalled_shards: Set[int] = field(default_factory=set)

    def __post_init__(self):
        for name in ("delay_probability", "error_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.delay_s < 0 or self.stall_s < 0:
            raise ValueError("delay_s and stall_s must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self.injected: Dict[str, int] = {"delay": 0, "error": 0, "stall": 0}

    # -- targeting -----------------------------------------------------

    def stall(self, shard_id: int) -> "FaultInjector":
        """Mark ``shard_id`` stalled (every batch sleeps ``stall_s``)."""
        self.stalled_shards.add(shard_id)
        return self

    def recover(self, shard_id: Optional[int] = None) -> "FaultInjector":
        """Clear one stalled shard (or all, when ``shard_id`` is None)."""
        if shard_id is None:
            self.stalled_shards.clear()
        else:
            self.stalled_shards.discard(shard_id)
        return self

    # -- the hook the batcher awaits -----------------------------------

    async def before_batch(self, queue_id: int) -> float:
        """Apply any configured fault ahead of one batch execution.

        Stalls apply first (deterministic, targeted), then the seeded
        probabilistic delay and error draws.  Raising here fails the
        whole batch; the frontend's retry policy decides what happens
        to each request in it.  Returns the seconds of sleep it
        *requested* — the frontend's trace attribution measures the
        actual elapsed wall for the ``fault`` stage, and the return
        value lets tests assert the two agree.
        """
        requested = 0.0
        if queue_id in self.stalled_shards:
            self.injected["stall"] += 1
            get_journal().emit("serve.fault.stall", queue_id=queue_id,
                               stall_s=self.stall_s,
                               count=self.injected["stall"])
            requested += self.stall_s
            await asyncio.sleep(self.stall_s)
        if (self.delay_probability > 0.0
                and self._rng.random() < self.delay_probability):
            self.injected["delay"] += 1
            get_journal().emit("serve.fault.delay", queue_id=queue_id,
                               delay_s=self.delay_s)
            requested += self.delay_s
            await asyncio.sleep(self.delay_s)
        if (self.error_probability > 0.0
                and self._rng.random() < self.error_probability):
            self.injected["error"] += 1
            get_journal().emit("serve.fault.error", queue_id=queue_id)
            raise InjectedFault(f"injected error on queue {queue_id}")
        return requested

    def stats(self) -> Dict[str, int]:
        """Injected-fault counts (JSON-friendly)."""
        return dict(self.injected)

"""Serving smoke gate (``make serve-check`` / ``python -m repro.serve.smoke``).

Two short load phases assert the serving contract end to end:

1. **low rate** — open-loop Poisson arrivals well under capacity with
   generous admission: every request must come back ``ok`` (zero
   rejects, zero timeouts, zero drops).
2. **overload** — offered rate far above the admitted rate with a tight
   token bucket and a small queue cap: the frontend must shed load
   *explicitly* (nonzero rejects), yet still account for every single
   request — no hangs, no silent drops.

Exits nonzero on any violation, so the Makefile target doubles as a CI
gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.serve.admission import AdmissionConfig
from repro.serve.batcher import BatchConfig
from repro.serve.faults import FaultPolicy
from repro.serve.frontend import Frontend
from repro.serve.loadgen import LoadReport, run_open_loop
from repro.store import ShardedStore, make_traffic

__all__ = ["main", "overload_phase", "low_rate_phase"]


class SmokeFailure(AssertionError):
    """One smoke assertion failed."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _frontend_factory(scheme: str, admission: AdmissionConfig):
    def build() -> Frontend:
        store = ShardedStore(n_shards=32, scheme=scheme, shard_capacity=256)
        return Frontend(
            store,
            batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
            admission=admission,
            policy=FaultPolicy(timeout_s=0.5, max_retries=1),
        )

    return build


def low_rate_phase(n_requests: int = 1000, rate_rps: float = 2500.0,
                   scheme: str = "pmod", seed: int = 0) -> LoadReport:
    """Under-capacity traffic: everything must be served ok."""
    requests = make_traffic("zipfian", n_requests, seed=seed)
    report = run_open_loop(
        _frontend_factory(scheme, AdmissionConfig(rate=None,
                                                  max_queue_depth=100_000)),
        requests, rate_rps=rate_rps, arrival="poisson", seed=seed)
    _check(report.n_requests == n_requests,
           f"low-rate: {report.n_requests}/{n_requests} responses accounted")
    _check(report.statuses.get("ok", 0) == n_requests,
           f"low-rate: non-ok responses at low rate: {report.statuses}")
    _check(report.reject_rate == 0.0,
           f"low-rate: unexpected rejects: {report.statuses}")
    return report


def overload_phase(n_requests: int = 1500, rate_rps: float = 60_000.0,
                   scheme: str = "pmod", seed: int = 0) -> LoadReport:
    """Far-over-capacity traffic: explicit rejects, full accounting."""
    requests = make_traffic("zipfian", n_requests, seed=seed)
    admission = AdmissionConfig(rate=5000.0, burst=64, max_queue_depth=128)
    report = run_open_loop(_frontend_factory(scheme, admission), requests,
                           rate_rps=rate_rps, arrival="bursty", seed=seed)
    _check(report.n_requests == n_requests,
           f"overload: {report.n_requests}/{n_requests} responses accounted")
    _check(report.statuses.get("rejected", 0) > 0,
           f"overload: no rejects under overload: {report.statuses}")
    _check(report.statuses.get("dropped", 0) == 0,
           f"overload: silent drops: {report.statuses}")
    _check(report.peak_queue_depth <= admission.max_queue_depth,
           f"overload: queue grew past the cap "
           f"({report.peak_queue_depth} > {admission.max_queue_depth})")
    return report


def _describe(phase: str, report: LoadReport) -> str:
    latency = report.latency
    return (f"{phase}: {report.n_requests} requests in "
            f"{report.elapsed_s:.2f}s ({report.throughput_rps:,.0f} rsp/s), "
            f"statuses={report.statuses}, "
            f"p50={latency['p50'] * 1e3:.2f}ms "
            f"p99={latency['p99'] * 1e3:.2f}ms, "
            f"mean batch={report.mean_batch_size:.1f}, "
            f"peak queue={report.peak_queue_depth}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1000,
                        help="requests per phase (default 1000)")
    parser.add_argument("--scheme", default="pmod",
                        help="shard-selection scheme (default pmod)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    try:
        report = low_rate_phase(args.requests, scheme=args.scheme,
                                seed=args.seed)
        print(_describe("low-rate ", report))
        report = overload_phase(max(args.requests, 200), scheme=args.scheme,
                                seed=args.seed)
        print(_describe("overload ", report))
    except SmokeFailure as failure:
        print(f"serve smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print("serve smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Per-queue request coalescing with size and deadline bounds.

The :class:`Batcher` is the middle of the serving pipeline: admitted
requests land on one asyncio queue per backend shard (plus one for
simulation work), and one worker task per queue drains it in *batches*
— up to ``max_batch_size`` items, waiting at most ``max_wait_s`` for
stragglers once the first item arrives.  Batching is what turns
hash-routed shards into a fabric: requests for the same shard share
one dispatch (amortizing per-dispatch overhead exactly the way a
sliced LLC amortizes a slice access), while shards never block each
other — a stalled queue delays only its own batches.

The batcher is policy-free: it knows nothing about stores, faults or
retries.  It calls one async ``execute(queue_id, items)`` callback per
batch; the frontend owns what execution means, how failures map to
futures, and all metrics.  Items whose futures are already settled
(e.g. cancelled by the frontend's per-request timeout) are delivered
anyway — the executor skips them — so accounting stays in one place.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Awaitable, Callable, List, Optional, Tuple

__all__ = ["BatchConfig", "Batcher", "WorkItem"]

#: Sentinel closing one worker's queue.
_CLOSE = object()


@dataclass(frozen=True)
class BatchConfig:
    """Coalescing bounds for every queue of one :class:`Batcher`.

    Attributes:
        max_batch_size: most items one dispatch may carry.
        max_wait_s: deadline for filling a batch, measured from the
            moment its first item is picked up; expiry dispatches the
            partial batch (latency is bounded, batching is best-effort).
    """

    max_batch_size: int = 16
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class WorkItem:
    """One queued request plus the future its response resolves.

    ``trace`` carries the submitting request's
    :class:`repro.obs.attrib.TraceContext` (None when unsampled)
    across the queue boundary: the executor runs in a *different*
    asyncio task than the submitter, so the context cannot ride a
    contextvar here — it rides the item, and the executor records
    queue-wait / fault / store stages into it directly.

    ``service_s`` is the executor's *virtual-clock* service time for
    this item (batch position × tick; see
    :data:`repro.serve.frontend.VIRTUAL_TICK_S`): deterministic under a
    fixed seed where wall-clock latency is not, which is what makes it
    usable both as a reproducible load-report statistic and as the
    timing side channel the adversary reads.
    """

    request: Any
    future: asyncio.Future
    enqueued_s: float = 0.0
    trace: Any = None
    service_s: float = 0.0

    @classmethod
    def make(cls, request: Any, trace: Any = None) -> "WorkItem":
        loop = asyncio.get_running_loop()
        return cls(request=request, future=loop.create_future(),
                   enqueued_s=perf_counter(), trace=trace)


class Batcher:
    """N bounded-coalescing queues, one drain task each.

    Args:
        n_queues: independent queues (= shard count for store work).
        execute: async callback ``execute(queue_id, items)`` invoked
            once per batch; must settle every live item's future and
            must not raise (defensively, a raising executor fails the
            whole batch's unsettled futures instead of killing the
            worker).
        config: coalescing bounds.
    """

    def __init__(self, n_queues: int,
                 execute: Callable[[int, List[WorkItem]], Awaitable[None]],
                 config: BatchConfig = None):
        if n_queues < 1:
            raise ValueError("n_queues must be >= 1")
        self.config = config or BatchConfig()
        self._n_queues = n_queues
        self._execute = execute
        self._queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self.batches = 0
        self.batched_items = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._tasks)

    @property
    def n_queues(self) -> int:
        """How many independent queues this batcher fans out over."""
        return self._n_queues

    async def start(self) -> "Batcher":
        if self.started:
            return self
        self._queues = [asyncio.Queue() for _ in range(self._n_queues)]
        self._tasks = [asyncio.create_task(self._worker(qid),
                                           name=f"batcher-{qid}")
                       for qid in range(self._n_queues)]
        return self

    async def stop(self) -> List[WorkItem]:
        """Stop every worker; returns items left undispatched."""
        if not self.started:
            return []
        for queue in self._queues:
            queue.put_nowait(_CLOSE)
        await asyncio.gather(*self._tasks)
        dropped: List[WorkItem] = []
        for queue in self._queues:
            while not queue.empty():
                item = queue.get_nowait()
                if item is not _CLOSE:
                    dropped.append(item)
        self._queues, self._tasks = [], []
        return dropped

    # -- submission ----------------------------------------------------

    def submit(self, queue_id: int, item: WorkItem) -> None:
        """Enqueue one item (the frontend has already admitted it)."""
        if not self.started:
            raise RuntimeError("batcher is not started")
        self._queues[queue_id].put_nowait(item)

    def queue_depth(self) -> int:
        """Items currently sitting in queues (excludes executing)."""
        return sum(queue.qsize() for queue in self._queues)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_items / self.batches if self.batches else 0.0

    # -- draining ------------------------------------------------------

    async def _collect(self, queue: asyncio.Queue,
                       first: WorkItem) -> Tuple[List[WorkItem], bool]:
        """Fill a batch behind ``first`` until size or deadline."""
        batch = [first]
        if self.config.max_batch_size == 1:
            return batch, False
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.max_wait_s
        while len(batch) < self.config.max_batch_size:
            if not queue.empty():
                item = queue.get_nowait()
            else:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is _CLOSE:
                return batch, True
            batch.append(item)
        return batch, False

    async def _worker(self, qid: int) -> None:
        queue = self._queues[qid]
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            batch, closing = await self._collect(queue, item)
            self.batches += 1
            self.batched_items += len(batch)
            try:
                await self._execute(qid, batch)
            except Exception as exc:  # executor contract violation
                for work in batch:
                    if not work.future.done():
                        work.future.set_exception(exc)
            if closing:
                return

    def __repr__(self) -> str:
        state = "started" if self.started else "stopped"
        return (f"Batcher({state}, queues={self._n_queues}, "
                f"batches={self.batches}, "
                f"mean_batch={self.mean_batch_size:.2f})")

"""`repro.serve` — async serving frontend over the sharded store.

:mod:`repro.store` made the paper's indexing functions route real
get/put/delete traffic across shards; this subsystem puts a *request
fabric* in front of them, the shape a hash-routed backend has in
production (cf. Sandy Bridge's sliced LLC, where a hash spreads the
request stream over slices behind a real interconnect):

* :class:`Frontend` — asyncio entry point accepting get / put /
  delete / simulate requests, returning an explicit
  :class:`Response` for every one (ok, rejected, timeout, error —
  never a silent drop).
* :class:`Batcher` / :class:`BatchConfig` — per-shard request
  coalescing with max-batch-size and max-wait deadlines.
* :class:`AdmissionController` / :class:`AdmissionConfig` —
  token-bucket rate limiting plus a queue-depth cap, so overload
  produces explicit rejects instead of unbounded queues.
* :class:`FaultPolicy` — per-request timeouts and bounded
  exponential-backoff retries; :class:`FaultInjector` — seeded
  delay / error / shard-stall injection for chaos testing.
* :mod:`~repro.serve.loadgen` — closed-loop and open-loop (Poisson,
  bursty-zipfian) load generators over the
  :mod:`repro.store.traffic` key streams, reporting p50/p95/p99
  latency, reject/timeout rates and batching behavior.
* :mod:`~repro.serve.smoke` — the ``make serve-check`` gate.

The ``serving`` experiment (``python -m repro.experiments serving``)
compares tail latency across every hashing scheme under skewed load;
``benchmarks/bench_serve.py`` writes ``BENCH_serve.json``.
"""

from repro.serve.admission import (
    REASON_QUEUE,
    REASON_RATE,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.batcher import BatchConfig, Batcher, WorkItem
from repro.serve.faults import FaultInjector, FaultPolicy, InjectedFault
from repro.serve.frontend import (
    Frontend,
    FrontendStopped,
    Response,
    SimulateRequest,
    VIRTUAL_TICK_S,
    engine_simulate_fn,
)
from repro.serve.loadgen import (
    ARRIVALS,
    LoadReport,
    arrival_gaps,
    closed_loop,
    open_loop,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "ARRIVALS",
    "AdmissionConfig",
    "AdmissionController",
    "BatchConfig",
    "Batcher",
    "FaultInjector",
    "FaultPolicy",
    "Frontend",
    "FrontendStopped",
    "InjectedFault",
    "LoadReport",
    "REASON_QUEUE",
    "REASON_RATE",
    "Response",
    "SimulateRequest",
    "VIRTUAL_TICK_S",
    "WorkItem",
    "arrival_gaps",
    "closed_loop",
    "engine_simulate_fn",
    "open_loop",
    "run_closed_loop",
    "run_open_loop",
]

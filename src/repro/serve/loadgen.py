"""Closed-loop and open-loop load generation for a :class:`Frontend`.

Two driving disciplines, because they measure different things:

* **closed loop** — N concurrent clients, each waiting for its response
  before issuing the next request.  Throughput self-adjusts to the
  backend; this measures sustainable service rate, never overload.
* **open loop** — requests arrive on their own schedule whether or not
  earlier ones finished: Poisson (memoryless, the classic M/G/k
  arrival) or **bursty zipfian** (burst sizes drawn Zipf-distributed,
  exponential gaps between bursts at the same mean offered rate).
  Open-loop is the discipline that exposes tail latency and admission
  behavior — the birthday-paradox effect of skewed key popularity
  colliding on shards only shows up when arrivals do not politely wait.

Request *content* comes from :mod:`repro.store.traffic` (zipfian /
strided / pow2 key streams), so the same generators that drive the
offline replay driver drive the serving frontend; arrival *timing* is
this module's job.  Everything is deterministic under a seed.

:class:`LoadReport` is the measured outcome: per-status counts,
latency percentiles over the full response population (p50/p95/p99),
reject/timeout rates, achieved vs offered rate, and the frontend's
batching summary.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.serve.frontend import Frontend, Response
from repro.store.traffic import Request

__all__ = [
    "ARRIVALS",
    "LoadReport",
    "arrival_gaps",
    "closed_loop",
    "open_loop",
    "run_closed_loop",
    "run_open_loop",
]

#: Supported open-loop arrival processes.
ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run against a frontend."""

    n_requests: int
    elapsed_s: float
    throughput_rps: float  #: completed responses / wall time
    offered_rps: Optional[float]  #: None for closed-loop runs
    statuses: Dict[str, int]
    latency: Dict[str, float]  #: mean/p50/p95/p99/max over all responses
    service_time: Dict[str, float]  #: same summary over the seed-
    #: deterministic virtual-clock ``Response.service_time_s``
    retries: int
    batches: int
    mean_batch_size: float
    peak_queue_depth: int
    concurrency: Optional[int] = None  #: closed-loop client count
    arrival: Optional[str] = None  #: open-loop arrival process
    statuses_extra: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> int:
        return self.statuses.get("ok", 0)

    @property
    def reject_rate(self) -> float:
        return (self.statuses.get("rejected", 0) / self.n_requests
                if self.n_requests else 0.0)

    @property
    def timeout_rate(self) -> float:
        return (self.statuses.get("timeout", 0) / self.n_requests
                if self.n_requests else 0.0)

    @property
    def error_rate(self) -> float:
        return (self.statuses.get("error", 0) / self.n_requests
                if self.n_requests else 0.0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "offered_rps": self.offered_rps,
            "statuses": dict(self.statuses),
            "latency": dict(self.latency),
            "service_time": dict(self.service_time),
            "retries": self.retries,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "peak_queue_depth": self.peak_queue_depth,
            "concurrency": self.concurrency,
            "arrival": self.arrival,
            "reject_rate": self.reject_rate,
            "timeout_rate": self.timeout_rate,
            "error_rate": self.error_rate,
        }


def _latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    if not len(latencies):
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, (50, 95, 99))
    return {"mean": float(arr.mean()), "p50": float(p50), "p95": float(p95),
            "p99": float(p99), "max": float(arr.max())}


def _report(frontend: Frontend, responses: List[Response], elapsed: float,
            offered_rps: Optional[float] = None,
            concurrency: Optional[int] = None,
            arrival: Optional[str] = None) -> LoadReport:
    statuses: Dict[str, int] = {}
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
    stats = frontend.stats()
    return LoadReport(
        n_requests=len(responses),
        elapsed_s=elapsed,
        throughput_rps=len(responses) / elapsed if elapsed > 0 else 0.0,
        offered_rps=offered_rps,
        statuses=statuses,
        latency=_latency_summary([r.latency_s for r in responses]),
        service_time=_latency_summary(
            [r.service_time_s for r in responses]),
        retries=stats["retries"],
        batches=stats["batches"],
        mean_batch_size=stats["mean_batch_size"],
        peak_queue_depth=stats["peak_queue_depth"],
        concurrency=concurrency,
        arrival=arrival,
    )


# -- arrival processes -------------------------------------------------


def arrival_gaps(n: int, rate_rps: float, arrival: str = "poisson",
                 seed: int = 0, zipf_a: float = 1.5,
                 max_burst: int = 64) -> np.ndarray:
    """Inter-arrival gaps (seconds) for ``n`` requests at ``rate_rps``.

    ``poisson``: iid exponential gaps (memoryless arrivals).
    ``bursty``: requests arrive in bursts whose sizes are Zipf(zipf_a)
    draws clipped to ``max_burst``; within a burst the gap is zero,
    between bursts the gap is exponential with mean sized so the
    long-run offered rate stays ``rate_rps``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    if arrival == "poisson":
        return rng.exponential(1.0 / rate_rps, size=n)
    if arrival == "bursty":
        if zipf_a <= 1.0:
            raise ValueError("zipf_a must be > 1")
        gaps = np.zeros(n, dtype=np.float64)
        i = 0
        while i < n:
            burst = int(min(rng.zipf(zipf_a), max_burst))
            burst = min(burst, n - i)
            # one exponential gap ahead of the burst, zeros inside it;
            # mean gap = burst/rate keeps the offered rate at rate_rps
            gaps[i] = rng.exponential(burst / rate_rps)
            i += burst
        return gaps
    raise ValueError(f"unknown arrival process {arrival!r}; "
                     f"known: {', '.join(ARRIVALS)}")


# -- driving loops -----------------------------------------------------


async def closed_loop(frontend: Frontend, requests: Sequence[Request],
                      concurrency: int = 16) -> LoadReport:
    """N clients, each one request at a time, until the stream drains."""
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    queue: List[Request] = list(requests)
    queue.reverse()  # pop() preserves stream order
    responses: List[Response] = []

    async def client() -> None:
        while queue:
            request = queue.pop()
            responses.append(await frontend.submit(request))

    start = perf_counter()
    await asyncio.gather(*(client() for _ in range(min(concurrency,
                                                       len(queue)) or 1)))
    elapsed = perf_counter() - start
    return _report(frontend, responses, elapsed, concurrency=concurrency)


async def open_loop(frontend: Frontend, requests: Sequence[Request],
                    rate_rps: float, arrival: str = "poisson",
                    seed: int = 0, zipf_a: float = 1.5,
                    max_burst: int = 64) -> LoadReport:
    """Issue on an arrival schedule regardless of completions.

    Every request is issued as its own task at its scheduled arrival
    time (or as soon after as the loop can manage); the report covers
    the full population, so rejects and timeouts are counted, not
    hidden.
    """
    requests = list(requests)
    gaps = arrival_gaps(len(requests), rate_rps, arrival=arrival, seed=seed,
                        zipf_a=zipf_a, max_burst=max_burst)
    loop = asyncio.get_running_loop()
    tasks: List[asyncio.Task] = []
    start = perf_counter()
    loop_start = loop.time()
    scheduled = 0.0
    for request, gap in zip(requests, gaps):
        scheduled += gap
        delay = loop_start + scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(frontend.submit(request)))
    responses = list(await asyncio.gather(*tasks))
    elapsed = perf_counter() - start
    return _report(frontend, responses, elapsed, offered_rps=rate_rps,
                   arrival=arrival)


def run_closed_loop(frontend_factory, requests: Sequence[Request],
                    concurrency: int = 16) -> LoadReport:
    """Sync wrapper: build the frontend, drive it closed-loop, stop it.

    ``frontend_factory`` is a zero-arg callable returning an unstarted
    :class:`Frontend` (frontends hold asyncio primitives, so they must
    be created inside the loop that drives them).
    """

    async def run() -> LoadReport:
        async with frontend_factory() as frontend:
            return await closed_loop(frontend, requests,
                                     concurrency=concurrency)

    return asyncio.run(run())


def run_open_loop(frontend_factory, requests: Sequence[Request],
                  rate_rps: float, arrival: str = "poisson",
                  seed: int = 0, **kwargs) -> LoadReport:
    """Sync wrapper for :func:`open_loop` (see :func:`run_closed_loop`)."""

    async def run() -> LoadReport:
        async with frontend_factory() as frontend:
            return await open_loop(frontend, requests, rate_rps,
                                   arrival=arrival, seed=seed, **kwargs)

    return asyncio.run(run())

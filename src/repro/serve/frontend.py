"""The asyncio serving frontend over a :class:`ShardedStore`.

Request lifecycle::

    submit ── admission ──► per-shard batch queue ──► batched execute
                │ reject                 │ timeout/error      │
                ▼                        ▼                    ▼
         Response("rejected")     bounded retries       Response("ok")
                                (capped backoff) ──► Response("timeout"/"error")

Every request gets an explicit :class:`Response` — admitted or not,
served or timed out — which is the serving contract the load generator
and the chaos tests assert: *no request is ever silently dropped and no
queue is ever unbounded*.  The pieces:

* :class:`~repro.serve.admission.AdmissionController` decides, before
  anything is queued, against the token bucket and the frontend's
  in-flight count;
* :class:`~repro.serve.batcher.Batcher` coalesces admitted requests
  per destination shard (keys route through the store's prime-indexed
  :class:`~repro.store.selector.ShardSelector`, so shard balance — the
  paper's Eq. 1 — directly shapes queue depths and tail latency);
* :class:`~repro.serve.faults.FaultPolicy` bounds how long any attempt
  may wait and how often it may retry; an optional
  :class:`~repro.serve.faults.FaultInjector` makes batches slow, fail,
  or stall per shard for chaos testing.

``simulate`` requests (cache-simulation-as-a-service) bypass the shard
queues and flow through a dedicated single-queue batcher that dedupes
identical ``(workload, scheme)`` cells per batch and runs them on the
default executor; wire :func:`engine_simulate_fn` to serve them from a
:class:`~repro.engine.SimulationEngine`'s content-addressed result
cache.

Instrumentation (all through :mod:`repro.obs`, free when disabled):
``serve.requests``/``serve.rejected``/``serve.retries``/
``serve.timeouts``/``serve.errors``/``serve.dropped`` counters,
``serve.latency_s`` and ``serve.batch_size`` histograms,
``serve.queue_depth`` gauge, synchronous ``serve.batch`` spans, and
1-in-``span_every`` sampled ``serve.request`` traces: when the
process-wide :class:`~repro.obs.attrib.TraceCollector` is enabled, a
sampled request carries a :class:`~repro.obs.attrib.TraceContext`
through the whole pipeline and yields a causal stage timeline —
``admit`` (admission + routing), ``queue`` (enqueue → batch pickup),
``fault`` (injected delay/stall), ``serialize`` (head-of-line wait
within the batch), ``store`` (the backend op), ``settle`` (future set
→ submitter resumed), ``timeout`` (an abandoned attempt's measured
wait) and ``backoff`` (retry sleeps).  The finished trace feeds the
critical-path analyzer and flight recorder, its ``trace_id`` is
attached to the ``serve.latency_s`` observation as an exemplar, and
it is mirrored into the span tracer as a waterfall.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs import (
    MetricsRegistry,
    get_collector,
    get_journal,
    get_registry,
    get_tracer,
    trace_span,
)
from repro.serve.admission import (
    REASON_QUEUE,
    REASON_RATE,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.batcher import BatchConfig, Batcher, WorkItem
from repro.serve.faults import FaultInjector, FaultPolicy, InjectedFault
from repro.store.engine import ShardedStore
from repro.store.traffic import Request

__all__ = [
    "Frontend",
    "FrontendStopped",
    "Response",
    "SimulateRequest",
    "VIRTUAL_TICK_S",
    "engine_simulate_fn",
]

#: Response statuses a submit can resolve to.
STATUSES = ("ok", "rejected", "timeout", "error", "dropped")

#: Queue id of the simulation batcher's single queue (distinct from any
#: shard id so targeted shard stalls never hit simulation batches).
SIM_QUEUE = -1

#: Virtual-clock tick charged per batch position: the k-th live item of
#: a dispatched batch gets ``service_time_s = k × tick``, modeling the
#: serial drain of a batch on its shard.  Wall-clock ``latency_s``
#: jitters with the host scheduler; this virtual service time is
#: exactly reproducible under a fixed seed, so load reports — and the
#: adversary's co-batching timing oracle — can assert on it.
VIRTUAL_TICK_S = 1e-6


class FrontendStopped(RuntimeError):
    """Set on futures still queued when the frontend shuts down."""


@dataclass(frozen=True)
class SimulateRequest:
    """One cache-simulation-as-a-service request."""

    workload: str
    scheme: str

    op: str = "simulate"

    @property
    def key(self) -> str:
        return f"{self.workload}:{self.scheme}"


@dataclass(frozen=True)
class Response:
    """The explicit outcome of one submitted request.

    ``latency_s`` is wall-clock (scheduler-dependent); ``service_time_s``
    is the deterministic virtual-clock batch-drain time (batch position
    × :data:`VIRTUAL_TICK_S`, 0.0 for requests that never reached a
    store batch) — assert on the latter when reproducibility matters.
    """

    op: str
    key: Any
    status: str  #: one of :data:`STATUSES`
    value: Any = None
    reason: Optional[str] = None
    retries: int = 0
    latency_s: float = 0.0
    service_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "key": self.key, "status": self.status,
                "value": self.value, "reason": self.reason,
                "retries": self.retries, "latency_s": self.latency_s,
                "service_time_s": self.service_time_s}


def engine_simulate_fn(engine) -> Callable[[str, str], Dict[str, Any]]:
    """Serve ``simulate`` requests from a
    :class:`~repro.engine.SimulationEngine`: repeats of a cell are
    content-addressed cache hits, so only the first request per
    (workload, scheme) pays for a simulation."""

    def simulate(workload: str, scheme: str) -> Dict[str, Any]:
        return asdict(engine.result(workload, scheme))

    return simulate


class Frontend:
    """Async get/put/delete/simulate serving over one sharded store.

    Args:
        store: the backend :class:`ShardedStore`.
        batch: coalescing bounds for the per-shard batchers.
        admission: token-bucket / queue-depth admission knobs.
        policy: per-request timeout + bounded-retry schedule.
        injector: optional chaos-testing fault source.
        simulate_fn: ``(workload, scheme) -> payload`` backing
            ``simulate`` requests (see :func:`engine_simulate_fn`);
            without one, simulate requests get an explicit error.
        registry: metrics registry override (defaults to the global).
        span_every: sample one ``serve.request`` span per this many
            finished requests when tracing is enabled (0 disables;
            sampling bounds trace size under load).
    """

    def __init__(self, store: ShardedStore, *,
                 batch: BatchConfig = None,
                 admission: AdmissionConfig = None,
                 policy: FaultPolicy = None,
                 injector: FaultInjector = None,
                 simulate_fn: Callable[[str, str], Any] = None,
                 registry: Optional[MetricsRegistry] = None,
                 span_every: int = 64):
        self.store = store
        self.policy = policy or FaultPolicy()
        self.injector = injector
        self.admission = AdmissionController(admission or AdmissionConfig())
        self._simulate_fn = simulate_fn
        self._batch_config = batch or BatchConfig()
        self._store_batcher = Batcher(store.n_shards, self._run_store_batch,
                                      self._batch_config)
        self._sim_batcher = Batcher(1, self._run_sim_batch,
                                    self._batch_config)
        self._bound_epoch = store.epoch
        self._rebind_task: Optional[asyncio.Task] = None
        self.rebinds = 0
        self._pending = 0
        self.peak_queue_depth = 0
        self._span_every = max(0, span_every)
        self._finished = 0
        self.counts: Dict[str, int] = {
            "requests": 0, "ok": 0, "rejected": 0, "timeouts": 0,
            "errors": 0, "dropped": 0, "retries": 0,
        }
        registry = get_registry() if registry is None else registry
        self._registry = registry
        self._observed = registry.enabled
        scheme = store.scheme
        self._req_counters = {
            op: registry.counter("serve.requests", scheme=scheme, op=op)
            for op in ("get", "put", "delete", "simulate")
        }
        self._latency = {
            op: registry.histogram("serve.latency_s", scheme=scheme, op=op)
            for op in ("get", "put", "delete", "simulate")
        }
        self._reject_counters = {
            reason: registry.counter("serve.rejected", scheme=scheme,
                                     reason=reason)
            for reason in (REASON_RATE, REASON_QUEUE)
        }
        self._retry_counter = registry.counter("serve.retries", scheme=scheme)
        self._timeout_counter = registry.counter("serve.timeouts",
                                                 scheme=scheme)
        self._error_counter = registry.counter("serve.errors", scheme=scheme)
        self._dropped_counter = registry.counter("serve.dropped",
                                                 scheme=scheme)
        self._batch_counter = registry.counter("serve.batches", scheme=scheme)
        self._batch_size = registry.histogram("serve.batch_size",
                                              scheme=scheme)
        self._queue_gauge = registry.gauge("serve.queue_depth", scheme=scheme)

    # -- lifecycle -----------------------------------------------------

    @property
    def started(self) -> bool:
        return self._store_batcher.started

    async def start(self) -> "Frontend":
        await self._store_batcher.start()
        await self._sim_batcher.start()
        return self

    async def stop(self) -> None:
        """Stop the batchers; still-queued requests resolve as dropped."""
        if self._rebind_task is not None and not self._rebind_task.done():
            await self._rebind_task
        dropped = (await self._store_batcher.stop()
                   + await self._sim_batcher.stop())
        for item in dropped:
            self._pending -= 1
            if not item.future.done():
                item.future.set_exception(FrontendStopped("frontend stopped"))

    async def __aenter__(self) -> "Frontend":
        return await self.start()

    async def __aexit__(self, *exc) -> bool:
        await self.stop()
        return False

    # -- public request surface ----------------------------------------

    async def get(self, key) -> Response:
        return await self.submit(Request("get", key))

    async def put(self, key, value) -> Response:
        return await self.submit(Request("put", key, value=value))

    async def delete(self, key) -> Response:
        return await self.submit(Request("delete", key))

    async def simulate(self, workload: str, scheme: str) -> Response:
        return await self.submit(SimulateRequest(workload, scheme))

    @property
    def queue_depth(self) -> int:
        """In-flight requests (queued + executing)."""
        return self._pending

    def _maybe_trace(self, op: str, key) -> Optional[Any]:
        """A TraceContext for 1-in-``span_every`` requests while the
        process-wide collector is enabled; None otherwise."""
        if not self._span_every:
            return None
        if (self.counts["requests"] - 1) % self._span_every != 0:
            return None
        collector = get_collector()
        if not collector.enabled:
            return None
        return collector.begin(op, scheme=self.store.scheme, key=str(key))

    async def submit(self, request) -> Response:
        """Serve one request end to end; always returns a Response."""
        start = perf_counter()
        op = request.op
        key = getattr(request, "key", None)
        self.counts["requests"] += 1
        counter = self._req_counters.get(op)
        if counter is not None:
            counter.inc()
        ctx = self._maybe_trace(op, key)
        reason = self.admission.admit(self._pending)
        if reason is not None:
            self.counts["rejected"] += 1
            self._reject_counters[reason].inc()
            get_journal().emit("serve.admission_reject", op=op,
                               reason=reason, pending=self._pending)
            if ctx is not None:
                ctx.stage_since("admit", start, reason=reason)
            return self._finish(Response(
                op=op, key=key, status="rejected", reason=reason,
                latency_s=perf_counter() - start), ctx)
        if op == "simulate":
            if self._simulate_fn is None:
                self.counts["errors"] += 1
                self._error_counter.inc()
                if ctx is not None:
                    ctx.stage_since("admit", start)
                return self._finish(Response(
                    op=op, key=key, status="error",
                    reason="no simulator configured",
                    latency_s=perf_counter() - start), ctx)
            sim = True
        else:
            sim = False
        if ctx is not None:
            ctx.stage_since("admit", start)
        retries = 0
        while True:
            # Routing is re-resolved every attempt: a reshard may have
            # swapped the store's epoch (and a rebind the batcher)
            # while this request slept in backoff.
            if sim:
                batcher, queue_id = self._sim_batcher, 0
            else:
                batcher, queue_id = self._route(key)
            item = WorkItem.make(request, trace=ctx)
            self._pending += 1
            if self._pending > self.peak_queue_depth:
                self.peak_queue_depth = self._pending
            batcher.submit(queue_id, item)
            failure = detail = None
            try:
                value = await asyncio.wait_for(item.future,
                                               self.policy.timeout_s)
            except asyncio.TimeoutError:
                # wait_for cancelled the future; the batcher will skip
                # the abandoned item when its batch comes up (and the
                # finished trace rejects its late stage appends).
                failure = "timeout"
                if ctx is not None:
                    ctx.stage_since("timeout", item.enqueued_s,
                                    attempt=retries)
            except FrontendStopped as exc:
                self.counts["dropped"] += 1
                self._dropped_counter.inc()
                get_journal().emit("serve.dropped", op=op,
                                   retries=retries)
                return self._finish(Response(
                    op=op, key=key, status="dropped", reason=str(exc),
                    retries=retries, latency_s=perf_counter() - start,
                    service_time_s=item.service_s), ctx)
            except Exception as exc:
                failure = "error"
                detail = f"{type(exc).__name__}: {exc}"
                if ctx is not None:
                    settled = ctx.marks.get("op_end")
                    if settled is not None:
                        ctx.stage_since("settle", settled, attempt=retries)
            else:
                self.counts["ok"] += 1
                if ctx is not None:
                    settled = ctx.marks.get("op_end")
                    if settled is not None:
                        ctx.stage_since("settle", settled, attempt=retries)
                return self._finish(Response(
                    op=op, key=key, status="ok", value=value,
                    retries=retries, latency_s=perf_counter() - start,
                    service_time_s=item.service_s), ctx)
            if retries >= self.policy.max_retries:
                if failure == "timeout":
                    self.counts["timeouts"] += 1
                    self._timeout_counter.inc()
                    detail = f"timeout after {self.policy.timeout_s}s"
                    get_journal().emit("serve.timeout", op=op,
                                       retries=retries,
                                       timeout_s=self.policy.timeout_s)
                else:
                    self.counts["errors"] += 1
                    self._error_counter.inc()
                    get_journal().emit("serve.retry_exhausted", op=op,
                                       retries=retries, detail=detail)
                return self._finish(Response(
                    op=op, key=key, status=failure, reason=detail,
                    retries=retries, latency_s=perf_counter() - start,
                    service_time_s=item.service_s), ctx)
            retries += 1
            self.counts["retries"] += 1
            self._retry_counter.inc()
            backoff_from = perf_counter()
            await asyncio.sleep(self.policy.backoff_s(retries))
            if ctx is not None:
                ctx.stage_since("backoff", backoff_from, attempt=retries)

    # -- epoch-aware routing -------------------------------------------

    @property
    def bound_epoch(self) -> int:
        """The routing epoch the store batcher's queues are sized for."""
        return self._bound_epoch

    def _route(self, key) -> "tuple[Batcher, int]":
        """(batcher, queue_id) for one store request under the current
        routing epoch.

        When the store's epoch has moved past the bound one, a rebind
        is scheduled (not awaited — admission never blocks on it) and
        the shard id is clamped onto the still-bound queue set.  The
        clamp only affects batching *locality*, never correctness: the
        executor operates on the store by key, and the store routes by
        its own current table.
        """
        if self.store.epoch != self._bound_epoch:
            self._schedule_rebind()
        batcher = self._store_batcher
        return batcher, self.store.shard_for(key) % batcher.n_queues

    def _schedule_rebind(self) -> None:
        if self._rebind_task is not None and not self._rebind_task.done():
            return
        self._rebind_task = asyncio.get_running_loop().create_task(
            self._rebind(), name="frontend-rebind")

    async def _rebind(self) -> None:
        """Swap in a batcher sized for the store's current epoch.

        The new batcher starts before the old one stops, and the old
        one's undispatched items are resubmitted (re-routed) onto the
        new queues, so no request is lost and admission stays up for
        the whole swap.  Loops in case the epoch moved again mid-swap.
        """
        while self._bound_epoch != self.store.epoch:
            target_epoch = self.store.epoch
            fresh = Batcher(self.store.n_shards, self._run_store_batch,
                            self._batch_config)
            await fresh.start()
            stale, self._store_batcher = self._store_batcher, fresh
            self._bound_epoch = target_epoch
            undispatched = await stale.stop()
            for item in undispatched:
                key = getattr(item.request, "key", None)
                fresh.submit(self.store.shard_for(key) % fresh.n_queues,
                             item)
            self.rebinds += 1
            self._registry.counter("serve.rebinds",
                                   scheme=self.store.scheme).inc()
            get_journal().emit("serve.rebind", epoch=target_epoch,
                               n_queues=fresh.n_queues,
                               scheme=self.store.scheme,
                               resubmitted=len(undispatched))

    async def rebind_routing(self) -> int:
        """Ensure the batcher matches the store's routing epoch; waits
        for any in-flight rebind to finish.  Returns the bound epoch."""
        if self.store.epoch != self._bound_epoch:
            self._schedule_rebind()
        if self._rebind_task is not None:
            await self._rebind_task
        return self._bound_epoch

    # -- batch executors (Batcher callbacks) ---------------------------

    async def _run_store_batch(self, shard_id: int,
                               items: List[WorkItem]) -> None:
        self._pending -= len(items)
        live = [item for item in items if not item.future.done()]
        if self._observed:
            self._batch_counter.inc()
            self._batch_size.observe(len(live))
            self._queue_gauge.set(self._pending)
        if not live:
            return
        traced = [item for item in live if item.trace is not None]
        if traced:
            pickup = perf_counter()
            for item in traced:
                item.trace.stage("queue", item.enqueued_s,
                                 pickup - item.enqueued_s, shard=shard_id)
        if self.injector is not None:
            fault_from = perf_counter()
            try:
                await self.injector.before_batch(shard_id)
            except InjectedFault as exc:
                failed = perf_counter()
                for item in live:
                    ctx = item.trace
                    if ctx is not None:
                        ctx.stage("fault", fault_from, failed - fault_from,
                                  shard=shard_id, injected="error")
                        ctx.mark("op_end", failed)
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            if traced:
                cleared = perf_counter()
                for item in traced:
                    item.trace.stage("fault", fault_from,
                                     cleared - fault_from, shard=shard_id)
        with trace_span("serve.batch", shard=shard_id, size=len(live)):
            store = self.store
            batch_from = perf_counter()
            for position, item in enumerate(live):
                item.service_s = (position + 1) * VIRTUAL_TICK_S
                request = item.request
                ctx = item.trace
                op_from = perf_counter()
                if ctx is not None:
                    # head-of-line wait: earlier items' ops in this batch
                    ctx.stage("serialize", batch_from, op_from - batch_from,
                              shard=shard_id)
                try:
                    if request.op == "get":
                        value = store.get(request.key)
                    elif request.op == "put":
                        value = store.put(request.key, request.value)
                    elif request.op == "delete":
                        value = store.delete(request.key)
                    else:
                        raise ValueError(
                            f"unknown request op {request.op!r}")
                except Exception as exc:
                    if ctx is not None:
                        done = ctx.mark("op_end")
                        ctx.stage("store", op_from, done - op_from,
                                  op=request.op, shard=shard_id)
                    if not item.future.done():
                        item.future.set_exception(exc)
                else:
                    if ctx is not None:
                        done = ctx.mark("op_end")
                        ctx.stage("store", op_from, done - op_from,
                                  op=request.op, shard=shard_id)
                    if not item.future.done():
                        item.future.set_result(value)

    async def _run_sim_batch(self, _qid: int,
                             items: List[WorkItem]) -> None:
        self._pending -= len(items)
        live = [item for item in items if not item.future.done()]
        if self._observed:
            self._batch_counter.inc()
            self._batch_size.observe(len(live))
            self._queue_gauge.set(self._pending)
        if not live:
            return
        traced = [item for item in live if item.trace is not None]
        if traced:
            pickup = perf_counter()
            for item in traced:
                item.trace.stage("queue", item.enqueued_s,
                                 pickup - item.enqueued_s, shard=SIM_QUEUE)
        if self.injector is not None:
            fault_from = perf_counter()
            try:
                await self.injector.before_batch(SIM_QUEUE)
            except InjectedFault as exc:
                failed = perf_counter()
                for item in live:
                    ctx = item.trace
                    if ctx is not None:
                        ctx.stage("fault", fault_from, failed - fault_from,
                                  shard=SIM_QUEUE, injected="error")
                        ctx.mark("op_end", failed)
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            if traced:
                cleared = perf_counter()
                for item in traced:
                    item.trace.stage("fault", fault_from,
                                     cleared - fault_from, shard=SIM_QUEUE)
        # Dedupe identical cells: one simulation serves every waiter.
        groups: Dict[Any, List[WorkItem]] = {}
        for position, item in enumerate(live):
            item.service_s = (position + 1) * VIRTUAL_TICK_S
            request = item.request
            groups.setdefault((request.workload, request.scheme),
                              []).append(item)
        loop = asyncio.get_running_loop()
        for (workload, scheme), waiters in groups.items():
            op_from = perf_counter()
            try:
                value = await loop.run_in_executor(
                    None, self._simulate_fn, workload, scheme)
            except Exception as exc:
                self._stage_sim_op(waiters, op_from)
                for item in waiters:
                    if not item.future.done():
                        item.future.set_exception(exc)
            else:
                self._stage_sim_op(waiters, op_from)
                for item in waiters:
                    if not item.future.done():
                        item.future.set_result(value)

    @staticmethod
    def _stage_sim_op(waiters: List[WorkItem], op_from: float) -> None:
        for item in waiters:
            ctx = item.trace
            if ctx is not None:
                done = ctx.mark("op_end")
                ctx.stage("store", op_from, done - op_from, op="simulate")

    # -- accounting ----------------------------------------------------

    def _finish(self, response: Response, ctx=None) -> Response:
        if self._observed:
            histogram = self._latency.get(response.op)
            if histogram is not None:
                histogram.observe(
                    response.latency_s,
                    exemplar=None if ctx is None else ctx.trace_id)
            self._queue_gauge.set(self._pending)
        if ctx is not None:
            trace = get_collector().finish(ctx, status=response.status,
                                           wall_s=response.latency_s)
            tracer = get_tracer()
            if trace is not None and tracer.enabled:
                tracer.record_trace(trace)
            return response
        if self._span_every:
            self._finished += 1
            if self._finished % self._span_every == 0:
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.record("serve.request", response.latency_s,
                                  op=response.op, status=response.status,
                                  scheme=self.store.scheme)
        return response

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Scrape endpoint duck-typing the cluster node's: a versioned
        metrics snapshot of this frontend's registry, so a federation
        :class:`~repro.obs.fed.Scraper` can pull a serving tier and a
        store tier through one interface."""
        from repro.obs.sinks import metrics_snapshot
        self._snapshot_version = getattr(self, "_snapshot_version", 0) + 1
        doc = metrics_snapshot(self._registry)
        doc["fed"] = {
            "node": f"frontend:{self.store.scheme}",
            "version": self._snapshot_version,
            "state": "up" if self.started else "down",
        }
        return doc

    def stats(self) -> Dict[str, Any]:
        """Serving counters + batching/admission/fault summaries."""
        batches = self._store_batcher.batches + self._sim_batcher.batches
        batched = (self._store_batcher.batched_items
                   + self._sim_batcher.batched_items)
        return {
            **self.counts,
            "batches": batches,
            "batched_items": batched,
            "mean_batch_size": batched / batches if batches else 0.0,
            "queue_depth": self._pending,
            "peak_queue_depth": self.peak_queue_depth,
            "rebinds": self.rebinds,
            "bound_epoch": self._bound_epoch,
            "admission": self.admission.stats(),
            "faults": self.injector.stats() if self.injector else {},
        }

    def __repr__(self) -> str:
        state = "started" if self.started else "stopped"
        return (f"Frontend({state}, scheme={self.store.scheme!r}, "
                f"shards={self.store.n_shards}, "
                f"requests={self.counts['requests']})")

"""Dual-channel DRAM with per-bank row buffers (paper Table 3).

Latencies are CPU cycles at 1.6 GHz, round trip from the processor:
243 for a row miss, 208 for a row hit.  The memory bus is
split-transaction, 3.2 GB/s peak; a 64-byte line occupies a channel for
``line_bytes / bus_bytes_per_cycle`` cycles, which serializes bursts of
misses and is what makes bad concentration hurt (misses that arrive in
bursts queue behind each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class DramConfig:
    """DRAM geometry and timing (defaults = paper Table 3)."""

    channels: int = 2
    banks_per_channel: int = 8
    row_blocks: int = 64          #: L2 blocks per DRAM row (4 KB rows / 64 B)
    row_hit_cycles: int = 208     #: RT latency, open-row access
    row_miss_cycles: int = 243    #: RT latency, row activation needed
    bus_cycles_per_block: int = 32  #: 64 B over 8 B @ 400 MHz = 32 CPU cycles

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("need at least one channel and one bank")
        if self.row_blocks < 1:
            raise ValueError("rows must hold at least one block")
        if self.row_hit_cycles > self.row_miss_cycles:
            raise ValueError("a row hit cannot be slower than a row miss")


@dataclass
class DramStats:
    """Row-buffer and traffic counters."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_wait_cycles: int = 0  #: cycles requests spent queued on a busy channel

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Open-page DRAM: per-bank open-row tracking plus channel occupancy.

    :meth:`service` is called with the current CPU cycle and returns the
    access latency including any queueing delay on the channel.
    """

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        n_banks = config.channels * config.banks_per_channel
        self._open_row: List[int] = [-1] * n_banks
        self._channel_free_at: List[float] = [0.0] * config.channels
        self.stats = DramStats()

    def _locate(self, block_address: int) -> tuple:
        """(channel, global bank, row) for an L2 block address."""
        cfg = self.config
        channel = block_address % cfg.channels
        interleaved = block_address // cfg.channels
        bank_local = interleaved % cfg.banks_per_channel
        row = interleaved // cfg.row_blocks
        return channel, channel * cfg.banks_per_channel + bank_local, row

    def service(self, now: float, block_address: int, is_write: bool = False) -> float:
        """Service one block transfer starting no earlier than ``now``.

        Reads return the latency observed by the requester (queueing +
        row access) and update open-row state and channel occupancy.

        Writes model a posted write buffer: they are counted for
        bandwidth accounting but drain opportunistically between reads,
        neither stalling the requester nor disturbing the open rows the
        read stream is using (standard memory-controller write-drain
        policy).
        """
        if block_address < 0:
            raise ValueError("block address must be non-negative")
        cfg = self.config
        channel, bank, row = self._locate(block_address)
        stats = self.stats
        if is_write:
            stats.writes += 1
            return 0.0
        stats.reads += 1

        start = max(now, self._channel_free_at[channel])
        queued = start - now
        stats.busy_wait_cycles += int(queued)

        if self._open_row[bank] == row:
            stats.row_hits += 1
            access = cfg.row_hit_cycles
        else:
            stats.row_misses += 1
            access = cfg.row_miss_cycles
            self._open_row[bank] = row
        self._channel_free_at[channel] = start + cfg.bus_cycles_per_block
        return queued + access

    def __repr__(self) -> str:
        return f"DramModel(channels={self.config.channels}, stats={self.stats})"

"""DRAM and memory-bus models backing the L2 miss latencies of Table 3."""

from repro.memory.dram import DramConfig, DramModel, DramStats

__all__ = ["DramConfig", "DramModel", "DramStats"]

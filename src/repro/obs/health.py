"""Health evaluation over the metrics registry: SLOs, burn rates, and
hash-quality drift detection.

Two watchdogs close the telemetry → evaluation → alert loop that PRs
2–4 left open:

* :class:`SloEngine` evaluates declarative :class:`SloSpec`\\ s against
  the live :class:`~repro.obs.registry.MetricsRegistry` with
  **multi-window burn-rate alerting**.  The burn rate is the classic
  SRE quantity: *observed bad fraction / error budget* (budget =
  ``1 - objective``), so burn 1.0 exactly spends the budget over the
  SLO period and burn 14.4 exhausts 5% of a 30-day budget within
  hours.  Two windows fire independently —

  - the **fast** window (the histogram's bounded observation window,
    or the counter delta since the previous evaluation) pages at
    :data:`FAST_BURN_THRESHOLD` = 14.4, catching a sudden failure
    (a stalled shard) within one evaluation;
  - the **slow** window (lifetime counters / the engine's accumulated
    tallies) tickets at :data:`SLOW_BURN_THRESHOLD` = 3.0, catching a
    sustained moderate burn (≈1% of the budget per hour) that the
    fast window's recency hides.

* :class:`HashQualityDetector` watches the live Eq. 1 *balance* and
  Eq. 2 *concentration* gauges the store publishes per scheme
  (``store.balance{scheme=...}`` / ``store.concentration{scheme=...}``)
  against per-scheme :class:`DriftBand`\\ s.  The default bands encode
  the paper's Figure 5 ordering as a monitored invariant: pMod and
  pDisp are *expected* near-ideal (balance ≈ 1.0 on structured
  streams), so a prime scheme drifting out of its tight band is a
  regression in hashing or routing — while traditional modulo is
  *allowed* to be bad (unbounded default band; its badness is the
  paper's baseline, not a deployment fault).  :func:`strict_bands`
  applies the near-ideal band to *every* scheme, which is how the
  ``health`` experiment demonstrates the detector trips on
  traditional-where-a-prime-scheme-was-expected and stays green on
  pMod/pDisp.

Every fired or resolved alert and every tripped band also lands on the
journal (:mod:`repro.obs.journal`) and the pre-declared ``health.*``
metric series, so the dashboard and the snapshot both see them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.journal import Journal, get_journal
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "AdversaryStatus",
    "Alert",
    "DEFAULT_DRIFT_BANDS",
    "DriftBand",
    "DriftStatus",
    "FAST_BURN_THRESHOLD",
    "HashQualityDetector",
    "SLOW_BURN_THRESHOLD",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "default_slos",
    "strict_bands",
]

#: Fast-window burn rate that pages: 14.4x spends 5% of a 30-day error
#: budget in ~2.5 hours (the SRE workbook's fast-burn rule).
FAST_BURN_THRESHOLD = 14.4

#: Slow-window burn rate that tickets: 3x spends 1% of a 30-day budget
#: in ~2.4 hours and the whole budget in 10 days (sustained moderate
#: burn the fast window's recency bias would hide).
SLOW_BURN_THRESHOLD = 3.0

#: Fraction of the fast-window error budget each rule consumes before
#: it may fire, documented on the alert.
_RULE_BUDGETS = {"fast": 0.05, "slow": 0.01}


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    Two kinds:

    * ``ratio`` — good/bad events counted from counters.  ``bad`` and
      ``total`` name counter series (label-subset matched, summed);
      ``total`` may be a tuple of names whose values are added (e.g.
      cache hits + misses).
    * ``latency`` — a histogram plus a threshold; an observation above
      ``threshold_s`` is a bad event.  The fast window is exact (the
      histogram keeps its raw window); the slow window accumulates the
      engine's per-evaluation estimates.

    ``objective`` is the required good fraction in (0, 1); the error
    budget is ``1 - objective``.
    """

    name: str
    description: str
    objective: float
    kind: str  #: "ratio" | "latency"
    bad: Optional[str] = None
    total: Tuple[str, ...] = ()
    metric: Optional[str] = None
    threshold_s: Optional[float] = None
    labels: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be within (0, 1)")
        if self.kind == "ratio":
            if not self.bad or not self.total:
                raise ValueError("ratio SLO needs bad and total counters")
        elif self.kind == "latency":
            if not self.metric or self.threshold_s is None:
                raise ValueError("latency SLO needs metric and threshold_s")
            if self.threshold_s <= 0:
                raise ValueError("threshold_s must be positive")
        else:
            raise ValueError(f"unknown SLO kind {self.kind!r}")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    @classmethod
    def ratio(cls, name: str, bad: str, total, objective: float,
              description: str = "", **labels: Any) -> "SloSpec":
        """Counter-ratio SLO: ``bad``/``total`` must stay within budget."""
        total_names = (total,) if isinstance(total, str) else tuple(total)
        return cls(name=name, description=description, objective=objective,
                   kind="ratio", bad=bad, total=total_names,
                   labels=tuple(sorted(labels.items())))

    @classmethod
    def latency(cls, name: str, metric: str, threshold_s: float,
                objective: float, description: str = "",
                **labels: Any) -> "SloSpec":
        """Histogram-threshold SLO: observations over ``threshold_s``
        are bad events."""
        return cls(name=name, description=description, objective=objective,
                   kind="latency", metric=metric, threshold_s=threshold_s,
                   labels=tuple(sorted(labels.items())))


@dataclass(frozen=True)
class SloStatus:
    """One SLO's evaluated state: both windows, both verdicts."""

    name: str
    objective: float
    fast_bad: float
    fast_total: float
    slow_bad: float
    slow_total: float
    fast_burn: float
    slow_burn: float
    fast_alert: bool
    slow_alert: bool

    @property
    def alerting(self) -> bool:
        return self.fast_alert or self.slow_alert

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "fast_bad": self.fast_bad,
            "fast_total": self.fast_total,
            "slow_bad": self.slow_bad,
            "slow_total": self.slow_total,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_alert": self.fast_alert,
            "slow_alert": self.slow_alert,
            "alerting": self.alerting,
        }


@dataclass(frozen=True)
class Alert:
    """One active alert: which SLO, which window, how hot."""

    slo: str
    window: str  #: "fast" | "slow"
    severity: str  #: "page" (fast) | "ticket" (slow)
    burn_rate: float
    threshold: float
    budget_rule: float  #: budget fraction the rule guards (0.05 / 0.01)
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {"slo": self.slo, "window": self.window,
                "severity": self.severity, "burn_rate": self.burn_rate,
                "threshold": self.threshold,
                "budget_rule": self.budget_rule, "message": self.message}


def _sum_counters(registry: MetricsRegistry, names: Sequence[str],
                  labels: Mapping[str, Any]) -> float:
    total = 0.0
    for name in names:
        for instrument in registry.matching(name, **dict(labels)):
            if instrument.kind == "counter":
                total += instrument.value
    return total


class SloEngine:
    """Evaluates a set of :class:`SloSpec`\\ s against one registry.

    Stateful on purpose: the fast window for ratio SLOs is the counter
    delta *since the previous* :meth:`evaluate` call, and latency SLOs
    accumulate their slow-window tallies across evaluations, so the
    engine is the thing you poll (the experiment CLI does so after the
    run; a long-lived server would do so on a timer).  Alert
    transitions (fired / resolved) are edge-triggered onto the journal
    and the ``health.alerts`` counter.
    """

    def __init__(self, specs: Sequence[SloSpec],
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None,
                 fast_threshold: float = FAST_BURN_THRESHOLD,
                 slow_threshold: float = SLOW_BURN_THRESHOLD,
                 min_events: int = 0,
                 flight: Optional[Any] = None):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self.specs = tuple(specs)
        self.fast_threshold = fast_threshold
        self.slow_threshold = slow_threshold
        #: Minimum observations a window must hold before its burn rate
        #: can alert — the standard low-traffic guard (a 2-of-3 bad
        #: sample is not a page).  This is also what makes federation
        #: load-bearing: with a fleet-wide ``min_events`` volume gate,
        #: each node's local view may be under the significance floor
        #: while the merged cluster-wide window clears it and pages.
        self.min_events = min_events
        self._registry = registry
        self._journal = journal
        #: Optional :class:`~repro.obs.attrib.FlightRecorder`.  When a
        #: page-severity (fast-window) alert fires, the engine dumps the
        #: recorder so the traces behind the burn are preserved at the
        #: moment of the page, not whenever an operator gets around to
        #: asking.
        self.flight = flight
        #: name -> (bad, total) lifetime values at the last evaluation.
        self._prev: Dict[str, Tuple[float, float]] = {}
        #: name -> (bad, total) accumulated slow-window tallies
        #: (latency SLOs only; ratio SLOs read lifetime counters).
        self._accumulated: Dict[str, Tuple[float, float]] = {}
        self._active: Dict[Tuple[str, str], Alert] = {}
        self.evaluations = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    def rebind(self, registry: MetricsRegistry) -> "SloEngine":
        """Point the engine at another registry (e.g. the federated
        cluster-wide merge) without losing alert/accumulator state."""
        self._registry = registry
        return self

    # -- evaluation ----------------------------------------------------

    def _windows(self, spec: SloSpec):
        """(fast_bad, fast_total, slow_bad, slow_total) for one spec."""
        registry = self.registry
        labels = dict(spec.labels)
        if spec.kind == "ratio":
            bad_now = _sum_counters(registry, (spec.bad,), labels)
            total_now = _sum_counters(registry, spec.total, labels)
            prev_bad, prev_total = self._prev.get(spec.name, (0.0, 0.0))
            fast_bad = max(0.0, bad_now - prev_bad)
            fast_total = max(0.0, total_now - prev_total)
            self._prev[spec.name] = (bad_now, total_now)
            return fast_bad, fast_total, bad_now, total_now
        # latency: exact fast window from the retained observations;
        # slow window accumulates fast-fraction estimates over the
        # lifetime count deltas (documented approximation — the
        # histogram does not retain per-observation history).
        values: List[float] = []
        count_now = 0.0
        for instrument in registry.matching(spec.metric, **labels):
            if instrument.kind == "histogram":
                values.extend(instrument.window_values())
                count_now += instrument.count
        fast_total = float(len(values))
        fast_bad = float(sum(1 for v in values if v > spec.threshold_s))
        prev_count = self._prev.get(spec.name, (0.0, 0.0))[0]
        delta = max(0.0, count_now - prev_count)
        fraction = fast_bad / fast_total if fast_total else 0.0
        acc_bad, acc_total = self._accumulated.get(spec.name, (0.0, 0.0))
        acc_bad += fraction * delta
        acc_total += delta
        self._accumulated[spec.name] = (acc_bad, acc_total)
        self._prev[spec.name] = (count_now, count_now)
        return fast_bad, fast_total, acc_bad, acc_total

    @staticmethod
    def _burn(bad: float, total: float, budget: float) -> float:
        if total <= 0:
            return 0.0
        return (bad / total) / budget

    def evaluate(self) -> List[SloStatus]:
        """Evaluate every SLO; publish gauges, fire/resolve alerts."""
        registry = self.registry
        statuses: List[SloStatus] = []
        self.evaluations += 1
        registry.counter("health.evaluations").inc()
        for spec in self.specs:
            fast_bad, fast_total, slow_bad, slow_total = self._windows(spec)
            fast_burn = self._burn(fast_bad, fast_total, spec.budget)
            slow_burn = self._burn(slow_bad, slow_total, spec.budget)
            status = SloStatus(
                name=spec.name, objective=spec.objective,
                fast_bad=fast_bad, fast_total=fast_total,
                slow_bad=slow_bad, slow_total=slow_total,
                fast_burn=fast_burn, slow_burn=slow_burn,
                fast_alert=(fast_burn >= self.fast_threshold
                            and fast_total >= self.min_events),
                slow_alert=(slow_burn >= self.slow_threshold
                            and slow_total >= self.min_events),
            )
            statuses.append(status)
            registry.gauge("health.burn_rate", slo=spec.name,
                           window="fast").set(fast_burn)
            registry.gauge("health.burn_rate", slo=spec.name,
                           window="slow").set(slow_burn)
            self._transition(spec, "fast", status.fast_alert, fast_burn,
                             self.fast_threshold)
            self._transition(spec, "slow", status.slow_alert, slow_burn,
                             self.slow_threshold)
        return statuses

    def _transition(self, spec: SloSpec, window: str, alerting: bool,
                    burn: float, threshold: float) -> None:
        key = (spec.name, window)
        was_active = key in self._active
        if alerting and not was_active:
            alert = Alert(
                slo=spec.name, window=window,
                severity="page" if window == "fast" else "ticket",
                burn_rate=burn, threshold=threshold,
                budget_rule=_RULE_BUDGETS[window],
                message=(f"{spec.name}: {window}-window burn rate "
                         f"{burn:.1f}x >= {threshold:.1f}x "
                         f"(objective {spec.objective})"),
            )
            self._active[key] = alert
            self.registry.counter("health.alerts").inc()
            self.journal.emit("health.alert_fired", slo=spec.name,
                              window=window, burn_rate=burn,
                              threshold=threshold,
                              severity=alert.severity)
            if alert.severity == "page" and self.flight is not None:
                self.flight.dump(reason=f"slo:{spec.name}:{window}")
        elif not alerting and was_active:
            del self._active[key]
            self.journal.emit("health.alert_resolved", slo=spec.name,
                              window=window, burn_rate=burn)

    def active_alerts(self) -> List[Alert]:
        """Currently firing alerts, fast (paging) first."""
        return sorted(self._active.values(),
                      key=lambda a: (a.window != "fast", a.slo))

    def __repr__(self) -> str:
        return (f"SloEngine(slos={len(self.specs)}, "
                f"active_alerts={len(self._active)}, "
                f"evaluations={self.evaluations})")


def default_slos(p99_target_s: float = 0.05,
                 latency_objective: float = 0.99,
                 reject_objective: float = 0.95,
                 cache_hit_objective: float = 0.5) -> List[SloSpec]:
    """The serving stack's standing SLOs.

    * ``serve-p99-latency`` — at most ``1 - latency_objective`` of
      recent requests slower than ``p99_target_s`` (the p99 target as
      a counted objective, so it burns like an error budget);
    * ``serve-reject-rate`` — admission rejects within budget;
    * ``engine-cache-hit-ratio`` — result-cache misses within budget
      (a collapsed hit ratio means the content-addressed cache stopped
      doing its job — every simulate request pays full price).
    """
    return [
        SloSpec.latency(
            "serve-p99-latency", metric="serve.latency_s",
            threshold_s=p99_target_s, objective=latency_objective,
            description=f"p99 request latency <= {p99_target_s * 1e3:g} ms"),
        SloSpec.ratio(
            "serve-reject-rate", bad="serve.rejected",
            total="serve.requests", objective=reject_objective,
            description="admission rejects within budget"),
        SloSpec.ratio(
            "engine-cache-hit-ratio", bad="engine.cache.misses",
            total=("engine.cache.hits", "engine.cache.misses"),
            objective=cache_hit_objective,
            description="result-cache misses within budget"),
    ]


# -- hash-quality drift ------------------------------------------------


@dataclass(frozen=True)
class DriftBand:
    """Healthy ceilings for one scheme's live hashing quality.

    ``balance_max`` bounds Eq. 1 (1.0 is ideal, bigger is worse);
    ``concentration_max`` bounds Eq. 2 (0.0 is ideal).  ``inf`` means
    "not monitored" — the traditional scheme's default, because its
    pathological behavior on structured streams is the paper's
    baseline, not a deployment regression.
    """

    balance_max: float = math.inf
    concentration_max: float = math.inf


#: Per-scheme expected bands.  pMod/pDisp must hold the near-ideal
#: balance the paper's Figure 5 shows for them on structured streams;
#: XOR is permitted its known pow2-alignment weakness (Figure 5's
#: middle curve) via a looser ceiling; traditional is unmonitored.
DEFAULT_DRIFT_BANDS: Dict[str, DriftBand] = {
    "traditional": DriftBand(),
    "xor": DriftBand(balance_max=16.0),
    "pmod": DriftBand(balance_max=1.5),
    "pdisp": DriftBand(balance_max=1.5),
    "pdisp19": DriftBand(balance_max=1.5),
    "pdisp31": DriftBand(balance_max=1.5),
    "pdisp37": DriftBand(balance_max=1.5),
    "keyed": DriftBand(balance_max=1.5),
    "keyed_pdisp": DriftBand(balance_max=1.5),
}


def strict_bands(n_shards: int,
                 balance_max: float = 1.5) -> Dict[str, DriftBand]:
    """The near-ideal band applied to *every* scheme.

    This is the Figure 5 ordering turned into a detector: on a
    structured (pow2-strided) stream a prime scheme sits inside this
    band and traditional modulo cannot, so grading all schemes against
    it makes "someone routed prime traffic through traditional" a red
    alert while pMod/pDisp stay green.  The concentration ceiling is
    ``n_shards / 4``: a collapsed selector concentrates toward
    ``n_shards - 1`` (every access re-hitting one shard) while healthy
    prime selection on strided streams stays near single digits.
    """
    band = DriftBand(balance_max=balance_max,
                     concentration_max=n_shards / 4.0)
    return {scheme: band for scheme in DEFAULT_DRIFT_BANDS}


@dataclass(frozen=True)
class DriftStatus:
    """One scheme's graded hashing quality.

    ``top_keys`` names the heaviest routed keys at grading time (from
    the store's :class:`~repro.obs.attrib.HeavyHitterTracker`, when one
    is feeding the detector), so a concentration trip reads "these keys
    are the skew" instead of a bare number.
    """

    scheme: str
    balance: float
    concentration: float
    balance_max: float
    concentration_max: float
    balance_ok: bool
    concentration_ok: bool
    top_keys: Tuple[Mapping[str, Any], ...] = ()

    @property
    def ok(self) -> bool:
        return self.balance_ok and self.concentration_ok

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "balance": self.balance,
            "concentration": self.concentration,
            "balance_max": (None if math.isinf(self.balance_max)
                            else self.balance_max),
            "concentration_max": (None if math.isinf(self.concentration_max)
                                  else self.concentration_max),
            "balance_ok": self.balance_ok,
            "concentration_ok": self.concentration_ok,
            "ok": self.ok,
            "top_keys": [dict(row) for row in self.top_keys],
        }


@dataclass(frozen=True)
class AdversaryStatus:
    """One adversarial-drift observation of a store's telemetry.

    ``suspicious`` is this single observation's verdict (hot shard
    *and* hot keys concentrated on it); ``tripped`` is the sustained
    alarm state after :attr:`HashQualityDetector.adversary_sustain`
    consecutive suspicious observations.
    """

    scheme: str
    tail_load: float
    hot_key_share: float  #: top-K traffic share landing on the hottest shard
    tail_max: float
    share_min: float
    suspicious: bool
    tripped: bool
    streak: int

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable payload."""
        return {
            "scheme": self.scheme,
            "tail_load": self.tail_load,
            "hot_key_share": self.hot_key_share,
            "tail_max": self.tail_max,
            "share_min": self.share_min,
            "suspicious": self.suspicious,
            "tripped": self.tripped,
            "streak": self.streak,
        }


class HashQualityDetector:
    """Grades live per-scheme balance/concentration against bands.

    Reads the ``store.balance{scheme=...}`` and
    ``store.concentration{scheme=...}`` gauges that
    :meth:`repro.store.ShardedStore.telemetry` publishes (or grades a
    :class:`~repro.store.engine.StoreTelemetry` directly via
    :meth:`grade`).  Trips are edge-triggered onto the journal and the
    ``health.drift.trips`` counter; the per-scheme verdict is mirrored
    to the ``health.drift.ok`` gauge (1 = inside band).

    **Adversary mode** (:meth:`grade_adversary`) watches for
    *deliberate* skew rather than accidental drift: traffic that pins
    one shard (``tail_load`` at or above ``adversary_tail_max``) while
    the heavy-hitter top-K shows the traffic is a small recycled key
    set aimed at that shard (their share of all accesses at or above
    ``adversary_hot_key_share``).  Accidental skew (zipfian hot keys)
    spreads its hitters across shards; a crack-and-flood attack cannot
    avoid both signals at once.  Sustained for ``adversary_sustain``
    consecutive observations, it pages: ``health.alert_fired`` with
    ``slo="health.adversary"``, mirrored to ``health.adversary.ok`` /
    ``health.adversary.trips`` — the page the
    :class:`~repro.control.RemediationController` answers with a key
    rotation.
    """

    def __init__(self, bands: Optional[Mapping[str, DriftBand]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None,
                 adversary_tail_max: float = 4.0,
                 adversary_hot_key_share: float = 0.25,
                 adversary_sustain: int = 2):
        self.bands: Dict[str, DriftBand] = dict(bands or DEFAULT_DRIFT_BANDS)
        self._registry = registry
        self._journal = journal
        self._tripped: Dict[str, DriftStatus] = {}
        if adversary_tail_max <= 1.0:
            raise ValueError("adversary_tail_max must exceed 1.0 "
                             "(1.0 is perfectly balanced load)")
        if not 0.0 < adversary_hot_key_share <= 1.0:
            raise ValueError("adversary_hot_key_share must be in (0, 1]")
        if adversary_sustain < 1:
            raise ValueError("adversary_sustain must be >= 1")
        self.adversary_tail_max = adversary_tail_max
        self.adversary_hot_key_share = adversary_hot_key_share
        self.adversary_sustain = adversary_sustain
        self._adversary_streak: Dict[str, int] = {}
        self._adversary_tripped: Dict[str, AdversaryStatus] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    def rebind(self, registry: MetricsRegistry) -> "HashQualityDetector":
        """Point the detector at another registry (the federated
        cluster-wide merge) without losing trip/streak state."""
        self._registry = registry
        return self

    def band_for(self, scheme: str) -> DriftBand:
        """The scheme's band (unmonitored for unknown schemes)."""
        return self.bands.get(scheme, DriftBand())

    def grade(self, scheme: str, balance: float, concentration: float,
              top_keys: Sequence[Mapping[str, Any]] = ()) -> DriftStatus:
        """Grade one (balance, concentration) pair; records the trip.

        NaN values (an idle store) grade as inside-band: no traffic is
        not drift.  ``top_keys`` (heavy-hitter rows from the store)
        ride the status and — on a trip — the journal event, naming
        the keys behind the concentration.
        """
        band = self.band_for(scheme)
        balance_ok = not (math.isfinite(balance)
                          and balance > band.balance_max)
        concentration_ok = not (math.isfinite(concentration)
                                and concentration > band.concentration_max)
        status = DriftStatus(
            scheme=scheme, balance=balance, concentration=concentration,
            balance_max=band.balance_max,
            concentration_max=band.concentration_max,
            balance_ok=balance_ok, concentration_ok=concentration_ok,
            top_keys=tuple(dict(row) for row in top_keys),
        )
        registry = self.registry
        registry.gauge("health.drift.ok", scheme=scheme).set(
            1.0 if status.ok else 0.0)
        was_tripped = scheme in self._tripped
        if not status.ok and not was_tripped:
            self._tripped[scheme] = status
            registry.counter("health.drift.trips").inc()
            self.journal.emit(
                "health.drift_tripped", scheme=scheme,
                balance=None if math.isnan(balance) else balance,
                concentration=(None if math.isnan(concentration)
                               else concentration),
                balance_max=(None if math.isinf(band.balance_max)
                             else band.balance_max),
                concentration_max=(None
                                   if math.isinf(band.concentration_max)
                                   else band.concentration_max),
                top_keys=[dict(row) for row in status.top_keys])
        elif status.ok and was_tripped:
            del self._tripped[scheme]
            self.journal.emit("health.drift_recovered", scheme=scheme)
        return status

    def grade_telemetry(self, telemetry) -> DriftStatus:
        """Grade a :class:`~repro.store.engine.StoreTelemetry` snapshot
        (its ``top_keys`` heavy hitters, when present, name the keys
        behind any trip)."""
        return self.grade(telemetry.scheme, telemetry.balance,
                          telemetry.concentration,
                          top_keys=getattr(telemetry, "top_keys", ()))

    def evaluate(self) -> List[DriftStatus]:
        """Grade every scheme with a live ``store.balance`` gauge."""
        registry = self.registry
        balances = {
            g.labels["scheme"]: g.value
            for g in registry.matching("store.balance")
            if g.kind == "gauge" and "scheme" in g.labels
        }
        concentrations = {
            g.labels["scheme"]: g.value
            for g in registry.matching("store.concentration")
            if g.kind == "gauge" and "scheme" in g.labels
        }
        return [
            self.grade(scheme, balances[scheme],
                       concentrations.get(scheme, math.nan))
            for scheme in sorted(balances)
        ]

    def tripped(self) -> List[DriftStatus]:
        """Schemes currently outside their band."""
        return [self._tripped[s] for s in sorted(self._tripped)]

    # -- adversary mode -------------------------------------------------

    def grade_adversary(self, telemetry) -> AdversaryStatus:
        """Grade one telemetry snapshot for *deliberate* hot-shard skew.

        Suspicious when the hottest shard carries at least
        ``adversary_tail_max`` times its ideal share **and** the
        heavy-hitter top-K rows landing on that shard account for at
        least ``adversary_hot_key_share`` of all accesses.  The alarm
        trips (pages) only after ``adversary_sustain`` consecutive
        suspicious snapshots and resolves on the first healthy one —
        edge-triggered, like drift.
        """
        scheme = telemetry.scheme
        tail_load = float(telemetry.tail_load)
        accesses = max(1, int(telemetry.accesses))
        shard_accesses = list(telemetry.shard_accesses)
        hottest = (shard_accesses.index(max(shard_accesses))
                   if shard_accesses else -1)
        hot_count = sum(
            int(row.get("count", 0))
            for row in getattr(telemetry, "top_keys", ())
            if row.get("where") == hottest)
        hot_key_share = hot_count / accesses
        suspicious = (math.isfinite(tail_load)
                      and tail_load >= self.adversary_tail_max
                      and hot_key_share >= self.adversary_hot_key_share)
        streak = self._adversary_streak.get(scheme, 0) + 1 if suspicious \
            else 0
        self._adversary_streak[scheme] = streak
        was_tripped = scheme in self._adversary_tripped
        tripped = (streak >= self.adversary_sustain) or (suspicious
                                                         and was_tripped)
        status = AdversaryStatus(
            scheme=scheme, tail_load=tail_load,
            hot_key_share=hot_key_share,
            tail_max=self.adversary_tail_max,
            share_min=self.adversary_hot_key_share,
            suspicious=suspicious, tripped=tripped, streak=streak)
        registry = self.registry
        registry.gauge("health.adversary.ok", scheme=scheme).set(
            0.0 if tripped else 1.0)
        if tripped and not was_tripped:
            self._adversary_tripped[scheme] = status
            registry.counter("health.adversary.trips").inc()
            registry.counter("health.alerts").inc()
            self.journal.emit(
                "health.alert_fired", slo="health.adversary",
                window="telemetry", severity="page", scheme=scheme,
                tail_load=tail_load, hot_key_share=hot_key_share,
                tail_max=self.adversary_tail_max,
                share_min=self.adversary_hot_key_share)
        elif not tripped and was_tripped:
            del self._adversary_tripped[scheme]
            self.journal.emit("health.alert_resolved",
                              slo="health.adversary", window="telemetry",
                              scheme=scheme)
        elif tripped:
            self._adversary_tripped[scheme] = status
        return status

    def adversary_tripped(self) -> List[AdversaryStatus]:
        """Schemes with the adversarial-drift page currently active."""
        return [self._adversary_tripped[s]
                for s in sorted(self._adversary_tripped)]

    def adversary_streak(self, scheme: str) -> int:
        """Consecutive suspicious observations for ``scheme`` (0 =
        clean).  Nonzero-but-below-``adversary_sustain`` means a
        verdict is *pending* — consumers (the controller's drift rule)
        use this to hold fire until the attack call is made."""
        return self._adversary_streak.get(scheme, 0)

    def __repr__(self) -> str:
        return (f"HashQualityDetector(bands={len(self.bands)}, "
                f"tripped={sorted(self._tripped)}, "
                f"adversary={sorted(self._adversary_tripped)})")

"""Unified health dashboard: one document for the whole system's state.

Collects the four observability surfaces into a single *dashboard
model* (a JSON-serializable dict) and renders it two ways:

* :func:`render_text` — the terminal dashboard (the repo's standard
  aligned tables plus unicode trend bars);
* :func:`render_html` — one **self-contained** HTML file: inline CSS,
  no scripts, no fonts, no images, no external requests of any kind —
  it renders identically from a file:// open on an air-gapped box.

The model's four sections:

1. **metrics** — a ``--metrics-out`` snapshot (live registry or a
   snapshot JSON loaded from disk);
2. **journal tail** — the most recent events from the
   :mod:`repro.obs.journal` stream;
3. **health** — active alerts, SLO statuses and drift verdicts from
   :mod:`repro.obs.health` evaluations;
4. **bench trajectory** — the ``BENCH_*.json`` metrics plus their
   :mod:`repro.obs.benchguard` history, sparklined.

Two cluster-scale panels join them when their sources exist:

* **federation** — per-node scrape state (version, staleness, up/down)
  and cluster-wide merged quantiles from a live
  :class:`~repro.obs.fed.Federation`;
* **time series** — per-series point counts and sparklines from a
  :class:`~repro.obs.tsdb.TimeSeriesStore` (live, or re-opened from a
  persisted directory via ``--tsdb``).

CLI::

    python -m repro.obs.dash --snapshot metrics.json \\
        [--journal run.jsonl] [--bench-root .] [--tsdb DIR] \\
        [--out dash.html]

renders a dashboard from files on disk; ``python -m repro.experiments
<name> --dash PATH`` writes one from the live run.
"""

from __future__ import annotations

import html
import json
import math
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.journal import Journal, get_journal
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import metrics_snapshot
from repro.obs.spans import SpanTracer

__all__ = [
    "build_dashboard",
    "render_html",
    "render_text",
    "write_dashboard",
]

#: Journal-tail rows shown on the dashboard.
DEFAULT_TAIL_ROWS = 40

#: Unicode trend glyphs for the bench trajectory (oldest -> newest).
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Trailing time-series points sparklined per series on the dashboard.
_TSDB_SPARK_POINTS = 40


def _now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _spark(values: Sequence[float]) -> str:
    """One-line unicode trend bar (empty string for <2 points)."""
    finite = [v for v in values if isinstance(v, (int, float))
              and math.isfinite(v)]
    if len(finite) < 2:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(finite)
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1,
                          int((v - lo) / span * len(_SPARK_GLYPHS)))]
        for v in finite)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.6g}"
    return str(value)


def _federation_model(federation: Any,
                      elapsed_s: Optional[float]) -> Dict[str, Any]:
    """JSON-serializable cluster panel from a live Federation (a
    pre-built mapping passes through untouched)."""
    if isinstance(federation, Mapping):
        return dict(federation)
    scraper = federation.scraper
    nodes = []
    for endpoint, _source in scraper.targets:
        have = scraper.latest.get(endpoint)
        doc, arrival = have if have is not None else (None, None)
        nodes.append({
            "endpoint": endpoint,
            "scraped": have is not None,
            "version": scraper._versions.get(endpoint, 0),
            "arrival_s": arrival,
            "state": (doc.get("fed", {}).get("state", "?")
                      if doc is not None else "never"),
        })
    histograms = []
    if federation.merged is not None:
        doc = metrics_snapshot(federation.merged)
        histograms = [row for row in doc["metrics"]["histograms"]
                      if row.get("count")]
        for row in histograms:  # sketches are for merging, not reading
            row.pop("sketch", None)
    return {
        "targets": len(scraper.targets),
        "scrapes": scraper.scrapes,
        "misses": scraper.misses,
        "merges": federation.merges,
        "utilization": (scraper.scrape_utilization(elapsed_s)
                        if elapsed_s else None),
        "nodes": nodes,
        "histograms": histograms,
    }


def _tsdb_model(store: Any) -> Dict[str, Any]:
    """JSON-serializable time-series panel (mapping passes through)."""
    if isinstance(store, Mapping):
        return dict(store)

    def _scalar(point: Any) -> Optional[float]:
        value = point.value
        if hasattr(value, "percentile"):  # sketch point: sparkline p99
            return value.percentile(99)
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    series = []
    for name in store.series_names():
        points = store.range(name)
        values = [v for v in (_scalar(p) for p in points[-_TSDB_SPARK_POINTS:])
                  if v is not None]
        series.append({
            "name": name,
            "kind": points[-1].kind if points else "-",
            "points": len(points),
            "downsampled": sum(1 for p in points if p.span > 1
                               or p.kind == "rate"),
            "latest": values[-1] if values else None,
            "values": values,
        })
    return {"retention_points": store.retention_points,
            "downsample_ratio": store.downsample_ratio,
            "series": series}


def build_dashboard(registry: Optional[MetricsRegistry] = None,
                    tracer: Optional[SpanTracer] = None,
                    snapshot: Optional[Mapping] = None,
                    journal: Optional[Journal] = None,
                    journal_events: Optional[Sequence[Mapping]] = None,
                    slo_statuses: Sequence[Any] = (),
                    alerts: Sequence[Any] = (),
                    drift_statuses: Sequence[Any] = (),
                    checks: Optional[Mapping[str, bool]] = None,
                    bench_root: Union[str, os.PathLike, None] = None,
                    flight: Any = None,
                    federation: Any = None,
                    federation_elapsed_s: Optional[float] = None,
                    tsdb: Any = None,
                    tail_rows: int = DEFAULT_TAIL_ROWS) -> Dict[str, Any]:
    """Assemble the dashboard model from whichever sources exist.

    Pass either a live ``registry`` (+ optional ``tracer``) or an
    already-written ``snapshot`` dict; either a live ``journal`` or
    decoded ``journal_events``; health results as the
    ``as_dict()``-able objects the health layer returns (or plain
    dicts).  ``bench_root`` pulls ``BENCH_*.json`` + history through
    :mod:`repro.obs.benchguard`.  ``flight`` is a live
    :class:`~repro.obs.attrib.FlightRecorder`, its ``snapshot()``
    dict, or a plain list of trace dicts (e.g. a flight-dump JSONL
    replayed from disk) — rendered as slow-trace waterfalls.
    ``federation`` is a live :class:`~repro.obs.fed.Federation` (pass
    ``federation_elapsed_s`` — virtual seconds the scrape traffic had
    to spread over — to report the overhead fraction) and ``tsdb`` a
    live or re-opened :class:`~repro.obs.tsdb.TimeSeriesStore`; both
    also accept already-built model dicts.
    """
    if snapshot is None and registry is not None:
        snapshot = metrics_snapshot(registry, tracer)
    events: List[Dict[str, Any]] = []
    if journal_events is not None:
        events = [dict(e) for e in journal_events]
    elif journal is not None:
        events = [e.as_dict() for e in journal.tail()]
    elif get_journal().enabled:
        events = [e.as_dict() for e in get_journal().tail()]

    def _dictify(items: Sequence[Any]) -> List[Dict[str, Any]]:
        return [item.as_dict() if hasattr(item, "as_dict") else dict(item)
                for item in items]

    bench: Dict[str, Any] = {}
    if bench_root is not None:
        from repro.obs import benchguard  # deferred: avoid import cycle

        docs = benchguard.load_bench_files(bench_root)
        history = benchguard.load_history(
            Path(bench_root) / benchguard.DEFAULT_HISTORY_NAME)
        trajectory = benchguard.metric_trajectories(history)
        for name, doc in sorted(docs.items()):
            for metric, value, direction in benchguard.extract_metrics(doc):
                series = trajectory.get(f"{name}.{metric}", [])
                bench[f"{name}.{metric}"] = {
                    "current": value,
                    "direction": direction,
                    "history": series,
                }
    flight_model: Optional[Dict[str, Any]] = None
    if flight is not None:
        if hasattr(flight, "snapshot"):
            flight_model = flight.snapshot()
        elif isinstance(flight, Mapping):
            flight_model = dict(flight)
        else:  # a replayed flight-dump JSONL: every line is one trace
            traces = [dict(t) for t in flight]
            flight_model = {
                "recorded": len(traces), "dumps": 0,
                "slowest": sorted(traces,
                                  key=lambda t: -t.get("wall_s", 0.0)),
                "errors": [t for t in traces
                           if t.get("status", "ok") != "ok"],
            }
    return {
        "generated_at": _now_iso(),
        "metrics": dict(snapshot) if snapshot is not None else None,
        "journal_tail": events[-tail_rows:],
        "journal_events_total": (journal.events if journal is not None
                                 else len(events)),
        "slos": _dictify(slo_statuses),
        "alerts": _dictify(alerts),
        "drift": _dictify(drift_statuses),
        "checks": dict(checks) if checks else {},
        "bench": bench,
        "flight": flight_model,
        "federation": (_federation_model(federation, federation_elapsed_s)
                       if federation is not None else None),
        "tsdb": _tsdb_model(tsdb) if tsdb is not None else None,
    }


# -- terminal rendering ------------------------------------------------


def render_text(model: Mapping[str, Any]) -> str:
    """The dashboard as the repo's standard aligned-table report."""
    from repro.reporting import format_table  # deferred: keep obs light

    sections: List[str] = [f"health dashboard — {model['generated_at']}"]

    alerts = model.get("alerts") or []
    if alerts:
        sections.append(format_table(
            ["slo", "window", "severity", "burn", "threshold"],
            [[a["slo"], a["window"], a["severity"],
              _fmt(a["burn_rate"]), _fmt(a["threshold"])] for a in alerts],
            title=f"ACTIVE ALERTS ({len(alerts)})"))
    else:
        sections.append("alerts: none active")

    slos = model.get("slos") or []
    if slos:
        sections.append(format_table(
            ["slo", "objective", "fast burn", "slow burn", "state"],
            [[s["name"], _fmt(s["objective"]), _fmt(s["fast_burn"]),
              _fmt(s["slow_burn"]),
              "ALERTING" if s["alerting"] else "ok"] for s in slos],
            title="SLO burn rates"))

    drift = model.get("drift") or []
    if drift:
        sections.append(format_table(
            ["scheme", "balance", "band max", "concentration", "band max",
             "state"],
            [[d["scheme"], _fmt(d["balance"]), _fmt(d["balance_max"]),
              _fmt(d["concentration"]), _fmt(d["concentration_max"]),
              "ok" if d["ok"] else "DRIFT"] for d in drift],
            title="hash-quality drift (Eq. 1 / Eq. 2 bands)"))

    checks = model.get("checks") or {}
    if checks:
        held = sum(bool(v) for v in checks.values())
        sections.append(format_table(
            ["check", "verdict"],
            [[name, "ok" if ok else "FAIL"]
             for name, ok in sorted(checks.items())],
            title=f"checks ({held}/{len(checks)} hold)"))

    bench = model.get("bench") or {}
    if bench:
        rows = []
        for name, cell in sorted(bench.items()):
            history = cell.get("history") or []
            rows.append([name, _fmt(cell.get("current")),
                         cell.get("direction", "-"),
                         _spark(history) or "-", str(len(history))])
        sections.append(format_table(
            ["bench metric", "current", "better", "trend", "runs"],
            rows, title="bench trajectory (BENCH_*.json + history)"))

    fed = model.get("federation") or {}
    if fed:
        rows = [[n["endpoint"], n["state"],
                 str(n["version"]) if n["version"] else "-",
                 _fmt(n["arrival_s"]),
                 "ok" if n["scraped"] else "NEVER SCRAPED"]
                for n in fed.get("nodes") or []]
        util = fed.get("utilization")
        sections.append(format_table(
            ["node", "state", "version", "last scrape t(s)", "scraped"],
            rows,
            title=(f"metrics federation — {fed.get('targets', 0)} targets, "
                   f"{fed.get('scrapes', 0)} scrapes, "
                   f"{fed.get('misses', 0)} misses, "
                   f"{fed.get('merges', 0)} merges"
                   + (f", scrape overhead {util:.2%} of worst link"
                      if util is not None else ""))))
        hist_rows = [[h["name"],
                      ", ".join(f"{k}={v}" for k, v
                                in sorted(h["labels"].items())) or "-",
                      str(h["count"]), _fmt(h["p50"]), _fmt(h["p99"]),
                      _fmt(h["max"])]
                     for h in fed.get("histograms") or []]
        if hist_rows:
            sections.append(format_table(
                ["merged series", "labels", "count", "p50", "p99", "max"],
                hist_rows, title="cluster-wide merged quantiles"))

    tsdb = model.get("tsdb") or {}
    if tsdb:
        rows = [[s["name"], s["kind"], str(s["points"]),
                 str(s["downsampled"]), _fmt(s.get("latest")),
                 _spark(s.get("values") or []) or "-"]
                for s in tsdb.get("series") or []]
        sections.append(format_table(
            ["series", "kind", "points", "aged", "latest", "spark"],
            rows,
            title=(f"time series — retention "
                   f"{tsdb.get('retention_points', '-')} raw points, "
                   f"{tsdb.get('downsample_ratio', '-')}:1 downsample")))

    flight = model.get("flight") or {}
    slowest = flight.get("slowest") or []
    if slowest:
        rows = []
        for t in slowest:
            stages = t.get("stages") or []
            breakdown = " ".join(
                f"{s['name']}={s['duration_s'] * 1e3:.2f}ms"
                for s in stages) or "-"
            rows.append([t.get("trace_id", "-"), t.get("op", "-"),
                         t.get("scheme") or "-", t.get("status", "-"),
                         f"{t.get('wall_s', 0.0) * 1e3:.2f}",
                         _fmt(t.get("coverage")), breakdown])
        sections.append(format_table(
            ["trace", "op", "scheme", "status", "wall (ms)", "coverage",
             "stages"],
            rows,
            title=(f"flight recorder — slowest traces "
                   f"({len(slowest)} retained, "
                   f"{flight.get('recorded', len(slowest))} recorded, "
                   f"{len(flight.get('errors') or [])} errors)")))

    events = model.get("journal_tail") or []
    if events:
        rows = [[str(e["seq"]), f"{e['mono_s']:.3f}", e["kind"],
                 ", ".join(f"{k}={_fmt(v)}"
                           for k, v in sorted(e["fields"].items())) or "-"]
                for e in events]
        sections.append(format_table(
            ["seq", "t(s)", "event", "fields"], rows,
            title=f"journal tail ({len(events)} of "
                  f"{model.get('journal_events_total', len(events))} events)"))

    metrics = model.get("metrics")
    if metrics:
        counts = {kind: len(metrics["metrics"][kind])
                  for kind in ("counters", "gauges", "histograms")}
        sections.append(
            f"metrics snapshot: {counts['counters']} counters, "
            f"{counts['gauges']} gauges, {counts['histograms']} histograms, "
            f"{len(metrics.get('spans', []))} spans")
    return "\n\n".join(sections)


# -- HTML rendering ----------------------------------------------------

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem; background: #fcfcfa; color: #1c1c1c; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #d0d0c8; padding: 0.25rem 0.6rem;
         text-align: right; font-size: 0.85rem; }
th { background: #efefe8; } td:first-child, th:first-child
{ text-align: left; }
.ok { color: #166534; font-weight: bold; }
.bad { color: #b91c1c; font-weight: bold; }
.muted { color: #777; }
.spark { letter-spacing: 1px; }
.wf { margin: 0.4rem 0 1.2rem; max-width: 64rem; }
.wf-row { display: flex; align-items: center; font-size: 0.8rem;
          margin: 2px 0; }
.wf-label { width: 11rem; flex: none; text-align: right;
            padding-right: 0.6rem; color: #444; }
.wf-track { flex: 1; height: 0.9rem; background: #efefe8;
            display: block; }
.wf-bar { height: 100%; background: #2563eb; opacity: 0.85;
          display: block; }
.wf-bar-wall { background: #9ca3af; }
.wf-bar-err { background: #b91c1c; }
"""


def _h(value: Any) -> str:
    return html.escape(_fmt(value))


def _html_table(headers: Sequence[str],
                rows: Sequence[Sequence[str]]) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{html.escape(h)}</th>"
                                       for h in headers) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{cell}</td>" for cell in row)
                   + "</tr>")
    out.append("</table>")
    return out


def _verdict(ok: bool, good: str = "ok", bad: str = "FAIL") -> str:
    # The labels are data (alert severities, check names), not markup:
    # escape them, or a metric label like `scheme=<b>x` walks straight
    # into the document.
    label = html.escape(good if ok else bad)
    return (f'<span class="ok">{label}</span>' if ok
            else f'<span class="bad">{label}</span>')


#: Slow traces rendered as waterfalls on the HTML dashboard (the rest
#: stay in the JSONL dump; the panel is for reading, not archiving).
_WATERFALL_TRACES = 5


def _waterfall(trace: Mapping[str, Any]) -> List[str]:
    """One trace as an inline-CSS stage waterfall (no scripts/assets)."""
    wall_s = float(trace.get("wall_s") or 0.0)
    wall_ms = wall_s * 1e3
    coverage = trace.get("coverage")
    status = str(trace.get("status", "ok"))
    title = (f"{trace.get('trace_id', '?')} — op={trace.get('op', '?')}"
             f" scheme={trace.get('scheme') or '-'}"
             f" status={status} wall={wall_ms:.2f}ms"
             + (f" coverage={coverage:.0%}"
                if isinstance(coverage, (int, float)) else ""))
    out = [f"<h3>{html.escape(title)}</h3>", '<div class="wf">']
    out.append(
        '<div class="wf-row"><span class="wf-label">wall</span>'
        '<span class="wf-track"><span class="wf-bar wf-bar-wall" '
        f'style="width:100%"></span></span>'
        f'<span class="wf-label">{wall_ms:.2f}ms</span></div>')
    bar_class = "wf-bar" if status == "ok" else "wf-bar wf-bar-err"
    for stage in trace.get("stages") or []:
        start = float(stage.get("start_s") or 0.0)
        dur = float(stage.get("duration_s") or 0.0)
        if wall_s > 0:
            left = max(0.0, min(100.0, start / wall_s * 100.0))
            width = max(0.0, min(100.0 - left, dur / wall_s * 100.0))
        else:
            left, width = 0.0, 0.0
        out.append(
            '<div class="wf-row">'
            f'<span class="wf-label">{html.escape(stage.get("name", "?"))}'
            '</span><span class="wf-track">'
            f'<span class="{bar_class}" style="margin-left:{left:.1f}%;'
            f'width:{width:.1f}%;display:block"></span></span>'
            f'<span class="wf-label">{dur * 1e3:.2f}ms</span></div>')
    out.append("</div>")
    return out


def render_html(model: Mapping[str, Any]) -> str:
    """The dashboard as one self-contained HTML document."""
    parts: List[str] = [
        "<!DOCTYPE html>", "<html lang=\"en\"><head>",
        "<meta charset=\"utf-8\">",
        "<title>repro health dashboard</title>",
        f"<style>{_CSS}</style>", "</head><body>",
        f"<h1>repro health dashboard</h1>",
        f"<p class=\"muted\">generated {_h(model['generated_at'])} — "
        "prime-indexed store/serve health: SLO burn rates, hash-quality "
        "drift, journal, bench trajectory</p>",
    ]

    alerts = model.get("alerts") or []
    parts.append("<h2>Active alerts</h2>")
    if alerts:
        parts += _html_table(
            ["slo", "window", "severity", "burn rate", "threshold",
             "message"],
            [[_h(a["slo"]), _h(a["window"]),
              _verdict(False, bad=_fmt(a["severity"])),
              _h(a["burn_rate"]), _h(a["threshold"]), _h(a["message"])]
             for a in alerts])
    else:
        parts.append(f"<p>{_verdict(True, good='none active')}</p>")

    slos = model.get("slos") or []
    if slos:
        parts.append("<h2>SLO burn rates</h2>")
        parts += _html_table(
            ["slo", "objective", "fast burn", "slow burn", "state"],
            [[_h(s["name"]), _h(s["objective"]), _h(s["fast_burn"]),
              _h(s["slow_burn"]),
              _verdict(not s["alerting"], bad="ALERTING")] for s in slos])

    drift = model.get("drift") or []
    if drift:
        parts.append("<h2>Hash-quality drift (Eq. 1 balance / "
                     "Eq. 2 concentration)</h2>")
        parts += _html_table(
            ["scheme", "balance", "band max", "concentration", "band max",
             "state"],
            [[_h(d["scheme"]), _h(d["balance"]), _h(d["balance_max"]),
              _h(d["concentration"]), _h(d["concentration_max"]),
              _verdict(d["ok"], bad="DRIFT")] for d in drift])

    checks = model.get("checks") or {}
    if checks:
        held = sum(bool(v) for v in checks.values())
        parts.append(f"<h2>Checks ({held}/{len(checks)} hold)</h2>")
        parts += _html_table(
            ["check", "verdict"],
            [[_h(name), _verdict(bool(ok))]
             for name, ok in sorted(checks.items())])

    bench = model.get("bench") or {}
    if bench:
        parts.append("<h2>Bench trajectory</h2>")
        rows = []
        for name, cell in sorted(bench.items()):
            history = cell.get("history") or []
            rows.append([
                _h(name), _h(cell.get("current")),
                _h(cell.get("direction")),
                f'<span class="spark">{html.escape(_spark(history))}</span>'
                if _spark(history) else "-",
                _h(len(history)),
            ])
        parts += _html_table(
            ["bench metric", "current", "better", "trend", "runs"], rows)

    fed = model.get("federation") or {}
    if fed:
        util = fed.get("utilization")
        parts.append("<h2>Metrics federation</h2>")
        parts.append(
            f"<p class=\"muted\">{_h(fed.get('targets', 0))} targets, "
            f"{_h(fed.get('scrapes', 0))} scrapes, "
            f"{_h(fed.get('misses', 0))} misses, "
            f"{_h(fed.get('merges', 0))} merges"
            + (f", scrape overhead {util:.2%} of the busiest link"
               if util is not None else "") + "</p>")
        parts += _html_table(
            ["node", "state", "version", "last scrape t (s)", "scraped"],
            [[_h(n["endpoint"]), _h(n["state"]),
              _h(n["version"] or "-"), _h(n["arrival_s"]),
              _verdict(bool(n["scraped"]), bad="NEVER SCRAPED")]
             for n in fed.get("nodes") or []])
        hists = fed.get("histograms") or []
        if hists:
            parts.append("<h3>cluster-wide merged quantiles</h3>")
            parts += _html_table(
                ["merged series", "labels", "count", "p50", "p95", "p99",
                 "max"],
                [[_h(h["name"]),
                  _h(", ".join(f"{k}={v}" for k, v
                               in sorted(h["labels"].items())) or "-"),
                  _h(h["count"]), _h(h["p50"]), _h(h["p95"]), _h(h["p99"]),
                  _h(h["max"])] for h in hists])

    tsdb = model.get("tsdb") or {}
    if tsdb:
        parts.append("<h2>Time series</h2>")
        parts.append(
            f"<p class=\"muted\">retention "
            f"{_h(tsdb.get('retention_points'))} raw points per series, "
            f"{_h(tsdb.get('downsample_ratio'))}:1 downsample on "
            "age-out</p>")
        rows = []
        for s in tsdb.get("series") or []:
            spark = _spark(s.get("values") or [])
            rows.append([
                _h(s["name"]), _h(s["kind"]), _h(s["points"]),
                _h(s["downsampled"]), _h(s.get("latest")),
                (f'<span class="spark">{html.escape(spark)}</span>'
                 if spark else "-"),
            ])
        parts += _html_table(
            ["series", "kind", "points", "aged", "latest", "spark"], rows)

    flight = model.get("flight") or {}
    slowest = flight.get("slowest") or []
    if slowest:
        n_err = len(flight.get("errors") or [])
        parts.append("<h2>Flight recorder — slow-trace waterfalls</h2>")
        parts.append(
            f"<p class=\"muted\">{len(slowest)} slow traces retained of "
            f"{_h(flight.get('recorded', len(slowest)))} recorded; "
            f"{n_err} error traces; {_h(flight.get('dumps', 0))} dumps. "
            "Bars are stage offsets/durations within each trace's "
            "measured wall time.</p>")
        for t in slowest[:_WATERFALL_TRACES]:
            parts += _waterfall(t)

    events = model.get("journal_tail") or []
    if events:
        parts.append(
            f"<h2>Journal tail ({len(events)} of "
            f"{_h(model.get('journal_events_total', len(events)))} "
            "events)</h2>")
        parts += _html_table(
            ["seq", "t (s)", "event", "fields"],
            [[_h(e["seq"]), _h(round(e["mono_s"], 3)), _h(e["kind"]),
              _h(", ".join(f"{k}={_fmt(v)}"
                           for k, v in sorted(e["fields"].items())) or "-")]
             for e in events])

    metrics = model.get("metrics")
    if metrics:
        parts.append("<h2>Metrics snapshot</h2>")
        for kind in ("counters", "gauges"):
            rows = [[_h(m["name"]),
                     _h(", ".join(f"{k}={v}" for k, v
                                  in sorted(m["labels"].items())) or "-"),
                     _h(m["value"])]
                    for m in metrics["metrics"][kind]]
            if rows:
                parts.append(f"<h3>{kind}</h3>")
                parts += _html_table(["name", "labels", "value"], rows)
        hist_rows = [[_h(m["name"]),
                      _h(", ".join(f"{k}={v}" for k, v
                                   in sorted(m["labels"].items())) or "-"),
                      _h(m["count"]), _h(m["mean"]), _h(m["p50"]),
                      _h(m["p95"]), _h(m["p99"]), _h(m["max"])]
                     for m in metrics["metrics"]["histograms"]]
        if hist_rows:
            parts.append("<h3>histograms (windowed percentiles)</h3>")
            parts += _html_table(
                ["name", "labels", "count", "mean", "p50", "p95", "p99",
                 "max"], hist_rows)

    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(path: Union[str, os.PathLike],
                    model: Mapping[str, Any]) -> Path:
    """Write the HTML dashboard to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html(model))
    return path


def main(argv: Optional[List[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        description="Render the health dashboard from files on disk.")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="--metrics-out snapshot JSON")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="journal JSONL file (rotated segment included)")
    parser.add_argument("--bench-root", default=None, metavar="DIR",
                        help="directory holding BENCH_*.json + history")
    parser.add_argument("--flight", default=None, metavar="PATH",
                        help="flight-recorder dump JSONL (one trace per "
                             "line) rendered as slow-trace waterfalls")
    parser.add_argument("--tsdb", default=None, metavar="DIR",
                        help="persisted repro.obs.tsdb directory, "
                             "rendered as per-series sparklines")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write self-contained HTML here "
                             "(default: terminal rendering to stdout)")
    args = parser.parse_args(argv)
    snapshot = None
    if args.snapshot:
        snapshot = json.loads(Path(args.snapshot).read_text())
    events = None
    if args.journal:
        from repro.obs.journal import replay

        events = list(replay(args.journal, strict=False))
    flight = None
    if args.flight:
        flight = [json.loads(line) for line
                  in Path(args.flight).read_text().splitlines() if line]
    tsdb = None
    if args.tsdb:
        from repro.obs.tsdb import TimeSeriesStore

        tsdb = TimeSeriesStore.open(args.tsdb)
    model = build_dashboard(snapshot=snapshot, journal_events=events,
                            bench_root=args.bench_root, flight=flight,
                            tsdb=tsdb)
    if args.out:
        print(f"dashboard written to {write_dashboard(args.out, model)}")
    else:
        print(render_text(model))


if __name__ == "__main__":
    main()

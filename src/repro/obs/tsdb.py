"""`repro.obs.tsdb` — an embedded time-series store for telemetry.

Registries answer "what is the value *now*"; the trend questions the
roadmap's raw-speed push keeps asking ("is p99 creeping?", "did the
scrape rate fall after the reshard?") need values *over time*.  This
module is the smallest honest database for that job: per-series
append-only rings with two tiers —

* a **raw tier** of the most recent ``retention_points`` samples,
  exactly as appended;
* a **downsampled tier** that raw blocks age into at
  ``downsample_ratio``:1 — counters become the block's average *rate*
  (a summed total would be meaningless after losing the samples),
  gauges become the block mean, and sketch samples merge into one
  block sketch (exact, by construction) — so old history keeps its
  quantiles at 1/10th the storage.

Each age-out journals ``obs.tsdb_evict`` and counts on
``fed.tsdb.evictions``; appends count on ``fed.tsdb.appends``.

Persistence is an append-only JSONL file per series under ``root``
(None = memory only), compacted back to the retained window whenever
the file grows past twice the retained point count — the "ring" is the
compaction, not an O(1) seek structure; at telemetry rates that is the
right trade.  :meth:`TimeSeriesStore.open` re-reads a directory into a
queryable store, which is how ``dash.py`` renders sparklines from a
finished run.
"""

from __future__ import annotations

import json
import math
import re
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.journal import Journal, get_journal
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.sketch import QuantileSketch

__all__ = ["Point", "TimeSeriesStore"]

#: Raw samples retained per series before the oldest block ages out.
DEFAULT_RETENTION_POINTS = 512

#: Raw points folded into one downsampled point on age-out.
DEFAULT_DOWNSAMPLE_RATIO = 10

_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _filename(series: str) -> str:
    return _SAFE.sub("_", series) + ".jsonl"


class Point:
    """One sample: time, value, and how it should aggregate.

    ``kind`` is ``"gauge"`` (mean on downsample), ``"counter"``
    (cumulative total; rate on downsample) or ``"sketch"`` (``value``
    is a :class:`QuantileSketch`; merge on downsample).  Downsampled
    points carry ``span`` — how many raw samples they summarize — and
    ``t_end_s``, the timestamp of the last raw sample they cover,
    which is what lets :meth:`TimeSeriesStore.open` drop raw lines a
    later downsampled line already accounts for.
    """

    __slots__ = ("t_s", "value", "kind", "span", "t_end_s")

    def __init__(self, t_s: float, value: Any, kind: str = "gauge",
                 span: int = 1, t_end_s: Optional[float] = None):
        self.t_s = t_s
        self.value = value
        self.kind = kind
        self.span = span
        self.t_end_s = t_end_s

    def as_dict(self) -> Dict[str, Any]:
        value = (self.value.as_dict()
                 if isinstance(self.value, QuantileSketch) else self.value)
        payload = {"t_s": self.t_s, "value": value, "kind": self.kind,
                   "span": self.span}
        if self.t_end_s is not None:
            payload["t_end_s"] = self.t_end_s
        return payload

    def __repr__(self) -> str:
        return f"Point(t={self.t_s:.6g}, kind={self.kind}, span={self.span})"


def _point_from_dict(payload: Dict[str, Any]) -> Point:
    value = payload["value"]
    if payload["kind"] == "sketch" and isinstance(value, dict):
        value = QuantileSketch.from_dict(value)
    t_end = payload.get("t_end_s")
    return Point(float(payload["t_s"]), value, payload.get("kind", "gauge"),
                 int(payload.get("span", 1)),
                 float(t_end) if t_end is not None else None)


class _Series:
    """One series' two tiers plus its sink file bookkeeping."""

    __slots__ = ("name", "raw", "downsampled", "file_lines")

    def __init__(self, name: str, retention: int):
        self.name = name
        self.raw: deque = deque()
        self.downsampled: List[Point] = []
        self.file_lines = 0


class TimeSeriesStore:
    """Two-tier time-series storage with JSONL persistence.

    Args:
        root: directory for per-series JSONL files (created on demand);
            None keeps everything in memory.
        retention_points: raw samples kept per series.
        downsample_ratio: raw points folded into one aged point.
        registry / journal: where ``fed.tsdb.*`` telemetry and
            ``obs.tsdb_evict`` events land.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 retention_points: int = DEFAULT_RETENTION_POINTS,
                 downsample_ratio: int = DEFAULT_DOWNSAMPLE_RATIO,
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None):
        if retention_points < 2:
            raise ValueError("retention_points must be >= 2")
        if downsample_ratio < 2:
            raise ValueError("downsample_ratio must be >= 2")
        self.root = Path(root) if root is not None else None
        self.retention_points = retention_points
        self.downsample_ratio = downsample_ratio
        self._registry = registry
        self._journal = journal
        self._series: Dict[str, _Series] = {}
        self.appends = 0
        self.evictions = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    # -- writing -------------------------------------------------------

    def append(self, series: str, t_s: float, value: Any,
               kind: str = "gauge") -> None:
        """Record one sample; ``kind`` fixes its downsample semantics.

        Counter samples are *cumulative totals* (what a registry
        counter reads), so :meth:`rate` can difference them; sketch
        samples accept a :class:`QuantileSketch` or its ``as_dict``
        form.  Out-of-order appends (``t_s`` before the series tail)
        are rejected — the rings are append-only by contract.
        """
        if kind not in ("gauge", "counter", "sketch"):
            raise ValueError(f"unknown point kind {kind!r}")
        if kind == "sketch" and isinstance(value, dict):
            value = QuantileSketch.from_dict(value)
        entry = self._series.get(series)
        if entry is None:
            entry = _Series(series, self.retention_points)
            self._series[series] = entry
        if entry.raw and t_s < entry.raw[-1].t_s:
            raise ValueError(
                f"series {series!r}: append at t={t_s} behind tail "
                f"t={entry.raw[-1].t_s} (rings are append-only)")
        point = Point(t_s, value, kind)
        entry.raw.append(point)
        self.appends += 1
        self.registry.counter("fed.tsdb.appends").inc()
        self._persist(entry, point)
        if len(entry.raw) > self.retention_points:
            self._age_out(entry)

    def _age_out(self, entry: _Series) -> None:
        """Fold the oldest ``downsample_ratio`` raw points into one
        downsampled point; journals the eviction."""
        block = [entry.raw.popleft()
                 for _ in range(min(self.downsample_ratio, len(entry.raw)))]
        aged = self._downsample(block)
        entry.downsampled.append(aged)
        # Persist the aged point too, so a crash between compactions
        # re-opens to exactly the live two-tier state (raw lines the
        # aged point covers are dropped by open() via its t_end_s).
        self._persist(entry, aged)
        self.evictions += 1
        self.registry.counter("fed.tsdb.evictions").inc()
        self.journal.emit("obs.tsdb_evict", series=entry.name,
                          points=len(block),
                          from_s=block[0].t_s, to_s=block[-1].t_s)
        self._compact(entry)

    @staticmethod
    def _downsample(block: Sequence[Point]) -> Point:
        """One aged point summarizing ``block`` (oldest raw samples)."""
        kind = block[0].kind
        t_mid = block[len(block) // 2].t_s
        span = sum(p.span for p in block)
        t_end = block[-1].t_s
        if kind == "sketch":
            merged = QuantileSketch.merged(
                [p.value for p in block
                 if isinstance(p.value, QuantileSketch)])
            return Point(t_mid, merged, "sketch", span, t_end)
        if kind == "counter":
            dt = block[-1].t_s - block[0].t_s
            dv = float(block[-1].value) - float(block[0].value)
            rate = dv / dt if dt > 0 else 0.0
            return Point(t_mid, rate, "rate", span, t_end)
        mean = sum(float(p.value) for p in block) / len(block)
        return Point(t_mid, mean, "gauge", span, t_end)

    # -- persistence ---------------------------------------------------

    def _path(self, series: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / _filename(series)

    def _persist(self, entry: _Series, point: Point) -> None:
        path = self._path(entry.name)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as stream:
            stream.write(json.dumps({"series": entry.name,
                                     **point.as_dict()},
                                    sort_keys=True) + "\n")
        entry.file_lines += 1

    def _compact(self, entry: _Series) -> None:
        """Rewrite the sink to the retained window once the append-only
        file holds twice the live point count — this is what makes the
        file a bounded ring rather than an unbounded log."""
        path = self._path(entry.name)
        if path is None:
            return
        live = len(entry.downsampled) + len(entry.raw)
        if entry.file_lines <= 2 * max(live, 1):
            return
        tmp = path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as stream:
            for point in list(entry.downsampled) + list(entry.raw):
                stream.write(json.dumps({"series": entry.name,
                                         **point.as_dict()},
                                        sort_keys=True) + "\n")
        tmp.replace(path)
        entry.file_lines = live

    @classmethod
    def open(cls, root: Union[str, Path],
             **kwargs) -> "TimeSeriesStore":
        """Re-read a persisted directory into a queryable store.

        Downsampled points (``kind`` ``"rate"`` or ``span > 1``) land
        back in the downsampled tier, raw points in the raw tier —
        re-opening is lossless with respect to what was retained.
        """
        store = cls(root=root, **kwargs)
        root = Path(root)
        if not root.exists():
            return store
        for path in sorted(root.glob("*.jsonl")):
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                payload = json.loads(line)
                name = payload.pop("series")
                point = _point_from_dict(payload)
                entry = store._series.get(name)
                if entry is None:
                    entry = _Series(name, store.retention_points)
                    store._series[name] = entry
                if point.kind == "rate" or point.span > 1:
                    entry.downsampled.append(point)
                else:
                    entry.raw.append(point)
                entry.file_lines += 1
        # Raw lines a downsampled line already covers (written before
        # their block aged out, still awaiting compaction) would double
        # count; the aged point's coverage end says which to drop.
        for entry in store._series.values():
            covered = max((p.t_end_s for p in entry.downsampled
                           if p.t_end_s is not None), default=None)
            if covered is not None:
                entry.raw = deque(p for p in entry.raw
                                  if p.t_s > covered)
        return store

    # -- querying ------------------------------------------------------

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def _points(self, series: str) -> List[Point]:
        entry = self._series.get(series)
        if entry is None:
            return []
        return list(entry.downsampled) + list(entry.raw)

    def range(self, series: str, t0_s: float = -math.inf,
              t1_s: float = math.inf) -> List[Point]:
        """Retained points with ``t0_s <= t < t1_s``, oldest first
        (downsampled tier first, then raw)."""
        return [p for p in self._points(series) if t0_s <= p.t_s < t1_s]

    def rate(self, series: str, t0_s: float = -math.inf,
             t1_s: float = math.inf) -> float:
        """Average per-second rate of a counter series over the window.

        Uses raw cumulative samples when at least two fall inside the
        window; otherwise averages the downsampled block rates — the
        honest answer once the raw samples are gone.
        """
        window = self.range(series, t0_s, t1_s)
        raw = [p for p in window if p.kind == "counter"]
        if len(raw) >= 2:
            dt = raw[-1].t_s - raw[0].t_s
            if dt <= 0:
                return 0.0
            return (float(raw[-1].value) - float(raw[0].value)) / dt
        rates = [p for p in window if p.kind == "rate"]
        if not rates:
            return 0.0
        total_span = sum(p.span for p in rates)
        return (sum(float(p.value) * p.span for p in rates) / total_span
                if total_span else 0.0)

    def quantile(self, series: str, q: float, t0_s: float = -math.inf,
                 t1_s: float = math.inf) -> float:
        """The ``q``-percentile (0–100) of every sketch sample in the
        window, merged — raw and downsampled tiers contribute alike
        because sketch downsampling is a merge, not an approximation
        on top of an approximation."""
        sketches = [p.value for p in self.range(series, t0_s, t1_s)
                    if isinstance(p.value, QuantileSketch)]
        if not sketches:
            return math.nan
        return QuantileSketch.merged(sketches).percentile(q)

    def merge_quantile(self, series_names: Iterable[str], q: float,
                       t0_s: float = -math.inf,
                       t1_s: float = math.inf) -> float:
        """Cross-series pooled percentile — e.g. one per-node sketch
        series per cluster member, pooled into the cluster-wide
        quantile over a time window."""
        sketches: List[QuantileSketch] = []
        for series in series_names:
            sketches.extend(p.value for p in self.range(series, t0_s, t1_s)
                            if isinstance(p.value, QuantileSketch))
        if not sketches:
            return math.nan
        return QuantileSketch.merged(sketches).percentile(q)

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        sink = str(self.root) if self.root else "memory"
        return (f"TimeSeriesStore({sink}, series={len(self._series)}, "
                f"appends={self.appends}, evictions={self.evictions})")

"""`repro.obs` — unified metrics, tracing, and profiling layer.

One process-wide :class:`MetricsRegistry` (counters, gauges, windowed
p50/p95/p99 histograms, labeled series), one :class:`SpanTracer`
(nested wall-time spans via ``perf_counter``), and pluggable sinks
(JSON snapshot, Prometheus text exposition, human-readable tables).
The engine (:mod:`repro.engine`), the sharded store
(:mod:`repro.store`) and the experiment CLI report into it; see
``docs/observability.md`` for the metric naming conventions and the
snapshot schema.

Everything starts **disabled** and costs a no-op call on the hot
paths; ``python -m repro.experiments <name> --metrics-out PATH
[--trace]`` (or :func:`enable_observability`) switches it on for one
run and dumps the snapshot next to the artifact.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL,
    NullInstrument,
    get_registry,
    set_registry,
)
from repro.obs.sinks import (
    SNAPSHOT_SCHEMA_VERSION,
    metrics_snapshot,
    metrics_table,
    to_prometheus,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.spans import Span, SpanTracer, get_tracer, set_tracer, trace_span

__all__ = [
    "CORE_COUNTERS",
    "SERVE_METRICS",
    "STORE_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullInstrument",
    "SNAPSHOT_SCHEMA_VERSION",
    "Span",
    "SpanTracer",
    "declare_core_metrics",
    "disable_observability",
    "enable_observability",
    "get_registry",
    "get_tracer",
    "metrics_snapshot",
    "metrics_table",
    "set_registry",
    "set_tracer",
    "to_prometheus",
    "trace_span",
    "validate_snapshot",
    "write_snapshot",
]

#: Counters every instrumented run reports, pre-declared at zero when
#: observability is enabled so snapshots are schema-stable even for
#: runs that never touch a layer (e.g. an analysis-only experiment
#: with no result cache configured).
CORE_COUNTERS = (
    "engine.cache.hits",
    "engine.cache.misses",
    "engine.cache.writes",
    "engine.cache.corrupt",
    "engine.sim.runs",
    "engine.trace.builds",
)

#: Store-layer series, pre-declared (unlabeled, zero-valued) alongside
#: :data:`CORE_COUNTERS` so a snapshot taken before any traffic still
#: carries every name the store can emit.  Values map name -> kind.
STORE_METRICS = {
    "store.requests": "counter",
    "store.op.latency_s": "histogram",
    "store.shard.latency_s": "histogram",
    "store.replay.chunk_s": "histogram",
    "store.balance": "gauge",
    "store.concentration": "gauge",
    "store.tail_load": "gauge",
    "store.hit_rate": "gauge",
}

#: Serving-layer (`repro.serve`) series, same contract as
#: :data:`STORE_METRICS`.
SERVE_METRICS = {
    "serve.requests": "counter",
    "serve.rejected": "counter",
    "serve.retries": "counter",
    "serve.timeouts": "counter",
    "serve.errors": "counter",
    "serve.dropped": "counter",
    "serve.batches": "counter",
    "serve.latency_s": "histogram",
    "serve.batch_size": "histogram",
    "serve.queue_depth": "gauge",
}


def declare_core_metrics(registry: MetricsRegistry = None) -> None:
    """Materialize the stable snapshot schema on ``registry``:
    :data:`CORE_COUNTERS` plus the :data:`STORE_METRICS` /
    :data:`SERVE_METRICS` series, all at zero."""
    registry = registry or get_registry()
    for name in CORE_COUNTERS:
        registry.counter(name)
    for metrics in (STORE_METRICS, SERVE_METRICS):
        for name, kind in metrics.items():
            getattr(registry, kind)(name)


def enable_observability(clear: bool = True):
    """Enable the process-wide registry and tracer; returns both.

    ``clear`` resets any series/spans accumulated by a previous
    enable, so one CLI run snapshots only its own events.
    """
    registry = get_registry().enable()
    tracer = get_tracer().enable()
    if clear:
        registry.clear()
        tracer.clear()
    declare_core_metrics(registry)
    return registry, tracer


def disable_observability():
    """Disable the process-wide registry and tracer; returns both."""
    return get_registry().disable(), get_tracer().disable()

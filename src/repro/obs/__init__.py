"""`repro.obs` — unified metrics, tracing, journal, and health layer.

One process-wide :class:`MetricsRegistry` (counters, gauges, windowed
p50/p95/p99 histograms, labeled series), one :class:`SpanTracer`
(nested wall-time spans via ``perf_counter``), one append-only event
:class:`~repro.obs.journal.Journal` (JSONL, monotonic sequence
numbers), and pluggable sinks (JSON snapshot, Prometheus text
exposition, human-readable tables).  The engine (:mod:`repro.engine`),
the sharded store (:mod:`repro.store`) and the serving frontend
(:mod:`repro.serve`) report into all three; the health layer
(:mod:`repro.obs.health`) closes the loop — SLO burn-rate alerting and
hash-quality drift detection over the live registry — and
:mod:`repro.obs.dash` renders everything into one dashboard.  See
``docs/observability.md`` for naming conventions and schemas.

Everything starts **disabled** and costs a no-op call on the hot
paths; ``python -m repro.experiments <name> --metrics-out PATH
[--trace] [--journal PATH] [--dash PATH]`` (or
:func:`enable_observability`) switches it on for one run and dumps the
snapshot next to the artifact.
"""

from repro.obs.attrib import (
    CriticalPathAnalyzer,
    FlightRecorder,
    HeavyHitterTracker,
    Stage,
    Trace,
    TraceCollector,
    TraceContext,
    activate,
    current_trace,
    get_collector,
    set_collector,
)
from repro.obs.journal import (
    EVENT_SCHEMA_VERSION,
    Journal,
    JournalEvent,
    disable_journal,
    enable_journal,
    get_journal,
    set_journal,
    validate_event,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL,
    NullInstrument,
    SketchHistogram,
    get_registry,
    set_registry,
)
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.sinks import (
    SNAPSHOT_SCHEMA_VERSION,
    metrics_snapshot,
    metrics_table,
    to_prometheus,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.spans import Span, SpanTracer, get_tracer, set_tracer, trace_span

__all__ = [
    "ADVERSARY_METRICS",
    "CLUSTER_METRICS",
    "CONTROL_METRICS",
    "CORE_COUNTERS",
    "DEFAULT_RELATIVE_ACCURACY",
    "EVENT_SCHEMA_VERSION",
    "FED_METRICS",
    "HEALTH_METRICS",
    "JOURNAL_METRICS",
    "Journal",
    "JournalEvent",
    "OBS_METRICS",
    "QuantileSketch",
    "SERVE_METRICS",
    "STORE_METRICS",
    "Counter",
    "CriticalPathAnalyzer",
    "FlightRecorder",
    "Gauge",
    "HeavyHitterTracker",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullInstrument",
    "SNAPSHOT_SCHEMA_VERSION",
    "SketchHistogram",
    "Span",
    "SpanTracer",
    "Stage",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "activate",
    "current_trace",
    "declare_core_metrics",
    "disable_journal",
    "disable_observability",
    "enable_journal",
    "enable_observability",
    "get_collector",
    "get_journal",
    "get_registry",
    "get_tracer",
    "metrics_snapshot",
    "metrics_table",
    "set_collector",
    "set_journal",
    "set_registry",
    "set_tracer",
    "to_prometheus",
    "trace_span",
    "validate_event",
    "validate_snapshot",
    "write_snapshot",
]

#: Counters every instrumented run reports, pre-declared at zero when
#: observability is enabled so snapshots are schema-stable even for
#: runs that never touch a layer (e.g. an analysis-only experiment
#: with no result cache configured).
CORE_COUNTERS = (
    "engine.cache.hits",
    "engine.cache.misses",
    "engine.cache.writes",
    "engine.cache.corrupt",
    "engine.sim.runs",
    "engine.trace.builds",
)

#: Store-layer series, pre-declared (unlabeled, zero-valued) alongside
#: :data:`CORE_COUNTERS` so a snapshot taken before any traffic still
#: carries every name the store can emit.  Values map name -> kind.
STORE_METRICS = {
    "store.requests": "counter",
    "store.op.latency_s": "histogram",
    "store.shard.latency_s": "histogram",
    "store.replay.chunk_s": "histogram",
    "store.balance": "gauge",
    "store.concentration": "gauge",
    "store.tail_load": "gauge",
    "store.hit_rate": "gauge",
    "store.epoch": "gauge",
    "store.migrated_keys": "counter",
}

#: Serving-layer (`repro.serve`) series, same contract as
#: :data:`STORE_METRICS`.
SERVE_METRICS = {
    "serve.requests": "counter",
    "serve.rejected": "counter",
    "serve.retries": "counter",
    "serve.timeouts": "counter",
    "serve.errors": "counter",
    "serve.dropped": "counter",
    "serve.batches": "counter",
    "serve.latency_s": "histogram",
    "serve.batch_size": "histogram",
    "serve.queue_depth": "gauge",
    "serve.rebinds": "counter",
}

#: Event-journal series (`repro.obs.journal`), same contract.
JOURNAL_METRICS = {
    "journal.events": "counter",
    "journal.rotations": "counter",
}

#: Health-layer series (`repro.obs.health`), same contract.  The
#: labeled `health.burn_rate{slo,window}` / `health.drift.ok{scheme}`
#: series still appear on first evaluation; the unlabeled declarations
#: keep cold and warm snapshots schema-identical.
HEALTH_METRICS = {
    "health.evaluations": "counter",
    "health.alerts": "counter",
    "health.burn_rate": "gauge",
    "health.drift.trips": "counter",
    "health.drift.ok": "gauge",
    "health.adversary.trips": "counter",
    "health.adversary.ok": "gauge",
}

#: Remediation-controller series (`repro.control`), same contract.
#: All unlabeled counters: the controller's identity is the journal's
#: ``control.*`` events; the counters only rate its activity.
CONTROL_METRICS = {
    "control.evaluations": "counter",
    "control.actions": "counter",
    "control.quarantines": "counter",
    "control.reshards": "counter",
    "control.scheme_swaps": "counter",
    "control.node_quarantines": "counter",
    "control.key_rotations": "counter",
}

#: Adversary-subsystem series (`repro.adversary`), same contract.
#: Probe counters rate the attacker's oracle traffic; the gauge holds
#: the last solver verification accuracy per cracked scheme (labeled
#: variants appear on first crack, the unlabeled declaration keeps
#: snapshots schema-stable).
ADVERSARY_METRICS = {
    "adversary.probes": "counter",
    "adversary.conflict_tests": "counter",
    "adversary.cracks": "counter",
    "adversary.hostile_requests": "counter",
    "adversary.recovery_accuracy": "gauge",
}

#: Cluster-tier series (`repro.cluster`), same contract.  The labeled
#: per-node/per-link series (``cluster.node.state{node}``,
#: ``cluster.link.utilization{link}``) still appear on first touch;
#: the unlabeled declarations keep snapshots schema-stable.
CLUSTER_METRICS = {
    "cluster.requests": "counter",
    "cluster.quorum_misses": "counter",
    "cluster.read_repairs": "counter",
    "cluster.replica_errors": "counter",
    "cluster.rereplicated_keys": "counter",
    "cluster.node_failures": "counter",
    "cluster.link.drops": "counter",
    "cluster.node.state": "gauge",
    "cluster.node_balance": "gauge",
    "cluster.link.utilization": "gauge",
    "cluster.op.sim_latency_s": "histogram",
    "cluster.node.request_latency_s": "sketch",
}

#: Attribution-layer series (`repro.obs.attrib`), same contract.
OBS_METRICS = {
    "obs.flight_dumps": "counter",
}

#: Federation-layer series (`repro.obs.fed` + `repro.obs.tsdb`), same
#: contract.  Scrape/merge counters rate the telemetry plane's own
#: traffic; ``fed.node.staleness_s`` holds each node's snapshot age at
#: the last merge (labeled per node on first scrape, the unlabeled
#: declaration keeps snapshots schema-stable).
FED_METRICS = {
    "fed.scrapes": "counter",
    "fed.scrape_misses": "counter",
    "fed.merges": "counter",
    "fed.merge_latency_s": "histogram",
    "fed.tsdb.appends": "counter",
    "fed.tsdb.evictions": "counter",
    "fed.node.staleness_s": "gauge",
}

#: Declaration kind -> registry factory call.  ``"sketch"`` declares a
#: mergeable :class:`SketchHistogram` under the histogram namespace.
_DECLARERS = {
    "counter": lambda registry, name: registry.counter(name),
    "gauge": lambda registry, name: registry.gauge(name),
    "histogram": lambda registry, name: registry.histogram(name),
    "sketch": lambda registry, name: registry.histogram(name, sketch=True),
}


def declare_core_metrics(registry: MetricsRegistry = None) -> None:
    """Materialize the stable snapshot schema on ``registry``:
    :data:`CORE_COUNTERS` plus the :data:`STORE_METRICS` /
    :data:`SERVE_METRICS` / :data:`JOURNAL_METRICS` /
    :data:`HEALTH_METRICS` / :data:`CONTROL_METRICS` /
    :data:`CLUSTER_METRICS` / :data:`ADVERSARY_METRICS` /
    :data:`OBS_METRICS` / :data:`FED_METRICS` series, all at zero."""
    # Explicit None check: an empty registry is falsy (len() == 0), so
    # ``registry or get_registry()`` would silently drop a fresh one.
    if registry is None:
        registry = get_registry()
    for name in CORE_COUNTERS:
        registry.counter(name)
    for metrics in (STORE_METRICS, SERVE_METRICS, JOURNAL_METRICS,
                    HEALTH_METRICS, CONTROL_METRICS, CLUSTER_METRICS,
                    ADVERSARY_METRICS, OBS_METRICS, FED_METRICS):
        for name, kind in metrics.items():
            _DECLARERS[kind](registry, name)


def enable_observability(clear: bool = True):
    """Enable the process-wide registry, tracer, and trace collector;
    returns (registry, tracer).

    ``clear`` resets any series/spans/traces accumulated by a previous
    enable, so one CLI run snapshots only its own events.  The journal
    is separate opt-in (:func:`enable_journal` / ``--journal PATH``)
    because it has a durable on-disk sink, but its metric series are
    declared here so snapshots stay schema-stable either way.
    """
    registry = get_registry().enable()
    tracer = get_tracer().enable()
    collector = get_collector()
    collector.enabled = True
    if clear:
        registry.clear()
        tracer.clear()
        collector.clear()
    declare_core_metrics(registry)
    return registry, tracer


def disable_observability():
    """Disable the process-wide registry, tracer, trace collector, and
    journal; returns (registry, tracer)."""
    disable_journal()
    get_collector().enabled = False
    return get_registry().disable(), get_tracer().disable()

"""Lightweight span tracer: nested wall-time via ``perf_counter``.

Usage::

    with trace_span("materialize", workload="tree"):
        ...

Spans nest per *execution flow*: while a
:class:`repro.obs.attrib.TraceContext` is active (via
``attrib.activate``), parentage attaches to the context's own span
stack — which follows the request across ``await`` boundaries and
executor hops — and only falls back to a per-thread stack otherwise
(the store driver's thread-pool chunks still trace side by side).
Finished roots accumulate on the tracer.  Two export shapes:

* :meth:`SpanTracer.flat` — a flat JSON-friendly list, one dict per
  span with ``depth``/``parent`` indices (the ``spans`` block of the
  snapshot schema in ``docs/observability.md``);
* :meth:`SpanTracer.render` — an indented tree with per-span wall
  times for the terminal (the ``--trace`` output).

Like the metrics registry, the module-level tracer starts disabled and
:func:`trace_span` then returns one shared no-op context manager —
the off path costs a function call and an attribute check, nothing
else.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.attrib import current_trace

__all__ = ["Span", "SpanTracer", "get_tracer", "set_tracer", "trace_span"]


class Span:
    """One timed region; children are spans opened while it was open."""

    __slots__ = ("name", "labels", "start_s", "duration_s", "children",
                 "thread")

    def __init__(self, name: str, labels: Dict[str, Any], start_s: float,
                 thread: str):
        self.name = name
        self.labels = labels
        self.start_s = start_s           # relative to the tracer epoch
        self.duration_s: Optional[float] = None  # None while open
        self.children: List["Span"] = []
        self.thread = thread

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, start={self.start_s:.6f}, "
                f"duration={self.duration_s})")


class _NullSpanContext:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens/closes one span on its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", name: str,
                 labels: Dict[str, Any]):
        self._tracer = tracer
        self._span = tracer._open(name, labels)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False


class SpanTracer:
    """Collects a forest of spans, one stack per thread."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> "SpanTracer":
        self.enabled = True
        return self

    def disable(self) -> "SpanTracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        with self._roots_lock:
            self.roots = []
        self.epoch = time.perf_counter()

    # -- recording -----------------------------------------------------

    def _stack(self) -> List[Span]:
        """The open-span stack for the current execution flow.

        An active :class:`~repro.obs.attrib.TraceContext` owns the
        stack: contextvars give each asyncio task (and each executor
        run the context was activated in) its own view, so two tasks
        interleaving on one worker thread cannot adopt each other's
        spans — the per-thread stack is only the fallback for plain
        threaded code with no trace in flight.
        """
        ctx = current_trace()
        if ctx is not None:
            return ctx.span_stack
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, labels: Dict[str, Any]) -> Span:
        span = Span(name, labels, time.perf_counter() - self.epoch,
                    threading.current_thread().name)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:  # no open parent in this flow: a new root
            with self._roots_lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration_s = (time.perf_counter() - self.epoch) - span.start_s
        stack = self._stack()
        # unwind to this span: exceptions may have skipped inner closes
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()

    def span(self, name: str, **labels: Any):
        """Context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, labels)

    def record(self, name: str, duration_s: float, **labels: Any) -> None:
        """Append one already-measured span as a completed root.

        The context-manager form nests via per-thread stacks, which is
        wrong for asyncio code: concurrent tasks interleave on one
        thread, so a span held across an ``await`` would adopt other
        tasks' spans as children.  Async callers (the serving frontend)
        therefore measure durations themselves and record the finished
        span here; its start time is back-dated so the trace timeline
        stays truthful.  No-op while the tracer is disabled.
        """
        if not self.enabled:
            return
        span = Span(name, labels,
                    time.perf_counter() - self.epoch - duration_s,
                    threading.current_thread().name)
        span.duration_s = duration_s
        with self._roots_lock:
            self.roots.append(span)

    def record_trace(self, trace) -> Optional[Span]:
        """Append a finished :class:`repro.obs.attrib.Trace` as a
        back-dated span tree: one root for the request, one child per
        recorded stage.  This is how a sampled request's causal
        timeline lands in the ``spans`` snapshot block (and the
        dashboard waterfall) without the context-manager nesting that
        async code cannot use.  No-op while disabled."""
        if not self.enabled:
            return None
        start = trace.start_s - self.epoch
        thread = threading.current_thread().name
        root = Span(f"trace.{trace.op}",
                    {"trace_id": trace.trace_id, "scheme": trace.scheme,
                     "status": trace.status}, start, thread)
        root.duration_s = trace.wall_s
        for stage in trace.stages:
            child = Span(f"stage.{stage.name}", dict(stage.detail),
                         start + stage.start_s, thread)
            child.duration_s = stage.duration_s
            root.children.append(child)
        with self._roots_lock:
            self.roots.append(root)
        return root

    # -- export --------------------------------------------------------

    def flat(self) -> List[Dict[str, Any]]:
        """Depth-first flat list; ``parent`` is the parent's list index
        (None for roots) so the JSON round-trips the tree exactly."""
        rows: List[Dict[str, Any]] = []

        def walk(span: Span, depth: int, parent: Optional[int]) -> None:
            index = len(rows)
            rows.append({**span.as_dict(), "depth": depth, "parent": parent})
            for child in span.children:
                walk(child, depth + 1, index)

        with self._roots_lock:
            roots = list(self.roots)
        for root in roots:
            walk(root, 0, None)
        return rows

    def render(self) -> str:
        """Indented tree with wall times, for terminal output."""
        lines: List[str] = []

        def fmt(span: Span) -> str:
            labels = " ".join(f"{k}={v}" for k, v in span.labels.items())
            duration = ("   (open)" if span.duration_s is None
                        else f"  {span.duration_s * 1e3:10.2f} ms")
            return f"{span.name}{' ' + labels if labels else ''}{duration}"

        def walk(span: Span, prefix: str, tail: bool, root: bool) -> None:
            if root:
                lines.append(fmt(span))
                child_prefix = ""
            else:
                lines.append(f"{prefix}{'`- ' if tail else '|- '}{fmt(span)}")
                child_prefix = prefix + ("   " if tail else "|  ")
            for i, child in enumerate(span.children):
                walk(child, child_prefix, i == len(span.children) - 1, False)

        with self._roots_lock:
            roots = list(self.roots)
        for root in roots:
            walk(root, "", True, True)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"SpanTracer({state}, roots={len(self.roots)})"


#: Process-wide default tracer; disabled until observability is on.
_global_tracer = SpanTracer(enabled=False)


def get_tracer() -> SpanTracer:
    """The process-wide tracer (disabled by default)."""
    return _global_tracer


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def trace_span(name: str, **labels: Any):
    """Span on the process-wide tracer (no-op while tracing is off)."""
    return _global_tracer.span(name, **labels)

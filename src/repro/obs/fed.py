"""`repro.obs.fed` — metrics federation: one cluster-wide registry.

Every observability surface below this module is per-process: each
cluster :class:`~repro.cluster.node.StoreNode` owns a private
:class:`~repro.obs.registry.MetricsRegistry` (build the cluster with
``node_registries=True``), and its quantiles describe only the ops it
served.  This module closes the gap in three moves:

1. a :class:`Scraper` pulls versioned snapshot documents from every
   node's ``metrics_snapshot()`` endpoint **over the cluster's own
   virtual-time fabric** — scrape traffic serializes onto the same
   links as data traffic, consumes the same queue budget, and can
   tail-drop like anything else (journaled ``obs.scrape_miss``);
2. an :class:`Aggregator` merges the per-node documents into one
   in-memory registry: counters by sum, gauges by a per-name
   max/min/last policy, sketch-backed histograms by exact sketch
   merge;
3. a :class:`Federation` facade runs scrape → merge on demand,
   publishes its own telemetry (``fed.*`` series, per-node staleness
   gauges), and hands the merged registry to the *unchanged* health
   layer — ``SloEngine``, ``HashQualityDetector`` and
   ``grade_adversary`` evaluate cluster-wide series exactly as they
   evaluate local ones, which is the whole point: pathologies that are
   statistical (skew, collisions — the birthday-paradox regime) are
   only visible in aggregate.

Merge semantics worth knowing:

* **Counters** with the same ``(name, labels)`` identity sum across
  nodes — a cluster-wide rate is the sum of per-node rates.
* **Gauges** follow :data:`GAUGE_POLICIES`: worst-case-wins (``max``)
  for imbalance/concentration/queue-depth style gauges, ``min`` for
  hit rates, freshest-snapshot-wins (``last``) otherwise.
* **Histograms** carrying a sketch merge *exactly* — the merged
  quantile equals the sketch of the concatenated stream, within the
  sketch's relative accuracy.  Sketchless histograms merge summaries
  only (counts and sums add, min/min max/max); their percentiles are
  reported as the per-node maximum, a conservative tail bound, and
  their ``window_values()`` is empty — latency SLOs that must alert
  on federated data should use sketch-kind series.
"""

from __future__ import annotations

import json
import math
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.journal import Journal, get_journal
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
)
from repro.obs.sketch import QuantileSketch

__all__ = [
    "Aggregator",
    "Federation",
    "GAUGE_POLICIES",
    "MergedHistogram",
    "ScrapeResult",
    "Scraper",
    "SCRAPE_REQUEST_BYTES",
]

#: Wire size of a scrape request (a GET to the metrics endpoint).
SCRAPE_REQUEST_BYTES = 64

#: Gauge merge policy by series name; unlisted names default to
#: ``"last"`` (the freshest node's value wins).  Worst-case-wins for
#: the quality gauges the drift detector thresholds — a cluster is as
#: imbalanced as its most imbalanced member — and ``min`` for hit
#: rates, where the weakest node is the operational story.
GAUGE_POLICIES: Dict[str, str] = {
    "store.balance": "max",
    "store.concentration": "max",
    "store.tail_load": "max",
    "store.hit_rate": "min",
    "cluster.node_balance": "max",
    "cluster.link.utilization": "max",
    "serve.queue_depth": "max",
    "health.burn_rate": "max",
}

_LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _identity(row: Mapping[str, Any]) -> _LabelKey:
    return row["name"], tuple(sorted(row.get("labels", {}).items()))


class ScrapeResult:
    """Outcome of one scrape attempt against one node."""

    __slots__ = ("endpoint", "ok", "reason", "doc", "arrival_s")

    def __init__(self, endpoint: str, ok: bool, reason: str = "",
                 doc: Optional[Dict[str, Any]] = None,
                 arrival_s: float = math.nan):
        self.endpoint = endpoint
        self.ok = ok
        self.reason = reason
        self.doc = doc
        self.arrival_s = arrival_s

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"miss:{self.reason}"
        return f"ScrapeResult({self.endpoint!r}, {state})"


class Scraper:
    """Pulls metrics snapshots from scrape targets over a fabric.

    Args:
        fabric: the cluster's :class:`~repro.cluster.interconnect.Fabric`
            — scrapes are fabric round trips from ``source_endpoint``
            and pay serialization, propagation, and queueing like data
            traffic; None models an out-of-band telemetry network
            (scrapes always arrive, cost nothing).
        targets: ``(endpoint_name, source)`` pairs where ``source``
            exposes ``metrics_snapshot()`` (StoreNode, Frontend, or
            anything duck-typing them).
        source_endpoint: fabric endpoint the scraper sits at.
        registry: where the scraper's own ``fed.*`` telemetry lands
            (default: the process-wide registry).
        journal: sink for ``obs.scrape_miss`` events.
    """

    def __init__(self, targets: Sequence[Tuple[str, Any]],
                 fabric: Optional[Any] = None,
                 source_endpoint: str = "frontend",
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None,
                 request_bytes: int = SCRAPE_REQUEST_BYTES):
        self.targets = list(targets)
        self.fabric = fabric
        self.source_endpoint = source_endpoint
        self._registry = registry
        self._journal = journal
        self.request_bytes = request_bytes
        #: endpoint -> (doc, arrival_s) of the last successful scrape;
        #: a miss leaves the previous snapshot in place (stale beats
        #: absent — the staleness gauge carries the caveat).
        self.latest: Dict[str, Tuple[Dict[str, Any], float]] = {}
        #: endpoint -> highest snapshot version accepted (stale
        #: re-deliveries are dropped, not merged backwards).
        self._versions: Dict[str, int] = {}
        #: link name -> virtual seconds of scrape serialization pushed
        #: through it (the <3%-of-capacity overhead accounting).
        self.scrape_busy_s: Dict[str, float] = {}
        self.scrapes = 0
        self.misses = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def journal(self) -> Journal:
        return self._journal if self._journal is not None else get_journal()

    def _charge(self, src: str, dst: str, n_bytes: int) -> None:
        """Attribute one leg's serialization cost to its links."""
        if self.fabric is None or src == dst:
            return
        for link in self.fabric.path(src, dst):
            self.scrape_busy_s[link.name] = (
                self.scrape_busy_s.get(link.name, 0.0)
                + link.serialization_s(n_bytes))

    def _miss(self, endpoint: str, reason: str, now_s: float) -> ScrapeResult:
        self.misses += 1
        self.registry.counter("fed.scrape_misses").inc()
        self.journal.emit("obs.scrape_miss", endpoint=endpoint,
                          reason=reason, now_s=now_s)
        return ScrapeResult(endpoint, ok=False, reason=reason)

    def scrape(self, now_s: float = 0.0) -> List[ScrapeResult]:
        """One scrape sweep over every target at virtual time ``now_s``.

        Returns one :class:`ScrapeResult` per target.  Down nodes and
        fabric tail-drops are misses (journaled); the previous
        snapshot, if any, stays in :attr:`latest` and its growing age
        is what :meth:`Federation.collect` reports as staleness.
        """
        results: List[ScrapeResult] = []
        for endpoint, source in self.targets:
            try:
                doc = source.metrics_snapshot()
            except Exception as exc:
                results.append(self._miss(endpoint, type(exc).__name__,
                                          now_s))
                continue
            response_bytes = len(json.dumps(doc, default=str))
            arrival = now_s
            if self.fabric is not None:
                self._charge(self.source_endpoint, endpoint,
                             self.request_bytes)
                self._charge(endpoint, self.source_endpoint, response_bytes)
                arrival = self.fabric.round_trip(
                    self.source_endpoint, endpoint, self.request_bytes,
                    response_bytes, now_s)
                if arrival is None:
                    results.append(self._miss(endpoint, "drop", now_s))
                    continue
            version = int(doc.get("fed", {}).get("version", 0))
            if version and version <= self._versions.get(endpoint, 0):
                results.append(self._miss(endpoint, "stale_version", now_s))
                continue
            self._versions[endpoint] = version
            self.latest[endpoint] = (doc, arrival)
            self.scrapes += 1
            self.registry.counter("fed.scrapes").inc()
            results.append(ScrapeResult(endpoint, ok=True, doc=doc,
                                        arrival_s=arrival))
        return results

    def scrape_utilization(self, elapsed_s: float) -> float:
        """Worst per-link fraction of ``elapsed_s`` spent serializing
        scrape traffic — the headline "telemetry overhead" number the
        federation drill holds under 3% of fabric capacity."""
        if elapsed_s <= 0 or not self.scrape_busy_s:
            return 0.0
        return min(1.0, max(self.scrape_busy_s.values()) / elapsed_s)


class MergedHistogram:
    """A histogram reconstructed from one or more snapshot rows.

    Sketch-backed rows merge exactly: quantiles come from the merged
    :class:`QuantileSketch` and ``window_values()`` reconstructs
    per-observation representatives, so the SLO engine's threshold
    counting works on federated data unchanged.  Sketchless rows merge
    summaries only — percentiles report the per-node maximum (a
    conservative tail bound) and the window is empty.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sketch: Optional[QuantileSketch] = None
        self._summary_quantiles: Dict[str, float] = {}
        self._sources = 0

    def absorb(self, row: Mapping[str, Any]) -> None:
        """Fold one snapshot histogram row into the merge."""
        self._sources += 1
        self.count += int(row.get("count", 0))
        self.total += float(row.get("sum", 0.0))
        for field, op in (("min", min), ("max", max)):
            value = row.get(field)
            if value is not None and not (isinstance(value, float)
                                          and math.isnan(value)):
                current = getattr(self, field)
                setattr(self, field, op(current, float(value)))
        payload = row.get("sketch")
        if payload is not None:
            incoming = QuantileSketch.from_dict(payload)
            if self.sketch is None:
                self.sketch = QuantileSketch(incoming.relative_accuracy)
            self.sketch.merge(incoming)
        else:
            for q in ("p50", "p95", "p99"):
                value = row.get(q)
                if value is None or (isinstance(value, float)
                                     and math.isnan(value)):
                    continue
                self._summary_quantiles[q] = max(
                    self._summary_quantiles.get(q, -math.inf), float(value))

    @property
    def mergeable(self) -> bool:
        """True when every absorbed row carried a sketch."""
        return self.sketch is not None

    def percentile(self, q: float) -> float:
        if self.sketch is not None:
            return self.sketch.percentile(q)
        key = f"p{int(q)}"
        return self._summary_quantiles.get(key, math.nan)

    def window_values(self) -> List[float]:
        if self.sketch is None:
            return []
        return self.sketch.reconstruct()

    def exemplars(self, n: int = 4) -> List[Dict[str, Any]]:
        return []

    def summary(self) -> Dict[str, Any]:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
            "mean": math.nan if empty else self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "window": self.count if self.sketch is not None else 0,
        }

    def as_dict(self) -> Dict[str, Any]:
        payload = {"name": self.name, "labels": dict(self.labels),
                   **self.summary(), "exemplars": []}
        if self.sketch is not None:
            payload["sketch"] = self.sketch.as_dict()
        return payload

    def __repr__(self) -> str:
        backing = "sketch" if self.sketch is not None else "summary"
        return (f"MergedHistogram({self.name!r}, {self.labels}, "
                f"count={self.count}, {backing}, nodes={self._sources})")


class Aggregator:
    """Merges per-node snapshot documents into one registry."""

    def __init__(self, gauge_policies: Optional[Mapping[str, str]] = None):
        self.gauge_policies = dict(GAUGE_POLICIES)
        if gauge_policies:
            self.gauge_policies.update(gauge_policies)

    def merge(self, docs: Sequence[Mapping[str, Any]]) -> MetricsRegistry:
        """One cluster-wide registry from per-node snapshot documents.

        ``docs`` should be ordered oldest-first when it matters: the
        ``last`` gauge policy takes the value from the latest document
        that carries the series.
        """
        merged = MetricsRegistry(enabled=True)
        counters: Dict[_LabelKey, Counter] = {}
        gauges: Dict[_LabelKey, Gauge] = {}
        histograms: Dict[_LabelKey, MergedHistogram] = {}
        for doc in docs:
            metrics = doc.get("metrics", doc)
            for row in metrics.get("counters", ()):
                key = _identity(row)
                counter = counters.get(key)
                if counter is None:
                    counter = Counter(row["name"],
                                      dict(row.get("labels", {})))
                    counters[key] = counter
                counter.value += row.get("value", 0)
            for row in metrics.get("gauges", ()):
                key = _identity(row)
                policy = self.gauge_policies.get(row["name"], "last")
                value = float(row.get("value", 0.0))
                gauge = gauges.get(key)
                if gauge is None:
                    gauge = Gauge(row["name"], dict(row.get("labels", {})))
                    gauge.value = value
                    gauges[key] = gauge
                elif policy == "max":
                    gauge.value = max(gauge.value, value)
                elif policy == "min":
                    gauge.value = min(gauge.value, value)
                else:
                    gauge.value = value
            for row in metrics.get("histograms", ()):
                key = _identity(row)
                histogram = histograms.get(key)
                if histogram is None:
                    histogram = MergedHistogram(
                        row["name"], dict(row.get("labels", {})))
                    histograms[key] = histogram
                histogram.absorb(row)
        for table in (counters, gauges, histograms):
            for instrument in table.values():
                merged.adopt(instrument)
        return merged


class Federation:
    """Scrape → merge facade producing the cluster-wide registry.

    Usage::

        cluster = Cluster(n_nodes=5, node_registries=True, ...)
        fed = Federation.for_cluster(cluster)
        merged = fed.collect(cluster.virtual_now_s)
        SloEngine(default_slos(), registry=merged).evaluate()

    Every :meth:`collect` publishes the federation's own telemetry
    (``fed.merges``, ``fed.merge_latency_s``, per-node
    ``fed.node.staleness_s``) on the *local* registry, never on the
    merged output — the telemetry plane reports on itself in its own
    process, like any other layer.
    """

    def __init__(self, scraper: Scraper,
                 aggregator: Optional[Aggregator] = None,
                 registry: Optional[MetricsRegistry] = None,
                 journal: Optional[Journal] = None):
        self.scraper = scraper
        self.aggregator = aggregator or Aggregator()
        self._registry = registry
        self._journal = journal
        self.merged: Optional[MetricsRegistry] = None
        self.merges = 0

    @classmethod
    def for_cluster(cls, cluster,
                    registry: Optional[MetricsRegistry] = None,
                    journal: Optional[Journal] = None,
                    out_of_band: bool = False) -> "Federation":
        """Federation over every node of a ``node_registries=True``
        cluster, scraping across its fabric (or out-of-band)."""
        from repro.cluster.interconnect import node_endpoint
        targets = [(node_endpoint(node.node_id), node)
                   for node in cluster.nodes]
        scraper = Scraper(targets,
                          fabric=None if out_of_band else cluster.fabric,
                          registry=registry, journal=journal)
        return cls(scraper, registry=registry, journal=journal)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def collect(self, now_s: float = 0.0) -> MetricsRegistry:
        """Scrape every target and merge: the cluster-wide registry.

        Nodes that missed this sweep contribute their last good
        snapshot (if any); each node's ``fed.node.staleness_s`` gauge
        reports how old the merged-in document is at ``now_s``.
        """
        registry = self.registry
        self.scraper.scrape(now_s)
        started = perf_counter()
        docs = []
        for endpoint, (doc, arrival_s) in sorted(
                self.scraper.latest.items()):
            docs.append(doc)
            staleness = max(0.0, now_s - arrival_s)
            registry.gauge("fed.node.staleness_s",
                           node=str(endpoint)).set(staleness)
        self.merged = self.aggregator.merge(docs)
        elapsed = perf_counter() - started
        self.merges += 1
        registry.counter("fed.merges").inc()
        registry.histogram("fed.merge_latency_s").observe(elapsed)
        return self.merged

    def merged_sketch(self, name: str, **labels: Any) -> QuantileSketch:
        """The exact cluster-wide sketch for ``name``: every matching
        sketch-backed series in the merged registry, merged again
        across its label variants (e.g. per-node series pooled into
        one distribution)."""
        if self.merged is None:
            raise RuntimeError("collect() has not produced a merge yet")
        sketches = [instrument.sketch
                    for instrument in self.merged.matching(name, **labels)
                    if getattr(instrument, "sketch", None) is not None]
        if not sketches:
            raise KeyError(f"no sketch-backed series named {name!r} "
                           f"with labels {labels} in the merged registry")
        return QuantileSketch.merged(sketches)

    def quantile(self, name: str, q: float, **labels: Any) -> float:
        """Cluster-wide quantile (``q`` in [0, 100]) for ``name``."""
        return self.merged_sketch(name, **labels).percentile(q)

    def scrape_utilization(self, elapsed_s: float) -> float:
        return self.scraper.scrape_utilization(elapsed_s)

    def __repr__(self) -> str:
        return (f"Federation(targets={len(self.scraper.targets)}, "
                f"merges={self.merges})")

"""Bench-regression gating over the repo's ``BENCH_*.json`` outputs.

The benchmarks write machine-readable results at the repo root
(``BENCH_fastsim.json``, ``BENCH_store.json``, ``BENCH_serve.json``,
``BENCH_obs.json``); nothing watched them, so a change that halved
fastsim throughput would ship as long as tests stayed green.  This
module closes that gap:

* :func:`load_bench_files` reads every ``BENCH_*.json`` under a root;
* :func:`extract_metrics` pulls each file's *gated metrics* (the
  headline numbers worth regressing on) via :data:`BENCH_METRICS` —
  each with a direction (``lower``-is-better time or
  ``higher``-is-better throughput);
* a small history file (:data:`DEFAULT_HISTORY_NAME`, bounded to
  :data:`MAX_HISTORY_ENTRIES` runs) accumulates one metrics row per
  accepted run;
* :func:`check` compares the current value against the **median of the
  historical runs** and flags a regression only when the shortfall
  exceeds a **noise floor** — median-of-repeats because a single prior
  run is as noisy as the current one, and a floor because wall-clock
  benchmarks on shared machines jitter; the gate must measure signal.

``make bench-check`` runs :func:`main`: regressions exit nonzero and
leave the history untouched; a clean run appends itself so the
trajectory grows.  A metric with fewer than :data:`MIN_HISTORY_RUNS`
historical samples is recorded but not yet gated (a median of one run
is not a baseline).
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "BENCH_METRICS",
    "DEFAULT_HISTORY_NAME",
    "DEFAULT_NOISE_FLOOR",
    "HISTORY_SCHEMA_VERSION",
    "Regression",
    "append_history",
    "check",
    "extract_metrics",
    "load_bench_files",
    "load_history",
    "metric_trajectories",
    "main",
]

#: History document version; bump on incompatible change.
HISTORY_SCHEMA_VERSION = 1

#: Default history file name, kept next to the BENCH_*.json files.
DEFAULT_HISTORY_NAME = "BENCH_history.json"

#: Relative shortfall vs the historical median below which a
#: difference is treated as scheduler/thermal noise, not regression.
DEFAULT_NOISE_FLOOR = 0.25

#: History entries retained (newest last).
MAX_HISTORY_ENTRIES = 40

#: Historical samples a metric needs before it is gated.
MIN_HISTORY_RUNS = 2

#: Gated metrics per bench document (keyed by the file's ``bench``
#: field): (metric name, path into the document, direction).
BENCH_METRICS: Dict[str, Tuple[Tuple[str, Tuple[str, ...], str], ...]] = {
    "fastsim_speedup": (
        ("vectorized_s", ("vectorized_s",), "lower"),
        ("speedup", ("speedup",), "higher"),
    ),
    "obs_overhead": (
        ("disabled_s", ("disabled_s",), "lower"),
        # Absolute traced time, not the overhead fraction: the paired
        # medians sit near zero, where a ratio's relative shortfall is
        # meaningless and the gate would silently skip.
        ("traced_s", ("traced_s",), "lower"),
    ),
    "store_sharding": (
        ("zipfian_pmod_throughput_rps",
         ("patterns", "zipfian", "pmod", "throughput_rps"), "higher"),
        ("strided_pmod_throughput_rps",
         ("patterns", "strided", "pmod", "throughput_rps"), "higher"),
    ),
    "serve": (
        ("closed_loop_throughput_rps",
         ("closed_loop", "throughput_rps"), "higher"),
        ("open_pmod_p99_s",
         ("open_loop", "schemes", "pmod", "latency", "p99"), "lower"),
    ),
    "reshard": (
        ("migrate_keys_per_s", ("migrate_keys_per_s",), "higher"),
        ("pmod_during_reshard_rps",
         ("schemes", "pmod", "during_rps"), "higher"),
    ),
    "cluster": (
        ("cluster_rps", ("cluster_rps",), "higher"),
        ("rereplicate_keys_per_s", ("rereplicate_keys_per_s",), "higher"),
        ("pmod_stack_loss_p99_s",
         ("stacks", "pmod+pmod", "during_loss_p99_s"), "lower"),
    ),
    "adversary": (
        # Probe counts are deterministic; "higher" = harder to crack.
        ("pmod_probes_to_crack",
         ("probes_to_crack", "pmod"), "higher"),
        ("pdisp_probes_to_crack",
         ("probes_to_crack", "pdisp"), "higher"),
        ("probe_factor", ("probe_factor",), "higher"),
        ("time_to_mitigate_s", ("time_to_mitigate_s",), "lower"),
    ),
}


@dataclass(frozen=True)
class Regression:
    """One gated metric that fell outside the noise floor."""

    metric: str  #: "<bench>.<metric>"
    direction: str
    current: float
    median: float
    delta_frac: float  #: relative shortfall (positive = worse)
    noise_floor: float
    runs: int  #: historical samples behind the median

    def describe(self) -> str:
        arrow = "slower" if self.direction == "lower" else "lower"
        return (f"{self.metric}: {self.current:.6g} vs median "
                f"{self.median:.6g} over {self.runs} runs — "
                f"{self.delta_frac * 100:.1f}% {arrow} "
                f"(noise floor {self.noise_floor * 100:.0f}%)")


def load_bench_files(root: Union[str, os.PathLike]) -> Dict[str, Dict]:
    """Every readable ``BENCH_*.json`` under ``root``, keyed by its
    ``bench`` field (unreadable or unnamed files are skipped — a
    missing bench is not a regression, it is just not gated)."""
    docs: Dict[str, Dict] = {}
    for path in sorted(Path(root).glob("BENCH_*.json")):
        if path.name == DEFAULT_HISTORY_NAME:
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = doc.get("bench")
        if isinstance(name, str) and name:
            docs[name] = doc
    return docs


def _resolve(doc: Mapping, path: Tuple[str, ...]) -> Optional[float]:
    node: Any = doc
    for part in path:
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        return float(node)
    return None


def extract_metrics(doc: Mapping) -> List[Tuple[str, float, str]]:
    """The gated (metric, value, direction) triples in ``doc``."""
    rows: List[Tuple[str, float, str]] = []
    for metric, path, direction in BENCH_METRICS.get(doc.get("bench"), ()):
        value = _resolve(doc, path)
        if value is not None:
            rows.append((metric, value, direction))
    return rows


def current_metrics(root: Union[str, os.PathLike]) -> Dict[str, Tuple[float, str]]:
    """``"<bench>.<metric>" -> (value, direction)`` for every bench
    file under ``root``."""
    out: Dict[str, Tuple[float, str]] = {}
    for name, doc in load_bench_files(root).items():
        for metric, value, direction in extract_metrics(doc):
            out[f"{name}.{metric}"] = (value, direction)
    return out


# -- history -----------------------------------------------------------


def load_history(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """The history document at ``path`` (a fresh empty one if absent
    or unreadable — a corrupt history resets the trajectory rather
    than blocking the gate)."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema_version": HISTORY_SCHEMA_VERSION, "entries": []}
    if (not isinstance(doc, dict)
            or doc.get("schema_version") != HISTORY_SCHEMA_VERSION
            or not isinstance(doc.get("entries"), list)):
        return {"schema_version": HISTORY_SCHEMA_VERSION, "entries": []}
    return doc


def append_history(history: Dict[str, Any],
                   metrics: Mapping[str, Tuple[float, str]]) -> Dict[str, Any]:
    """Append one run's metrics; trims to :data:`MAX_HISTORY_ENTRIES`."""
    entry = {
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "metrics": {name: value for name, (value, _) in sorted(
            metrics.items())},
    }
    history["entries"] = (history["entries"] + [entry])[-MAX_HISTORY_ENTRIES:]
    return history


def write_history(path: Union[str, os.PathLike],
                  history: Mapping[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(history, indent=1) + "\n")
    return path


def metric_trajectories(history: Mapping[str, Any]) -> Dict[str, List[float]]:
    """Per-metric value series across history entries, oldest first."""
    series: Dict[str, List[float]] = {}
    for entry in history.get("entries", []):
        for name, value in entry.get("metrics", {}).items():
            if isinstance(value, (int, float)):
                series.setdefault(name, []).append(float(value))
    return series


# -- the gate ----------------------------------------------------------


def check(metrics: Mapping[str, Tuple[float, str]],
          history: Mapping[str, Any],
          noise_floor: float = DEFAULT_NOISE_FLOOR) -> List[Regression]:
    """Regressions of ``metrics`` against the history medians.

    A metric regresses when its relative shortfall against the median
    of its historical samples exceeds ``noise_floor`` in the *bad*
    direction (slower for ``lower``-is-better, less for ``higher``).
    Improvements never flag, and metrics with fewer than
    :data:`MIN_HISTORY_RUNS` samples are not yet gated.
    """
    trajectories = metric_trajectories(history)
    regressions: List[Regression] = []
    for name, (value, direction) in sorted(metrics.items()):
        samples = trajectories.get(name, [])
        if len(samples) < MIN_HISTORY_RUNS:
            continue
        median = statistics.median(samples)
        if median == 0:
            continue
        if direction == "lower":
            delta = (value - median) / abs(median)
        else:
            delta = (median - value) / abs(median)
        if delta > noise_floor:
            regressions.append(Regression(
                metric=name, direction=direction, current=value,
                median=median, delta_frac=delta, noise_floor=noise_floor,
                runs=len(samples)))
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json against the recorded trajectory.")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="directory holding BENCH_*.json (default .)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help=f"history file (default "
                             f"<root>/{DEFAULT_HISTORY_NAME})")
    parser.add_argument("--noise-floor", type=float,
                        default=DEFAULT_NOISE_FLOOR, metavar="FRAC",
                        help="relative shortfall treated as noise "
                             f"(default {DEFAULT_NOISE_FLOOR})")
    parser.add_argument("--no-update", action="store_true",
                        help="check only; do not append a clean run "
                             "to the history")
    args = parser.parse_args(argv)
    history_path = (Path(args.history) if args.history
                    else Path(args.root) / DEFAULT_HISTORY_NAME)
    metrics = current_metrics(args.root)
    if not metrics:
        print(f"benchguard: no BENCH_*.json under {args.root}; "
              "nothing to gate")
        return 0
    history = load_history(history_path)
    regressions = check(metrics, history, noise_floor=args.noise_floor)
    trajectories = metric_trajectories(history)
    for name, (value, direction) in sorted(metrics.items()):
        runs = len(trajectories.get(name, []))
        gated = "gated" if runs >= MIN_HISTORY_RUNS else (
            f"recording ({runs}/{MIN_HISTORY_RUNS} runs)")
        print(f"  {name:<45} {value:>12.6g}  "
              f"({'lower' if direction == 'lower' else 'higher'} is "
              f"better, {gated})")
    if regressions:
        print(f"benchguard: {len(regressions)} regression(s):",
              file=sys.stderr)
        for regression in regressions:
            print(f"  REGRESSION {regression.describe()}", file=sys.stderr)
        print("history left untouched; investigate before re-baselining.",
              file=sys.stderr)
        return 1
    if not args.no_update:
        write_history(history_path, append_history(history, metrics))
        print(f"benchguard: ok — run appended to {history_path} "
              f"({len(load_history(history_path)['entries'])} entries)")
    else:
        print("benchguard: ok (history not updated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

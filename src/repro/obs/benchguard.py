"""Bench-regression gating over the repo's ``BENCH_*.json`` outputs.

The benchmarks write machine-readable results at the repo root
(``BENCH_fastsim.json``, ``BENCH_store.json``, ``BENCH_serve.json``,
``BENCH_obs.json``); nothing watched them, so a change that halved
fastsim throughput would ship as long as tests stayed green.  This
module closes that gap:

* :func:`load_bench_files` reads every ``BENCH_*.json`` under a root;
* :func:`extract_metrics` pulls each file's *gated metrics* (the
  headline numbers worth regressing on) via :data:`BENCH_METRICS` —
  each with a direction (``lower``-is-better time or
  ``higher``-is-better throughput);
* a small history file (:data:`DEFAULT_HISTORY_NAME`, bounded to
  :data:`MAX_HISTORY_ENTRIES` runs) accumulates one metrics row per
  accepted run;
* :func:`check` compares the current value against the **median of the
  historical runs** and flags a regression only when the shortfall
  exceeds a **noise floor** — median-of-repeats because a single prior
  run is as noisy as the current one, and a floor because wall-clock
  benchmarks on shared machines jitter; the gate must measure signal.

``make bench-check`` runs :func:`main`: regressions exit nonzero and
leave the history untouched; a clean run appends itself so the
trajectory grows.  A metric with fewer than :data:`MIN_HISTORY_RUNS`
historical samples is recorded but not yet gated (a median of one run
is not a baseline).

On top of the median gate sits a **trend pass**: a median compares one
run against the middle of history and therefore cannot see a slow
bleed — five consecutive 2% steps never clear a 25% noise floor, yet
they are a 10% regression with an unmistakable direction.
:func:`trend_check` runs a Mann-Kendall monotonic-trend test over each
metric's full history series (non-parametric: it counts concordant
pairs, so one noisy spike cannot fake or mask a trend) and fits a
Theil-Sen slope (the median of pairwise slopes — same robustness
story) to report *how fast* the metric is moving.  A metric trips when
the trend is statistically significant (``|z| >=`` 1.645, one-sided
95%), points in the bad direction, and the fitted slope exceeds
:data:`TREND_SLOPE_FLOOR` per run relative to the series median —
direction alone is not a page if the drift is microscopic.
``make bench-trend`` prints the fitted slope table for every series so
the raw-speed push has a visible trajectory between gates.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "BENCH_METRICS",
    "DEFAULT_HISTORY_NAME",
    "DEFAULT_NOISE_FLOOR",
    "HISTORY_SCHEMA_VERSION",
    "MIN_TREND_RUNS",
    "Regression",
    "TREND_SLOPE_FLOOR",
    "TREND_Z_THRESHOLD",
    "TrendAlert",
    "append_history",
    "check",
    "extract_metrics",
    "load_bench_files",
    "load_history",
    "mann_kendall",
    "metric_directions",
    "metric_trajectories",
    "main",
    "theil_sen_slope",
    "trend_check",
    "trend_table",
]

#: History document version; bump on incompatible change.
HISTORY_SCHEMA_VERSION = 1

#: Default history file name, kept next to the BENCH_*.json files.
DEFAULT_HISTORY_NAME = "BENCH_history.json"

#: Relative shortfall vs the historical median below which a
#: difference is treated as scheduler/thermal noise, not regression.
DEFAULT_NOISE_FLOOR = 0.25

#: History entries retained (newest last).
MAX_HISTORY_ENTRIES = 40

#: Historical samples a metric needs before it is gated.
MIN_HISTORY_RUNS = 2

#: History entries a series needs before the trend pass judges it
#: (Mann-Kendall below 5 points has no meaningful significance).
MIN_TREND_RUNS = 5

#: One-sided 95% normal quantile: |z| at or above this is a
#: statistically significant monotonic trend.
TREND_Z_THRESHOLD = 1.645

#: Minimum fitted Theil-Sen slope, as a fraction of the series median
#: *per run*, for a significant bad-direction trend to trip — a real
#: but microscopic drift is a table row, not a failed gate.
TREND_SLOPE_FLOOR = 0.01

#: Gated metrics per bench document (keyed by the file's ``bench``
#: field): (metric name, path into the document, direction).
BENCH_METRICS: Dict[str, Tuple[Tuple[str, Tuple[str, ...], str], ...]] = {
    "fastsim_speedup": (
        ("vectorized_s", ("vectorized_s",), "lower"),
        ("speedup", ("speedup",), "higher"),
    ),
    "obs_overhead": (
        ("disabled_s", ("disabled_s",), "lower"),
        # Absolute traced time, not the overhead fraction: the paired
        # medians sit near zero, where a ratio's relative shortfall is
        # meaningless and the gate would silently skip.
        ("traced_s", ("traced_s",), "lower"),
    ),
    "store_sharding": (
        ("zipfian_pmod_throughput_rps",
         ("patterns", "zipfian", "pmod", "throughput_rps"), "higher"),
        ("strided_pmod_throughput_rps",
         ("patterns", "strided", "pmod", "throughput_rps"), "higher"),
    ),
    "serve": (
        ("closed_loop_throughput_rps",
         ("closed_loop", "throughput_rps"), "higher"),
        ("open_pmod_p99_s",
         ("open_loop", "schemes", "pmod", "latency", "p99"), "lower"),
    ),
    "reshard": (
        ("migrate_keys_per_s", ("migrate_keys_per_s",), "higher"),
        ("pmod_during_reshard_rps",
         ("schemes", "pmod", "during_rps"), "higher"),
    ),
    "cluster": (
        ("cluster_rps", ("cluster_rps",), "higher"),
        ("rereplicate_keys_per_s", ("rereplicate_keys_per_s",), "higher"),
        ("pmod_stack_loss_p99_s",
         ("stacks", "pmod+pmod", "during_loss_p99_s"), "lower"),
    ),
    "adversary": (
        # Probe counts are deterministic; "higher" = harder to crack.
        ("pmod_probes_to_crack",
         ("probes_to_crack", "pmod"), "higher"),
        ("pdisp_probes_to_crack",
         ("probes_to_crack", "pdisp"), "higher"),
        ("probe_factor", ("probe_factor",), "higher"),
        ("time_to_mitigate_s", ("time_to_mitigate_s",), "lower"),
    ),
    "fed": (
        ("scrape_rps", ("scrape_rps",), "higher"),
        ("merge_ns_per_series", ("merge_ns_per_series",), "lower"),
        ("tsdb_append_rps", ("tsdb_append_rps",), "higher"),
    ),
}


def metric_directions() -> Dict[str, str]:
    """``"<bench>.<metric>" -> direction`` for every gated metric —
    the map the trend pass uses to decide which way is "worse"."""
    return {f"{bench}.{metric}": direction
            for bench, rows in BENCH_METRICS.items()
            for metric, _, direction in rows}


@dataclass(frozen=True)
class Regression:
    """One gated metric that fell outside the noise floor."""

    metric: str  #: "<bench>.<metric>"
    direction: str
    current: float
    median: float
    delta_frac: float  #: relative shortfall (positive = worse)
    noise_floor: float
    runs: int  #: historical samples behind the median

    def describe(self) -> str:
        arrow = "slower" if self.direction == "lower" else "lower"
        return (f"{self.metric}: {self.current:.6g} vs median "
                f"{self.median:.6g} over {self.runs} runs — "
                f"{self.delta_frac * 100:.1f}% {arrow} "
                f"(noise floor {self.noise_floor * 100:.0f}%)")


def load_bench_files(root: Union[str, os.PathLike]) -> Dict[str, Dict]:
    """Every readable ``BENCH_*.json`` under ``root``, keyed by its
    ``bench`` field (unreadable or unnamed files are skipped — a
    missing bench is not a regression, it is just not gated)."""
    docs: Dict[str, Dict] = {}
    for path in sorted(Path(root).glob("BENCH_*.json")):
        if path.name == DEFAULT_HISTORY_NAME:
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = doc.get("bench")
        if isinstance(name, str) and name:
            docs[name] = doc
    return docs


def _resolve(doc: Mapping, path: Tuple[str, ...]) -> Optional[float]:
    node: Any = doc
    for part in path:
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        return float(node)
    return None


def extract_metrics(doc: Mapping) -> List[Tuple[str, float, str]]:
    """The gated (metric, value, direction) triples in ``doc``."""
    rows: List[Tuple[str, float, str]] = []
    for metric, path, direction in BENCH_METRICS.get(doc.get("bench"), ()):
        value = _resolve(doc, path)
        if value is not None:
            rows.append((metric, value, direction))
    return rows


def current_metrics(root: Union[str, os.PathLike]) -> Dict[str, Tuple[float, str]]:
    """``"<bench>.<metric>" -> (value, direction)`` for every bench
    file under ``root``."""
    out: Dict[str, Tuple[float, str]] = {}
    for name, doc in load_bench_files(root).items():
        for metric, value, direction in extract_metrics(doc):
            out[f"{name}.{metric}"] = (value, direction)
    return out


# -- history -----------------------------------------------------------


def load_history(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """The history document at ``path`` (a fresh empty one if absent
    or unreadable — a corrupt history resets the trajectory rather
    than blocking the gate)."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema_version": HISTORY_SCHEMA_VERSION, "entries": []}
    if (not isinstance(doc, dict)
            or doc.get("schema_version") != HISTORY_SCHEMA_VERSION
            or not isinstance(doc.get("entries"), list)):
        return {"schema_version": HISTORY_SCHEMA_VERSION, "entries": []}
    return doc


def append_history(history: Dict[str, Any],
                   metrics: Mapping[str, Tuple[float, str]]) -> Dict[str, Any]:
    """Append one run's metrics; trims to :data:`MAX_HISTORY_ENTRIES`."""
    entry = {
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "metrics": {name: value for name, (value, _) in sorted(
            metrics.items())},
    }
    history["entries"] = (history["entries"] + [entry])[-MAX_HISTORY_ENTRIES:]
    return history


def write_history(path: Union[str, os.PathLike],
                  history: Mapping[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(history, indent=1) + "\n")
    return path


def metric_trajectories(history: Mapping[str, Any]) -> Dict[str, List[float]]:
    """Per-metric value series across history entries, oldest first."""
    series: Dict[str, List[float]] = {}
    for entry in history.get("entries", []):
        for name, value in entry.get("metrics", {}).items():
            if isinstance(value, (int, float)):
                series.setdefault(name, []).append(float(value))
    return series


# -- trend detection ---------------------------------------------------


def theil_sen_slope(values: Sequence[float]) -> float:
    """Theil-Sen estimator: the median of all pairwise slopes.

    Run index is the x-axis, so the result reads "units per run".
    Robust to outliers (breakdown point ~29%): one bad benchmark run
    shifts a handful of pairwise slopes, not the median of them.
    """
    n = len(values)
    if n < 2:
        return 0.0
    slopes = [(values[j] - values[i]) / (j - i)
              for i in range(n) for j in range(i + 1, n)]
    return statistics.median(slopes)


def mann_kendall(values: Sequence[float]) -> Tuple[int, float]:
    """Mann-Kendall monotonic-trend test: ``(S, z)``.

    ``S`` counts concordant minus discordant pairs; ``z`` is the
    continuity-corrected normal approximation with tie-corrected
    variance, positive for an upward trend.  Non-parametric — it sees
    only sign(later - earlier), so it detects "keeps drifting down"
    without assuming linearity or any noise distribution.
    """
    n = len(values)
    if n < 2:
        return 0, 0.0
    s = 0
    for i in range(n):
        for j in range(i + 1, n):
            diff = values[j] - values[i]
            s += (diff > 0) - (diff < 0)
    counts: Dict[float, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    var = (n * (n - 1) * (2 * n + 5)
           - sum(t * (t - 1) * (2 * t + 5) for t in counts.values())) / 18.0
    if var <= 0:
        return s, 0.0
    if s > 0:
        z = (s - 1) / var ** 0.5
    elif s < 0:
        z = (s + 1) / var ** 0.5
    else:
        z = 0.0
    return s, z


@dataclass(frozen=True)
class TrendAlert:
    """One metric with a significant trend in the bad direction."""

    metric: str  #: "<bench>.<metric>"
    direction: str  #: which way is *better* for this metric
    slope_per_run: float  #: fitted Theil-Sen slope (units per run)
    slope_frac_per_run: float  #: slope relative to the series median
    z: float  #: Mann-Kendall z statistic (sign = trend direction)
    s: int  #: Mann-Kendall S statistic
    runs: int

    def describe(self) -> str:
        way = "falling" if self.slope_per_run < 0 else "rising"
        return (f"{self.metric}: {way} "
                f"{abs(self.slope_frac_per_run) * 100:.2f}%/run over "
                f"{self.runs} runs (Theil-Sen {self.slope_per_run:+.6g}, "
                f"Mann-Kendall z={self.z:+.2f}) — '{self.direction}' is "
                f"better")


def trend_check(history: Mapping[str, Any],
                directions: Optional[Mapping[str, str]] = None,
                z_threshold: float = TREND_Z_THRESHOLD,
                slope_floor: float = TREND_SLOPE_FLOOR,
                min_runs: int = MIN_TREND_RUNS) -> List[TrendAlert]:
    """Significant bad-direction trends across the history series.

    A metric trips only when all three hold: the Mann-Kendall trend is
    significant (``|z| >= z_threshold``), it points the *bad* way for
    the metric's direction, and the Theil-Sen slope exceeds
    ``slope_floor`` of the series median per run.  Metrics with no
    recorded direction (no longer gated) and series shorter than
    ``min_runs`` are skipped.
    """
    if directions is None:
        directions = metric_directions()
    alerts: List[TrendAlert] = []
    for name, series in sorted(metric_trajectories(history).items()):
        direction = directions.get(name)
        if direction is None or len(series) < min_runs:
            continue
        s, z = mann_kendall(series)
        if abs(z) < z_threshold:
            continue
        bad_trend = z < 0 if direction == "higher" else z > 0
        if not bad_trend:
            continue
        slope = theil_sen_slope(series)
        median = statistics.median(series)
        slope_frac = slope / abs(median) if median else 0.0
        if abs(slope_frac) < slope_floor:
            continue
        alerts.append(TrendAlert(
            metric=name, direction=direction, slope_per_run=slope,
            slope_frac_per_run=slope_frac, z=z, s=s, runs=len(series)))
    return alerts


def trend_table(history: Mapping[str, Any],
                directions: Optional[Mapping[str, str]] = None) -> List[str]:
    """Human-readable Theil-Sen slope rows for every history series."""
    if directions is None:
        directions = metric_directions()
    rows: List[str] = []
    for name, series in sorted(metric_trajectories(history).items()):
        slope = theil_sen_slope(series)
        median = statistics.median(series)
        slope_frac = slope / abs(median) if median else 0.0
        _, z = mann_kendall(series)
        direction = directions.get(name, "?")
        rows.append(f"  {name:<45} {len(series):>3} runs  "
                    f"slope {slope:+12.6g}/run "
                    f"({slope_frac * 100:+7.2f}%/run)  z={z:+6.2f}  "
                    f"[{direction} is better]")
    return rows


# -- the gate ----------------------------------------------------------


def check(metrics: Mapping[str, Tuple[float, str]],
          history: Mapping[str, Any],
          noise_floor: float = DEFAULT_NOISE_FLOOR) -> List[Regression]:
    """Regressions of ``metrics`` against the history medians.

    A metric regresses when its relative shortfall against the median
    of its historical samples exceeds ``noise_floor`` in the *bad*
    direction (slower for ``lower``-is-better, less for ``higher``).
    Improvements never flag, and metrics with fewer than
    :data:`MIN_HISTORY_RUNS` samples are not yet gated.
    """
    trajectories = metric_trajectories(history)
    regressions: List[Regression] = []
    for name, (value, direction) in sorted(metrics.items()):
        samples = trajectories.get(name, [])
        if len(samples) < MIN_HISTORY_RUNS:
            continue
        median = statistics.median(samples)
        if median == 0:
            continue
        if direction == "lower":
            delta = (value - median) / abs(median)
        else:
            delta = (median - value) / abs(median)
        if delta > noise_floor:
            regressions.append(Regression(
                metric=name, direction=direction, current=value,
                median=median, delta_frac=delta, noise_floor=noise_floor,
                runs=len(samples)))
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json against the recorded trajectory.")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="directory holding BENCH_*.json (default .)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help=f"history file (default "
                             f"<root>/{DEFAULT_HISTORY_NAME})")
    parser.add_argument("--noise-floor", type=float,
                        default=DEFAULT_NOISE_FLOOR, metavar="FRAC",
                        help="relative shortfall treated as noise "
                             f"(default {DEFAULT_NOISE_FLOOR})")
    parser.add_argument("--no-update", action="store_true",
                        help="check only; do not append a clean run "
                             "to the history")
    parser.add_argument("--trend-table", action="store_true",
                        help="print the Theil-Sen slope table for every "
                             "history series and exit (no gating)")
    args = parser.parse_args(argv)
    history_path = (Path(args.history) if args.history
                    else Path(args.root) / DEFAULT_HISTORY_NAME)
    if args.trend_table:
        history = load_history(history_path)
        rows = trend_table(history)
        if not rows:
            print(f"benchguard: no history at {history_path}")
            return 0
        print(f"benchguard trend table ({history_path}):")
        for row in rows:
            print(row)
        return 0
    metrics = current_metrics(args.root)
    if not metrics:
        print(f"benchguard: no BENCH_*.json under {args.root}; "
              "nothing to gate")
        return 0
    history = load_history(history_path)
    regressions = check(metrics, history, noise_floor=args.noise_floor)
    trajectories = metric_trajectories(history)
    for name, (value, direction) in sorted(metrics.items()):
        runs = len(trajectories.get(name, []))
        gated = "gated" if runs >= MIN_HISTORY_RUNS else (
            f"recording ({runs}/{MIN_HISTORY_RUNS} runs)")
        print(f"  {name:<45} {value:>12.6g}  "
              f"({'lower' if direction == 'lower' else 'higher'} is "
              f"better, {gated})")
    # Trend pass over history *plus* the current run, so the freshest
    # point participates; a tripped trend fails like a median breach.
    with_current = {
        "schema_version": history.get("schema_version",
                                      HISTORY_SCHEMA_VERSION),
        "entries": list(history.get("entries", [])),
    }
    append_history(with_current, metrics)
    trends = trend_check(with_current)
    if regressions or trends:
        if regressions:
            print(f"benchguard: {len(regressions)} regression(s):",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  REGRESSION {regression.describe()}",
                      file=sys.stderr)
        if trends:
            print(f"benchguard: {len(trends)} trending regression(s):",
                  file=sys.stderr)
            for trend in trends:
                print(f"  TREND {trend.describe()}", file=sys.stderr)
        print("history left untouched; investigate before re-baselining.",
              file=sys.stderr)
        return 1
    if not args.no_update:
        write_history(history_path, append_history(history, metrics))
        print(f"benchguard: ok — run appended to {history_path} "
              f"({len(load_history(history_path)['entries'])} entries)")
    else:
        print("benchguard: ok (history not updated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

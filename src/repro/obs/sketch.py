"""Mergeable relative-error quantile sketches (DDSketch-style).

The windowed :class:`~repro.obs.registry.Histogram` answers "what is
*this process's* recent p99" exactly, but its quantiles are
structurally unmergeable: two sorted windows cannot be combined into
the pooled quantile without the raw observations, so a cluster of N
nodes has N local p99s and no true cluster-wide one.  This module adds
the standard fix: a logarithmically-bucketed sketch whose ``merge()``
is *exact* (bucket counts add), trading a bounded **relative** error
on the reported quantile values for mergeability.

The construction is DDSketch's: pick a relative accuracy ``alpha``,
let ``gamma = (1 + alpha) / (1 - alpha)``, and map every positive
value to the bucket ``ceil(log(v) / log(gamma))``.  All values in
bucket ``k`` lie in ``(gamma^(k-1), gamma^k]``, and the bucket's
representative ``2 * gamma^k / (gamma + 1)`` (the interval's harmonic
midpoint) is within ``alpha`` of every one of them — so any quantile
reported from bucket representatives carries at most ``alpha``
relative error, and merging sketches (summing the count maps) loses
nothing: the merged sketch is bit-identical to the sketch of the
concatenated stream.

Zero and negative values (latencies are non-negative; exact zeros do
occur on virtual clocks) land in a dedicated zero bucket counted
exactly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["DEFAULT_RELATIVE_ACCURACY", "QuantileSketch"]

#: Default relative accuracy: reported quantiles within 1% of the true
#: value, comfortably inside the federation drill's 2% error budget.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """A mergeable quantile sketch with bounded relative error.

    Args:
        relative_accuracy: ``alpha`` in (0, 1); every reported quantile
            is within ``alpha`` of the true value, relatively.
    """

    __slots__ = ("relative_accuracy", "gamma", "_log_gamma", "_buckets",
                 "_zero_count", "count", "total", "min", "max")

    def __init__(self,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be within (0, 1)")
        self.relative_accuracy = relative_accuracy
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -----------------------------------------------------

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _representative(self, key: int) -> float:
        # Harmonic midpoint of (gamma^(k-1), gamma^k]: within alpha of
        # every value the bucket can hold.
        return 2.0 * self.gamma ** key / (self.gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times).  Non-positive values are
        counted exactly in the zero bucket."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero_count += count
            return
        key = self._key(value)
        self._buckets[key] = self._buckets.get(key, 0) + count

    # -- querying ------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) with at most
        ``relative_accuracy`` relative error; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        if rank < self._zero_count:
            return 0.0
        seen = float(self._zero_count)
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen > rank:
                return self._representative(key)
        return self._representative(max(self._buckets))

    def percentile(self, p: float) -> float:
        """Histogram-compatible spelling: ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def count_above(self, threshold: float) -> int:
        """Observations strictly above ``threshold`` (within the
        sketch's relative accuracy at the boundary bucket)."""
        if threshold < 0.0:
            return self.count
        if threshold == 0.0:
            return self.count - self._zero_count
        cut = self._key(threshold)
        return sum(c for key, c in self._buckets.items() if key > cut)

    def reconstruct(self, max_values: int = 1 << 17) -> List[float]:
        """Representative values, one per recorded observation (each
        within ``relative_accuracy`` of an original), sorted ascending.

        This is what lets a *merged* sketch stand in for a histogram
        window downstream (threshold counting in the SLO engine).  When
        the sketch holds more than ``max_values`` observations the
        bucket counts are scaled down proportionally so the returned
        list stays bounded while preserving each bucket's share.
        """
        if self.count == 0:
            return []
        scale = min(1.0, max_values / self.count)
        values: List[float] = []
        zero = int(round(self._zero_count * scale))
        values.extend(0.0 for _ in range(zero))
        for key in sorted(self._buckets):
            n = int(round(self._buckets[key] * scale))
            rep = self._representative(key)
            values.extend(rep for _ in range(n))
        return values

    # -- merging -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch, exactly; returns self.

        Requires equal ``relative_accuracy`` (equal bucket boundaries)
        — merging mismatched sketches would silently degrade the error
        bound, so it raises instead.
        """
        if not math.isclose(other.gamma, self.gamma, rel_tol=1e-12):
            raise ValueError(
                f"cannot merge sketches with different relative accuracy "
                f"({self.relative_accuracy} vs {other.relative_accuracy})")
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"],
               relative_accuracy: Optional[float] = None) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``."""
        sketches = list(sketches)
        if relative_accuracy is None:
            relative_accuracy = (sketches[0].relative_accuracy if sketches
                                 else DEFAULT_RELATIVE_ACCURACY)
        out = cls(relative_accuracy)
        for sketch in sketches:
            out.merge(sketch)
        return out

    # -- transport -----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable payload (the snapshot / scrape wire form).

        Bucket keys are stringified for JSON; ``from_dict`` restores
        them.  Empty-sketch min/max serialize as None.
        """
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "zero_count": self._zero_count,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`as_dict` output."""
        sketch = cls(float(payload["relative_accuracy"]))
        sketch.count = int(payload["count"])
        sketch.total = float(payload["sum"])
        sketch.min = (math.inf if payload.get("min") is None
                      else float(payload["min"]))
        sketch.max = (-math.inf if payload.get("max") is None
                      else float(payload["max"]))
        sketch._zero_count = int(payload.get("zero_count", 0))
        sketch._buckets = {int(k): int(v)
                           for k, v in payload.get("buckets", {}).items()}
        return sketch

    def __len__(self) -> int:
        return len(self._buckets) + (1 if self._zero_count else 0)

    def __repr__(self) -> str:
        return (f"QuantileSketch(alpha={self.relative_accuracy}, "
                f"count={self.count}, buckets={len(self._buckets)})")

"""Process-wide metrics registry: counters, gauges, windowed histograms.

The registry is the single sink every instrumented layer (engine,
store, experiments) reports into.  Three instrument kinds:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (occupancy, balance, ...);
* :class:`Histogram` — bounded window of observations with streaming
  ``count``/``sum``/``min``/``max`` plus windowed p50/p95/p99.

Instruments are identified by ``(name, labels)``; the same name with
different labels is a *labeled series* (e.g. one
``store.shard.latency_s`` histogram per shard id).  Names are
dot-separated ``<layer>.<subject>.<unit>`` by convention (see
``docs/observability.md``).

**Zero overhead when off** is the design constraint: a disabled
registry's ``counter()`` / ``gauge()`` / ``histogram()`` return one
shared :data:`NULL` instrument whose mutators are no-ops, and the
registry records nothing — hot paths may therefore resolve and cache
instruments unconditionally, or guard bigger blocks with
``registry.enabled``.  The module-level default registry starts
disabled; ``python -m repro.experiments <name> --metrics-out`` (or
:func:`repro.obs.enable_observability`) switches it on.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullInstrument",
    "SketchHistogram",
    "get_registry",
    "set_registry",
]

#: Default observation-window length for histograms.
DEFAULT_HISTOGRAM_WINDOW = 4096

#: ``(name, sorted label items)`` — one instrument identity.
SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _series_key(name: str, labels: Dict[str, Any]) -> SeriesKey:
    return name, tuple(sorted(labels.items()))


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.labels}, value={self.value})"


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.labels}, value={self.value})"


class Histogram:
    """Windowed distribution with streaming totals.

    ``count``/``sum``/``min``/``max`` cover the full lifetime;
    percentiles are computed over the last ``window`` observations so
    a long-lived process reports *recent* latency, not its cold start
    averaged away (the same bounded-window reasoning as the store's
    concentration telemetry).

    **Exemplars.** ``observe(value, exemplar=trace_id)`` retains the
    trace id alongside the observation, in a deque sharing the window's
    ``maxlen`` and appended in lockstep — so an exemplar is evicted at
    the exact moment its observation leaves the window and can never
    outlive its bucket.  This is what links a p99 quantile to a
    concrete recorded trace (see :mod:`repro.obs.attrib`).  The first
    time an exemplar-carrying observation is evicted, the histogram
    journals one edge-triggered ``obs.exemplar_drop`` event;
    ``exemplar_drops`` counts every such eviction.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_window", "_exemplars", "exemplar_drops", "_drop_noted")

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, Any],
                 window: int = DEFAULT_HISTOGRAM_WINDOW):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window: deque = deque(maxlen=window)
        self._exemplars: deque = deque(maxlen=window)
        self.exemplar_drops = 0
        self._drop_noted = False

    @property
    def window(self) -> int:
        return self._window.maxlen

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (len(self._window) == self._window.maxlen
                and self._exemplars and self._exemplars[0] is not None):
            self._note_exemplar_drop()
        self._window.append(value)
        self._exemplars.append(exemplar)

    def _note_exemplar_drop(self) -> None:
        """An exemplar-carrying observation just aged out of the
        window.  Journaled once per histogram (edge-triggered) so a
        busy series does not flood the journal."""
        self.exemplar_drops += 1
        if not self._drop_noted:
            self._drop_noted = True
            from repro.obs.journal import get_journal
            get_journal().emit("obs.exemplar_drop", histogram=self.name,
                               labels=dict(self.labels),
                               window=self.window)

    def exemplars(self, n: int = 4) -> List[Dict[str, Any]]:
        """Largest-valued retained exemplars — the concrete traces
        behind the tail quantiles, heaviest first."""
        pairs = [(v, e) for v, e in zip(self._window, self._exemplars)
                 if e is not None]
        pairs.sort(key=lambda p: p[0], reverse=True)
        return [{"value": v, "trace_id": e} for v, e in pairs[:n]]

    def percentile(self, q: float) -> float:
        """Windowed percentile ``q`` in [0, 100]; NaN when empty.

        Nearest-rank on the sorted window — cheap, monotone, and exact
        for the small windows the registry keeps.
        """
        if not self._window:
            return math.nan
        ordered = sorted(self._window)
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def window_values(self) -> List[float]:
        """The retained observation window, oldest first.

        The raw values back the health layer's threshold counting
        (fraction of recent observations over an SLO threshold), which
        a percentile summary cannot answer exactly.
        """
        return list(self._window)

    def summary(self) -> Dict[str, Any]:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
            "mean": math.nan if empty else self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "window": self.window,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                **self.summary(), "exemplars": self.exemplars()}

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, {self.labels}, "
                f"count={self.count})")


class SketchHistogram(Histogram):
    """A histogram that additionally feeds a mergeable quantile sketch.

    Requested via ``registry.histogram(name, sketch=True)``.  The
    windowed behaviour (exact recent percentiles, exemplars, SLO
    threshold counting over ``window_values()``) is inherited
    unchanged; on top, every observation lands in a
    :class:`~repro.obs.sketch.QuantileSketch` covering the series'
    *full lifetime*, which the federation layer extracts from
    snapshots and merges across nodes into true cluster-wide
    quantiles.  ``kind`` stays ``"histogram"`` so every existing
    snapshot/sink/health consumer sees it as one.
    """

    __slots__ = ("sketch",)

    def __init__(self, name: str, labels: Dict[str, Any],
                 window: int = DEFAULT_HISTOGRAM_WINDOW,
                 relative_accuracy: Optional[float] = None):
        super().__init__(name, labels, window=window)
        from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
        if relative_accuracy is None:
            relative_accuracy = DEFAULT_RELATIVE_ACCURACY
        self.sketch = QuantileSketch(relative_accuracy)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        super().observe(value, exemplar=exemplar)
        self.sketch.add(value)

    def as_dict(self) -> Dict[str, Any]:
        # Additive within snapshot schema v1: readers that don't know
        # about sketches ignore the extra field.
        payload = super().as_dict()
        payload["sketch"] = self.sketch.as_dict()
        return payload

    def __repr__(self) -> str:
        return (f"SketchHistogram({self.name!r}, {self.labels}, "
                f"count={self.count})")


class NullInstrument:
    """The disabled fast path: every mutator is a no-op.

    One shared instance stands in for every instrument kind, so
    instrumented code can cache handles without knowing whether the
    registry is live.
    """

    __slots__ = ()

    kind = "null"
    name = ""
    labels: Dict[str, Any] = {}
    value = 0
    count = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        pass

    def percentile(self, q: float) -> float:
        return math.nan

    def window_values(self) -> List[float]:
        return []

    def exemplars(self, n: int = 4) -> List[Dict[str, Any]]:
        return []

    def summary(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NullInstrument()"


#: The shared no-op instrument returned by every disabled registry.
NULL = NullInstrument()


class MetricsRegistry:
    """Thread-safe factory + container for the process's instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call for a ``(name, labels)`` pair creates the series, later
    calls return the same object.  While ``enabled`` is False they
    return :data:`NULL` and create nothing, so the off path allocates
    no entries and the snapshot stays empty.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[SeriesKey, Any] = {}

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop every series (counters reset by disappearing)."""
        with self._lock:
            self._series.clear()

    # -- instrument factories ------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any],
                       **kwargs):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = cls(name, labels, **kwargs)
                    self._series[key] = series
        if not isinstance(series, cls):
            have = (type(series).__name__ if series.kind == cls.kind
                    else series.kind)
            want = cls.__name__ if series.kind == cls.kind else cls.kind
            raise TypeError(
                f"metric {name!r} with labels {labels} already registered "
                f"as a {have}, not a {want}"
            )
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, window: int = DEFAULT_HISTOGRAM_WINDOW,
                  sketch: bool = False, **labels: Any) -> Histogram:
        """Get-or-create a histogram; ``sketch=True`` requests the
        mergeable :class:`SketchHistogram` variant.  Asking for a plain
        histogram when the series was declared as a sketch returns the
        sketch (it is a histogram); the reverse raises, because a plain
        histogram cannot honour the mergeability the caller expects —
        declare the series as kind ``"sketch"`` instead.
        """
        if not self.enabled:
            return NULL
        if sketch:
            return self._get_or_create(SketchHistogram, name, labels,
                                       window=window)
        return self._get_or_create(Histogram, name, labels, window=window)

    def adopt(self, instrument: Any) -> Any:
        """Install a fully-built instrument under its own identity.

        The federation aggregator builds merged instruments off-line
        (summed counters, merged sketches) and adopts them into a
        fresh registry so every existing read-side consumer —
        ``matching()``, snapshots, the SLO engine — works on the
        merged view unchanged.  Replaces any existing series with the
        same ``(name, labels)`` identity.
        """
        key = _series_key(instrument.name, instrument.labels)
        with self._lock:
            self._series[key] = instrument
        return instrument

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def series(self, kind: str = None) -> Iterator[Any]:
        """All instruments, in (name, labels) order, optionally by kind."""
        with self._lock:
            items = sorted(self._series.items())
        for _, instrument in items:
            if kind is None or instrument.kind == kind:
                yield instrument

    def matching(self, name: str, **labels: Any) -> List[Any]:
        """Instruments named ``name`` whose labels contain ``labels``.

        Label-*subset* match: ``matching("serve.latency_s",
        scheme="pmod")`` returns every ``serve.latency_s`` series
        labeled with that scheme regardless of its other labels.  The
        health layer's SLO evaluation aggregates over this.
        """
        wanted = labels.items()
        return [instrument for instrument in self.series()
                if instrument.name == name
                and all(instrument.labels.get(k) == v for k, v in wanted)]

    def counters(self) -> List[Counter]:
        return list(self.series("counter"))

    def gauges(self) -> List[Gauge]:
        return list(self.series("gauge"))

    def histograms(self) -> List[Histogram]:
        return list(self.series("histogram"))

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-serializable dump of every series (the ``metrics`` block
        of the snapshot schema)."""
        return {
            "counters": [c.as_dict() for c in self.counters()],
            "gauges": [g.as_dict() for g in self.gauges()],
            "histograms": [h.as_dict() for h in self.histograms()],
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, series={len(self._series)})"


#: Process-wide default registry; disabled until observability is
#: switched on, so un-instrumented runs pay only a no-op call.
_global_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide registry (disabled by default)."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous

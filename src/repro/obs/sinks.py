"""Export sinks for the metrics registry and span tracer.

Three formats, one source of truth:

* :func:`metrics_snapshot` / :func:`write_snapshot` — the JSON
  document written by ``--metrics-out`` (schema below, versioned by
  :data:`SNAPSHOT_SCHEMA_VERSION`, checked by
  :func:`validate_snapshot`);
* :func:`to_prometheus` — Prometheus text exposition format (v0.0.4:
  ``# TYPE`` headers, label sets, histogram summaries as quantile
  series) for scraping or pushing;
* :func:`metrics_table` — the human-readable tables, rendered through
  :mod:`repro.reporting` like every other report in the repo.

Snapshot schema (version 1)::

    {
      "schema_version": 1,
      "generated_unix_s": <float, time.time()>,
      "metrics": {
        "counters":   [{"name", "labels", "value"}, ...],
        "gauges":     [{"name", "labels", "value"}, ...],
        "histograms": [{"name", "labels", "count", "sum", "min", "max",
                        "mean", "p50", "p95", "p99", "window",
                        "exemplars"}, ...]
      },
      "spans": [{"name", "labels", "start_s", "duration_s", "thread",
                 "depth", "parent"}, ...]   # depth-first; parent = index
    }

``exemplars`` is additive within schema version 1 (readers of v1
ignore unknown fields): a list of ``{"value", "trace_id"}`` pairs
linking a histogram's tail to concrete recorded traces; validated when
present.  :func:`to_prometheus` renders the same pairs as
OpenMetrics-style exemplar suffixes (``... # {trace_id="..."} value``)
on the quantile lines.

NaNs (an empty histogram's percentiles, an idle store's balance) are
serialized as ``null`` so the file is strict JSON.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "metrics_snapshot",
    "metrics_table",
    "to_prometheus",
    "validate_snapshot",
    "write_snapshot",
]

#: Version of the ``--metrics-out`` snapshot document.
SNAPSHOT_SCHEMA_VERSION = 1

#: Keys every snapshot must carry.
_REQUIRED_KEYS = ("schema_version", "generated_unix_s", "metrics", "spans")

_METRIC_KINDS = ("counters", "gauges", "histograms")

_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95",
                     "p99", "window")


def _de_nan(value: Any) -> Any:
    """NaN/inf → None, recursively, so the snapshot is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _de_nan(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_de_nan(v) for v in value]
    return value


def metrics_snapshot(registry: MetricsRegistry,
                     tracer: Optional[SpanTracer] = None) -> Dict[str, Any]:
    """The full snapshot document for ``registry`` (+ spans, if any)."""
    return _de_nan({
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "generated_unix_s": time.time(),
        "metrics": registry.snapshot(),
        "spans": tracer.flat() if tracer is not None else [],
    })


def write_snapshot(path: Union[str, os.PathLike],
                   registry: MetricsRegistry,
                   tracer: Optional[SpanTracer] = None) -> Path:
    """Write the snapshot JSON to ``path``; returns the path."""
    path = Path(path)
    snapshot = metrics_snapshot(registry, tracer)
    path.write_text(json.dumps(snapshot, indent=1) + "\n")
    return path


def validate_snapshot(snapshot: Mapping) -> None:
    """Raise ValueError unless ``snapshot`` matches the schema above."""
    missing = [k for k in _REQUIRED_KEYS if k not in snapshot]
    if missing:
        raise ValueError(f"snapshot is missing keys: {', '.join(missing)}")
    if snapshot["schema_version"] != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"snapshot schema v{snapshot['schema_version']} != "
            f"supported v{SNAPSHOT_SCHEMA_VERSION}"
        )
    metrics = snapshot["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError("snapshot 'metrics' must be a mapping")
    for kind in _METRIC_KINDS:
        rows = metrics.get(kind)
        if not isinstance(rows, list):
            raise ValueError(f"snapshot metrics[{kind!r}] must be a list")
        for row in rows:
            for field in ("name", "labels"):
                if field not in row:
                    raise ValueError(f"{kind} entry missing {field!r}: {row}")
            if kind == "histograms":
                lacking = [f for f in _HISTOGRAM_FIELDS if f not in row]
                if lacking:
                    raise ValueError(
                        f"histogram {row.get('name')!r} missing fields: "
                        f"{', '.join(lacking)}"
                    )
                for ex in row.get("exemplars", []):
                    if not isinstance(ex, Mapping) or "value" not in ex \
                            or "trace_id" not in ex:
                        raise ValueError(
                            f"histogram {row.get('name')!r} exemplar must "
                            f"carry value + trace_id: {ex}"
                        )
            elif "value" not in row:
                raise ValueError(f"{kind} entry missing 'value': {row}")
    if not isinstance(snapshot["spans"], list):
        raise ValueError("snapshot 'spans' must be a list")
    for span in snapshot["spans"]:
        for field in ("name", "start_s", "depth", "parent"):
            if field not in span:
                raise ValueError(f"span entry missing {field!r}: {span}")


# -- Prometheus text exposition ---------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    """Metric name in Prometheus charset (dots/dashes → underscores)."""
    cleaned = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned + suffix


def _prom_label_value(value: Any) -> str:
    """A label value escaped per the exposition format: backslash,
    double quote, and newline must be escaped inside the quotes."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: Dict[str, Any], extra: Dict[str, Any] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(str(k))}="{_prom_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _nearest_exemplar(exemplars: List[Dict[str, Any]],
                      quantile_value: Any) -> Optional[Dict[str, Any]]:
    """The retained exemplar closest in value to a quantile — the
    concrete trace a scraper should follow for that bucket."""
    if not exemplars:
        return None
    if not isinstance(quantile_value, (int, float)) \
            or not math.isfinite(quantile_value):
        return exemplars[0]
    return min(exemplars, key=lambda ex: abs(ex["value"] - quantile_value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Registry contents in Prometheus text exposition format.

    Counters and gauges map directly; histograms are exposed as
    summaries (``quantile`` series from the window plus lifetime
    ``_sum`` / ``_count``), which is the faithful rendering of a
    windowed-percentile instrument.
    """
    lines: List[str] = []
    typed: set = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for counter in registry.counters():
        name = _prom_name(counter.name, "_total")
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} "
                     f"{_prom_value(counter.value)}")
    for gauge in registry.gauges():
        name = _prom_name(gauge.name)
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} "
                     f"{_prom_value(gauge.value)}")
    for histogram in registry.histograms():
        name = _prom_name(histogram.name)
        header(name, "summary")
        summary = histogram.summary()
        exemplars = histogram.exemplars()
        for q, field in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            line = (
                f"{name}{_prom_labels(histogram.labels, {'quantile': q})} "
                f"{_prom_value(summary[field])}"
            )
            exemplar = _nearest_exemplar(exemplars, summary[field])
            if exemplar is not None:
                line += (f' # {{trace_id="'
                         f'{_prom_label_value(exemplar["trace_id"])}"}} '
                         f'{_prom_value(exemplar["value"])}')
            lines.append(line)
        lines.append(f"{name}_sum{_prom_labels(histogram.labels)} "
                     f"{_prom_value(summary['sum'])}")
        lines.append(f"{name}_count{_prom_labels(histogram.labels)} "
                     f"{_prom_value(summary['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable tables --------------------------------------------


def _fmt_labels(labels: Dict[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _fmt_float(value: Any) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.6g}"


def metrics_table(registry: MetricsRegistry) -> str:
    """Counters/gauges and histogram summaries as aligned tables."""
    from repro.reporting import format_table  # deferred: keep obs light

    sections: List[str] = []
    scalar_rows = [
        [s.name, s.kind, _fmt_labels(s.labels), _fmt_float(float(s.value))]
        for s in list(registry.counters()) + list(registry.gauges())
    ]
    if scalar_rows:
        sections.append(format_table(
            ["metric", "kind", "labels", "value"],
            sorted(scalar_rows), title="counters / gauges",
        ))
    hist_rows = []
    for h in registry.histograms():
        s = h.summary()
        hist_rows.append([
            h.name, _fmt_labels(h.labels), str(s["count"]),
            _fmt_float(s["mean"]), _fmt_float(s["p50"]),
            _fmt_float(s["p95"]), _fmt_float(s["p99"]),
            _fmt_float(s["max"]),
        ])
    if hist_rows:
        sections.append(format_table(
            ["histogram", "labels", "count", "mean", "p50", "p95", "p99",
             "max"],
            sorted(hist_rows), title="histograms (windowed percentiles)",
        ))
    return "\n\n".join(sections) if sections else "(no metrics recorded)"

"""Per-request causal attribution: trace contexts, critical-path
analysis, a tail-latency flight recorder, and heavy-hitter tracking.

The metrics layer answers *how slow* (windowed p50/p95/p99 per scheme);
this module answers *where the time went*.  A sampled request carries a
:class:`TraceContext` across every async/thread boundary it crosses —
admission, the per-shard batcher queue, the store op, replica fan-out —
and each boundary records a named :class:`Stage` with a measured wall
duration.  The finished :class:`Trace` is a causal stage timeline, not
a per-thread flat span list, so the serving and cluster drills can
decompose a measured p99 into queue wait vs. hash/storage vs. fabric
vs. retry and prove where an optimisation actually moved time.

Four consumers sit on top:

* :class:`CriticalPathAnalyzer` — aggregates traces into per-stage
  p50/p95/p99 contributions and a *coverage* number (Σ stage time /
  Σ wall time); the ``trace-check`` gate requires coverage ≥ 0.9.
* :class:`FlightRecorder` — bounded ring buffers of the slowest-N and
  all non-ok traces; ``dump()`` writes JSONL and journals an
  ``obs.flight_dump`` event carrying the slowest waterfall, and is
  wired to fire automatically when an SLO page trips.
* Histogram **exemplars** — the frontend passes ``trace_id`` into
  ``Histogram.observe(value, exemplar=...)`` so a p99 bucket links to
  a concrete recorded trace (see :mod:`repro.obs.registry`).
* :class:`HeavyHitterTracker` — Metwally space-saving top-K over
  routed keys, per shard/node, feeding ``HashQualityDetector`` so a
  concentration-drift alarm names the offending keys.

Everything is off by default: the process-wide :class:`TraceCollector`
starts disabled (``begin`` returns ``None`` and every call site guards
on that), so the untraced path costs one attribute check.
"""

from __future__ import annotations

import contextvars
import heapq
import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CriticalPathAnalyzer",
    "FlightRecorder",
    "HeavyHitterTracker",
    "Stage",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "activate",
    "current_trace",
    "get_collector",
    "set_collector",
]

_TRACE_SEQ = itertools.count(1)


def _next_trace_id() -> str:
    return f"t{next(_TRACE_SEQ):08x}"


# ---------------------------------------------------------------------------
# Trace records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Stage:
    """One named, measured segment of a request's wall time.

    ``start_s`` is relative to the owning trace's start, so a list of
    stages renders directly as a waterfall.
    """

    name: str
    start_s: float
    duration_s: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.detail:
            row["detail"] = dict(self.detail)
        return row


@dataclass(frozen=True)
class Trace:
    """A finished request timeline: identity, outcome, and its stages."""

    trace_id: str
    op: str
    scheme: str
    status: str
    start_s: float
    wall_s: float
    stages: Tuple[Stage, ...]
    baggage: Dict[str, Any] = field(default_factory=dict)

    def stage_total_s(self) -> float:
        return sum(s.duration_s for s in self.stages)

    def coverage(self) -> float:
        """Fraction of measured wall time explained by stages."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.stage_total_s() / self.wall_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "scheme": self.scheme,
            "status": self.status,
            "wall_s": self.wall_s,
            "coverage": self.coverage(),
            "stages": [s.as_dict() for s in self.stages],
            "baggage": dict(self.baggage),
        }


class TraceContext:
    """Mutable in-flight trace state, safe to hand across task/thread
    boundaries.

    The batcher executor and the submitting coroutine both write into
    one context, so stage appends go through a lock, and
    :meth:`finish` snapshots the stage list exactly once — a late
    append from an abandoned (timed-out) work item lands after the
    snapshot and is dropped rather than double-counted.

    ``span_stack`` is the per-*context* open-span stack that
    :class:`repro.obs.spans.SpanTracer` parents on while this context
    is active, which is what keeps parentage correct when two asyncio
    tasks interleave on one thread.
    """

    __slots__ = ("trace_id", "op", "scheme", "baggage", "start_s",
                 "span_stack", "marks", "_stages", "_lock", "_done")

    def __init__(self, op: str, scheme: str = "",
                 trace_id: Optional[str] = None,
                 **baggage: Any):
        self.trace_id = trace_id or _next_trace_id()
        self.op = op
        self.scheme = scheme
        self.baggage = dict(baggage)
        self.start_s = perf_counter()
        self.span_stack: List[Any] = []
        self.marks: Dict[str, float] = {}
        self._stages: List[Stage] = []
        self._lock = threading.Lock()
        self._done = False

    @property
    def finished(self) -> bool:
        return self._done

    def mark(self, name: str, at_s: Optional[float] = None) -> float:
        """Stamp a named instant (absolute ``perf_counter`` seconds)."""
        t = perf_counter() if at_s is None else at_s
        self.marks[name] = t
        return t

    def stage(self, name: str, start_s: float, duration_s: float,
              **detail: Any) -> bool:
        """Record one completed stage; ``start_s`` is absolute
        ``perf_counter`` seconds.  Returns False (and records nothing)
        once the trace has finished."""
        st = Stage(name=name, start_s=start_s - self.start_s,
                   duration_s=max(0.0, duration_s), detail=detail)
        with self._lock:
            if self._done:
                return False
            self._stages.append(st)
        return True

    def stage_since(self, name: str, t0: float, **detail: Any) -> bool:
        """Record a stage running from absolute ``t0`` until now."""
        return self.stage(name, t0, perf_counter() - t0, **detail)

    def finish(self, status: str = "ok",
               wall_s: Optional[float] = None) -> Trace:
        """Freeze into a :class:`Trace`; idempotent per context (later
        stage appends are rejected, later finishes see the same
        stages)."""
        with self._lock:
            self._done = True
            stages = tuple(sorted(self._stages, key=lambda s: s.start_s))
        wall = (perf_counter() - self.start_s) if wall_s is None else wall_s
        return Trace(trace_id=self.trace_id, op=self.op, scheme=self.scheme,
                     status=status, start_s=self.start_s, wall_s=wall,
                     stages=stages, baggage=dict(self.baggage))


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_active_trace", default=None)


def current_trace() -> Optional[TraceContext]:
    """The TraceContext active in this task/thread, if any."""
    return _ACTIVE.get()


class activate:
    """Make ``ctx`` the active trace for the current execution flow.

    ``contextvars`` gives each asyncio task its own value, so two
    tasks interleaving on one thread (or a work item executing on a
    batcher worker) each see their own context — the fix for the old
    per-thread span-stack mis-parenting.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[TraceContext]):
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        self._token = _ACTIVE.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> None:
        _ACTIVE.reset(self._token)


# ---------------------------------------------------------------------------
# Critical-path analysis
# ---------------------------------------------------------------------------

class CriticalPathAnalyzer:
    """Decompose measured request latency into per-stage contributions.

    Works over finished traces: aggregate stage totals give each
    stage's share of total wall time, and the nearest-rank p50/p95/p99
    traces (by wall) give the concrete stage breakdown *at* each
    percentile — "the p99 request spent 71% of its wall queued".
    """

    def __init__(self, traces: Sequence[Trace]):
        self.traces = [t for t in traces if t.wall_s > 0.0]

    def coverage(self) -> float:
        """Σ stage time / Σ wall time over all traces."""
        wall = sum(t.wall_s for t in self.traces)
        if wall <= 0.0:
            return 0.0
        return sum(t.stage_total_s() for t in self.traces) / wall

    def _at_rank(self, q: float) -> Trace:
        ordered = sorted(self.traces, key=lambda t: t.wall_s)
        idx = max(0, min(len(ordered) - 1,
                         int(round(q * len(ordered) + 0.5)) - 1))
        return ordered[idx]

    def decompose(self) -> Dict[str, Any]:
        """The attribution report the drill experiments publish."""
        if not self.traces:
            return {"n_traces": 0, "coverage": 0.0, "wall": {},
                    "stages": {}, "percentiles": {}}
        totals: Dict[str, float] = {}
        for t in self.traces:
            for s in t.stages:
                totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        wall_total = sum(t.wall_s for t in self.traces)
        stages = {
            name: {
                "total_s": total,
                "share": (total / wall_total) if wall_total > 0 else 0.0,
                "mean_s": total / len(self.traces),
            }
            for name, total in sorted(totals.items(),
                                      key=lambda kv: -kv[1])
        }
        percentiles: Dict[str, Any] = {}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            t = self._at_rank(q)
            breakdown: Dict[str, float] = {}
            for s in t.stages:
                breakdown[s.name] = breakdown.get(s.name, 0.0) + s.duration_s
            percentiles[label] = {
                "trace_id": t.trace_id,
                "wall_s": t.wall_s,
                "coverage": t.coverage(),
                "stages": breakdown,
            }
        return {
            "n_traces": len(self.traces),
            "coverage": self.coverage(),
            "wall": {label: percentiles[label]["wall_s"]
                     for label in percentiles},
            "stages": stages,
            "percentiles": percentiles,
        }


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

class FlightRecorder:
    """Bounded ring buffers of the traces worth keeping: the slowest-N
    by wall time and every non-ok trace (most recent ``error_capacity``,
    oldest evicted first).

    ``dump()`` is the page-time action: it writes the retained traces
    as JSONL (when given a path) and journals an ``obs.flight_dump``
    event that embeds the slowest trace's waterfall, so a fired SLO
    page always leaves behind at least one concrete slow request to
    read.
    """

    def __init__(self, slow_capacity: int = 32, error_capacity: int = 64):
        if slow_capacity < 1 or error_capacity < 1:
            raise ValueError("flight recorder capacities must be >= 1")
        self.slow_capacity = slow_capacity
        self._slow: List[Tuple[float, int, Trace]] = []
        self._errors: deque = deque(maxlen=error_capacity)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.recorded = 0
        self.dumps = 0

    def record(self, trace: Trace) -> None:
        with self._lock:
            self.recorded += 1
            if trace.status != "ok":
                self._errors.append(trace)
            entry = (trace.wall_s, next(self._seq), trace)
            if len(self._slow) < self.slow_capacity:
                heapq.heappush(self._slow, entry)
            elif entry[0] > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)

    def slowest(self) -> List[Trace]:
        """Retained slowest traces, slowest first."""
        with self._lock:
            return [t for _, _, t in
                    sorted(self._slow, key=lambda e: (-e[0], e[1]))]

    def errors(self) -> List[Trace]:
        """Retained non-ok traces in arrival order."""
        with self._lock:
            return list(self._errors)

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._errors.clear()
            self.recorded = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "recorded": self.recorded,
            "dumps": self.dumps,
            "slowest": [t.as_dict() for t in self.slowest()],
            "errors": [t.as_dict() for t in self.errors()],
        }

    def dump(self, path=None, reason: str = "") -> Dict[str, Any]:
        """Persist the retained traces and journal the fact.

        Returns the dump summary (also the journal event payload plus
        the full trace list when a path was written)."""
        from repro.obs.journal import get_journal
        from repro.obs.registry import get_registry

        slow = self.slowest()
        errors = self.errors()
        seen = {t.trace_id for t in slow}
        traces = slow + [t for t in errors if t.trace_id not in seen]
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                for t in traces:
                    fh.write(json.dumps(t.as_dict(), sort_keys=True) + "\n")
        self.dumps += 1
        get_registry().counter("obs.flight_dumps").inc()
        event: Dict[str, Any] = {
            "reason": reason,
            "n_slow": len(slow),
            "n_error": len(errors),
            "path": None if path is None else str(path),
        }
        if slow:
            event["slowest"] = slow[0].as_dict()
        get_journal().emit("obs.flight_dump", **event)
        return {**event, "n_traces": len(traces)}


# ---------------------------------------------------------------------------
# Heavy hitters (space-saving top-K)
# ---------------------------------------------------------------------------

class HeavyHitterTracker:
    """Metwally space-saving sketch: top-K keys of a stream in O(K)
    memory.

    A new key evicts the current minimum and inherits its count as the
    overestimation ``error`` bound, so ``count - error`` is a
    guaranteed lower bound on the key's true frequency.  ``where``
    remembers the last shard/node the key routed to, which is what
    lets a concentration-drift alarm name both the key and the shard
    it is piling onto.
    """

    __slots__ = ("k", "offered", "_counts", "_errors", "_where", "_lock")

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.offered = 0
        self._counts: Dict[Any, int] = {}
        self._errors: Dict[Any, int] = {}
        self._where: Dict[Any, Any] = {}
        self._lock = threading.Lock()

    def offer(self, key: Any, where: Any = None) -> None:
        with self._lock:
            self.offered += 1
            if key in self._counts:
                self._counts[key] += 1
            elif len(self._counts) < self.k:
                self._counts[key] = 1
                self._errors[key] = 0
            else:
                victim = min(self._counts, key=self._counts.get)
                floor = self._counts.pop(victim)
                self._errors.pop(victim, None)
                self._where.pop(victim, None)
                self._counts[key] = floor + 1
                self._errors[key] = floor
            self._where[key] = where

    def top(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Tracked keys, heaviest first (JSON-friendly rows)."""
        with self._lock:
            rows = [{"key": key, "count": count,
                     "error": self._errors.get(key, 0),
                     "where": self._where.get(key)}
                    for key, count in sorted(self._counts.items(),
                                             key=lambda kv: -kv[1])]
        return rows if n is None else rows[:n]

    def clear(self) -> None:
        with self._lock:
            self.offered = 0
            self._counts.clear()
            self._errors.clear()
            self._where.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)


# ---------------------------------------------------------------------------
# Process-wide collector
# ---------------------------------------------------------------------------

class TraceCollector:
    """Process-wide sink for sampled traces, mirroring the registry /
    tracer / journal global pattern: disabled by default, one shared
    instance, swap with :func:`set_collector`.

    ``begin`` returns ``None`` while disabled so instrumented call
    sites stay a single ``if ctx is not None`` on the untraced path.
    Finished traces land in a bounded deque (for the critical-path
    analyzer) and in the attached :class:`FlightRecorder`.
    """

    def __init__(self, capacity: int = 1024, enabled: bool = True,
                 flight: Optional[FlightRecorder] = None):
        self.enabled = enabled
        self.flight = flight if flight is not None else FlightRecorder()
        self._traces: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def begin(self, op: str, scheme: str = "",
              **baggage: Any) -> Optional[TraceContext]:
        if not self.enabled:
            return None
        return TraceContext(op, scheme=scheme, **baggage)

    def finish(self, ctx: Optional[TraceContext], status: str = "ok",
               wall_s: Optional[float] = None) -> Optional[Trace]:
        if ctx is None:
            return None
        trace = ctx.finish(status=status, wall_s=wall_s)
        if self.enabled:
            with self._lock:
                self._traces.append(trace)
            self.flight.record(trace)
        return trace

    def traces(self, op: Optional[str] = None,
               scheme: Optional[str] = None) -> List[Trace]:
        with self._lock:
            rows = list(self._traces)
        if op is not None:
            rows = [t for t in rows if t.op == op]
        if scheme is not None:
            rows = [t for t in rows if t.scheme == scheme]
        return rows

    def analyze(self, op: Optional[str] = None,
                scheme: Optional[str] = None) -> Dict[str, Any]:
        """Critical-path decomposition over the retained traces."""
        return CriticalPathAnalyzer(
            self.traces(op=op, scheme=scheme)).decompose()

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
        self.flight.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


_global_collector = TraceCollector(enabled=False)


def get_collector() -> TraceCollector:
    """The process-wide trace collector (disabled by default)."""
    return _global_collector


def set_collector(collector: TraceCollector) -> TraceCollector:
    """Swap the process-wide collector; returns the previous one."""
    global _global_collector
    previous = _global_collector
    _global_collector = collector
    return previous

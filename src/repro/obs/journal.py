"""Append-only structured event journal: the system's flight recorder.

Metrics (:mod:`repro.obs.registry`) answer *how much*; the journal
answers *what happened, in what order*.  Engine, store, and serve emit
discrete lifecycle events into one process-wide :class:`Journal` —
cache corrupt-discards, injected shard stalls, admission rejects,
retry exhaustions, experiment start/finish — and the health layer
(:mod:`repro.obs.health`) appends the alerts it derives from them, so
one ordered stream links cause (a stall) to symptom (timeouts) to
diagnosis (a burn-rate alert).

Design points, mirroring the registry's:

* **disabled by default and free when off** — the module-level journal
  starts disabled; :meth:`Journal.emit` on a disabled journal is one
  attribute check and a return.  ``python -m repro.experiments <name>
  --journal PATH`` (or :func:`enable_journal`) switches it on.
* **monotonic sequence numbers** — every event carries ``seq``,
  assigned under one lock, so "A happened before B" is a pure integer
  comparison even across threads and file rotations.
* **two clocks** — ``ts_unix_s`` (wall clock, provenance) and
  ``mono_s`` (monotonic seconds since the journal epoch, safe for
  intervals; wall clock can step, the monotonic clock cannot).
* **versioned JSONL schema** — one JSON object per line, each stamped
  ``schema_version``; :func:`validate_event` checks a decoded line,
  :func:`replay` iterates a file (rotated segment first) back into
  dicts.
* **bounded rotation** — when the sink file exceeds ``max_bytes`` it
  rotates through ``<path>.1`` .. ``<path>.N`` (``backups``
  generations, default 1), so a chatty run costs bounded disk, never
  an unbounded log; long soaks that must not lose early events raise
  ``backups`` instead of ``max_bytes``.

Every emit also increments the pre-declared ``journal.events`` counter
(and ``journal.rotations`` on rotation), so snapshots record journal
volume even when the JSONL file itself is discarded.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.obs.registry import get_registry

__all__ = [
    "DEFAULT_BACKUPS",
    "EVENT_SCHEMA_VERSION",
    "KNOWN_EVENT_KINDS",
    "Journal",
    "JournalEvent",
    "disable_journal",
    "enable_journal",
    "get_journal",
    "replay",
    "set_journal",
    "validate_event",
]

#: Version stamped on every journal line; bump on incompatible change.
EVENT_SCHEMA_VERSION = 1

#: Keys every journal event must carry.
EVENT_REQUIRED_KEYS = ("schema_version", "seq", "ts_unix_s", "mono_s",
                       "kind", "fields")

#: Every event kind the system emits, the versioned schema's
#: vocabulary.  Producers adding a kind must add it here (and document
#: it in ``docs/observability.md``); :func:`validate_event` only
#: enforces membership when asked (``require_known_kind=True``), so
#: ad-hoc kinds in tests and downstream tooling keep working while
#: replay pipelines can opt into strict vocabulary checking.
KNOWN_EVENT_KINDS = frozenset({
    "adversary.attack_start",
    "adversary.mitigated",
    "adversary.probe_phase",
    "cluster.node_down",
    "cluster.node_up",
    "cluster.quorum_miss",
    "cluster.rereplicate",
    "control.action",
    "control.key_rotation",
    "control.node_quarantine",
    "control.quarantine",
    "engine.cache.corrupt_discard",
    "experiment.finish",
    "experiment.start",
    "health.alert_fired",
    "health.alert_resolved",
    "health.drift_recovered",
    "health.drift_tripped",
    "obs.exemplar_drop",
    "obs.flight_dump",
    "obs.scrape_miss",
    "obs.tsdb_evict",
    "reshard.commit",
    "reshard.migrate_chunk",
    "reshard.start",
    "serve.admission_reject",
    "serve.dropped",
    "serve.fault.delay",
    "serve.fault.error",
    "serve.fault.stall",
    "serve.rebind",
    "serve.retry_exhausted",
    "serve.timeout",
    "store.replay.error",
})

#: Default rotation threshold for the JSONL sink.
DEFAULT_MAX_BYTES = 4 << 20

#: Default in-memory tail length (events kept for `tail()` / the dash).
DEFAULT_TAIL_EVENTS = 2048

#: Default rotated-backup generations kept beside the live sink.
DEFAULT_BACKUPS = 1


@dataclass(frozen=True)
class JournalEvent:
    """One recorded event: what happened (``kind``), when (two clocks),
    in what order (``seq``), with structured context (``fields``)."""

    seq: int
    ts_unix_s: float
    mono_s: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts_unix_s": self.ts_unix_s,
            "mono_s": self.mono_s,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


def validate_event(event: Mapping, require_known_kind: bool = False) -> None:
    """Raise ValueError unless ``event`` is a valid journal line.

    With ``require_known_kind`` the kind must also belong to
    :data:`KNOWN_EVENT_KINDS` — the strict mode for replay pipelines
    that want vocabulary drift (a producer emitting an undocumented
    kind) to fail loudly rather than flow through.
    """
    missing = [k for k in EVENT_REQUIRED_KEYS if k not in event]
    if missing:
        raise ValueError(f"journal event missing keys: {', '.join(missing)}")
    if event["schema_version"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"journal event schema v{event['schema_version']} != "
            f"supported v{EVENT_SCHEMA_VERSION}"
        )
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        raise ValueError(f"journal event seq must be a non-negative int, "
                         f"got {event['seq']!r}")
    if not isinstance(event["kind"], str) or not event["kind"]:
        raise ValueError("journal event kind must be a non-empty string")
    if require_known_kind and event["kind"] not in KNOWN_EVENT_KINDS:
        raise ValueError(
            f"journal event kind {event['kind']!r} is not in the "
            f"documented vocabulary (KNOWN_EVENT_KINDS)")
    if not isinstance(event["fields"], Mapping):
        raise ValueError("journal event fields must be a mapping")


class Journal:
    """Thread-safe append-only event log with an optional JSONL sink.

    Args:
        path: JSONL sink file; None keeps events in memory only (the
            bounded tail).  The file is appended to, rotated through
            ``<path>.1`` .. ``<path>.N`` past ``max_bytes``.
        max_bytes: rotation threshold for the sink file.
        tail_events: how many recent events the in-memory tail keeps.
        backups: rotated generations kept (``.1`` newest .. ``.N``
            oldest); the oldest is dropped at each rotation past N.
        enabled: a disabled journal's :meth:`emit` is a no-op.
    """

    def __init__(self, path: Union[str, os.PathLike, None] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 tail_events: int = DEFAULT_TAIL_EVENTS,
                 backups: int = DEFAULT_BACKUPS,
                 enabled: bool = True):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 1:
            raise ValueError("backups must be >= 1")
        self.enabled = enabled
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._seq = 0
        self._epoch = time.monotonic()
        self._bytes = 0
        self._lock = threading.Lock()
        self._tail: deque = deque(maxlen=tail_events)
        if self.path is not None and self.path.exists():
            self._bytes = self.path.stat().st_size

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> "Journal":
        self.enabled = True
        return self

    def disable(self) -> "Journal":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop the in-memory tail and reset the epoch (the sink file,
        being the durable record, is left alone; ``seq`` keeps rising
        so ordering survives a clear)."""
        with self._lock:
            self._tail.clear()
            self._epoch = time.monotonic()

    # -- recording -----------------------------------------------------

    @property
    def events(self) -> int:
        """Events emitted over this journal's lifetime."""
        return self._seq

    def emit(self, kind: str, **fields: Any) -> Optional[JournalEvent]:
        """Append one event; returns it (None while disabled).

        ``fields`` must be JSON-serializable; anything that is not is
        stringified rather than raised on, because the journal must
        never take down the path that is trying to report a problem.
        """
        if not self.enabled:
            return None
        ts = time.time()
        with self._lock:
            event = JournalEvent(
                seq=self._seq,
                ts_unix_s=ts,
                mono_s=time.monotonic() - self._epoch,
                kind=kind,
                fields=fields,
            )
            self._seq += 1
            self._tail.append(event)
            if self.path is not None:
                self._write_line(event)
        registry = get_registry()
        registry.counter("journal.events").inc()
        return event

    def _write_line(self, event: JournalEvent) -> None:
        """Append one JSONL line (caller holds the lock)."""
        try:
            line = json.dumps(event.as_dict(), sort_keys=True,
                              default=str) + "\n"
        except (TypeError, ValueError):
            payload = event.as_dict()
            payload["fields"] = {k: str(v)
                                 for k, v in event.fields.items()}
            line = json.dumps(payload, sort_keys=True) + "\n"
        if self._bytes + len(line) > self.max_bytes and self._bytes > 0:
            self._rotate()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as stream:
            stream.write(line)
        self._bytes += len(line)

    def _rotate(self) -> None:
        """Shift backups ``.N-1 -> .N`` (dropping the old ``.N``), move
        the full sink to ``.1``, and start a fresh file."""
        for i in range(self.backups, 1, -1):
            older = self.path.with_name(f"{self.path.name}.{i}")
            newer = self.path.with_name(f"{self.path.name}.{i - 1}")
            if newer.exists():
                newer.replace(older)
        try:
            self.path.replace(self.path.with_name(self.path.name + ".1"))
        except FileNotFoundError:
            pass
        self._bytes = 0
        self.rotations += 1
        get_registry().counter("journal.rotations").inc()

    # -- reading -------------------------------------------------------

    def tail(self, n: Optional[int] = None) -> List[JournalEvent]:
        """The most recent ``n`` events (all retained ones by default)."""
        with self._lock:
            events = list(self._tail)
        if n is not None:
            events = events[-n:]
        return events

    def find(self, kind_prefix: str,
             n: Optional[int] = None) -> List[JournalEvent]:
        """Tail events whose kind matches ``kind_prefix`` (exact name or
        dotted prefix, e.g. ``"serve.fault"``)."""
        matched = [e for e in self.tail()
                   if e.kind == kind_prefix
                   or e.kind.startswith(kind_prefix + ".")]
        if n is not None:
            matched = matched[-n:]
        return matched

    def __len__(self) -> int:
        return len(self._tail)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        sink = str(self.path) if self.path else "memory"
        return (f"Journal({state}, sink={sink}, events={self._seq}, "
                f"rotations={self.rotations})")


def replay(path: Union[str, os.PathLike],
           strict: bool = True) -> Iterator[Dict[str, Any]]:
    """Iterate a journal file's events as dicts, oldest first.

    Rotated segments (``<path>.N`` oldest first, then ``<path>.1``) are
    read before the live file, so the stream covers the whole retained
    history in ``seq`` order however many backup generations the
    journal kept.  With ``strict`` (the default) a malformed line
    raises ValueError naming its file and line number; otherwise
    malformed lines are skipped — the tolerant mode for inspecting a
    journal that was cut off mid-write.
    """
    path = Path(path)
    pattern = re.compile(re.escape(path.name) + r"\.(\d+)$")
    backups = []
    if path.parent.exists():
        for candidate in path.parent.iterdir():
            match = pattern.match(candidate.name)
            if match:
                backups.append((int(match.group(1)), candidate))
    segments = [p for _, p in sorted(backups, reverse=True)] + [path]
    for segment in segments:
        if not segment.exists():
            continue
        with open(segment) as stream:
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    validate_event(event)
                except (json.JSONDecodeError, ValueError) as exc:
                    if strict:
                        raise ValueError(
                            f"{segment}:{lineno}: bad journal line: {exc}"
                        ) from None
                    continue
                yield event


#: Process-wide default journal; disabled until switched on, so
#: un-journaled runs pay one attribute check per would-be event.
_global_journal = Journal(enabled=False)


def get_journal() -> Journal:
    """The process-wide journal (disabled by default)."""
    return _global_journal


def set_journal(journal: Journal) -> Journal:
    """Replace the process-wide journal; returns the previous one."""
    global _global_journal
    previous = _global_journal
    _global_journal = journal
    return previous


def enable_journal(path: Union[str, os.PathLike, None] = None,
                   max_bytes: int = DEFAULT_MAX_BYTES,
                   backups: int = DEFAULT_BACKUPS) -> Journal:
    """Install and return an enabled process-wide journal.

    With ``path`` events also append to that JSONL file (rotating
    through ``backups`` generations past ``max_bytes``); without one
    the journal is memory-only (the bounded tail), which is what the
    ``health`` experiment uses under pytest.
    """
    journal = Journal(path=path, max_bytes=max_bytes, backups=backups,
                      enabled=True)
    set_journal(journal)
    return journal


def disable_journal() -> Journal:
    """Disable the process-wide journal; returns it."""
    return _global_journal.disable()

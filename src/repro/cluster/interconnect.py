"""A virtual-time interconnect model: links, switch queues, topologies.

The cluster tier needs cross-node hops to *cost* something, or the
two-level routing comparison degenerates into the single-store case
with more bookkeeping.  This module prices every hop with a
deterministic queuing model in the spirit of CXL-fabric simulators:

* a :class:`Link` is a directed pipe with a **bandwidth** (serialization
  time = bytes / bandwidth), a **propagation latency**, and a **bounded
  switch queue** in front of it — at most ``queue_depth`` messages may
  wait for the wire; an arrival past that is *dropped* (the replica op
  it carried fails, exactly like a full switch buffer tail-drops);
* a :class:`Fabric` owns the links plus a precomputed path table
  (endpoint → endpoint → list of links) and transfers messages through
  them in **virtual time**: each link remembers when it will next be
  free (``busy_until_s``), so two messages racing for the same wire
  serialize and the loser eats queuing delay.  Congested links therefore
  widen tail latency mechanically, with no randomness anywhere.

Two topology builders cover the shapes the experiments compare:

* :func:`star_fabric` — every node hangs off one central switch
  (frontend → switch → node); the switch uplink is the shared
  bottleneck;
* :func:`fat_tree_fabric` — a 2-level fat tree: leaf switches of
  ``leaf_width`` nodes under one spine; same-leaf traffic never touches
  the spine, cross-leaf traffic pays both tiers.

The model is intentionally single-clock: callers hand ``transfer`` a
monotonically non-decreasing ``now_s`` (the cluster's virtual arrival
clock) and get back the absolute arrival time at the far end, or
``None`` for a drop.  Everything is replayable — same request stream,
same delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Fabric",
    "Link",
    "LinkStats",
    "fat_tree_fabric",
    "star_fabric",
]

#: Default link bandwidth (bytes/second) — 1 GB/s, a modest NIC.
DEFAULT_BANDWIDTH_BPS = 1 << 30

#: Default one-way propagation latency per link (20 microseconds).
DEFAULT_LATENCY_S = 20e-6

#: Default switch queue bound (messages waiting for one link).
DEFAULT_QUEUE_DEPTH = 64


@dataclass(frozen=True)
class LinkStats:
    """One link's lifetime accounting (JSON-friendly)."""

    name: str
    transfers: int
    drops: int
    bytes_moved: int
    busy_s: float  #: total wire-occupied (serialization) time
    queued_s: float  #: total time messages spent waiting for the wire
    peak_queue: int  #: deepest queue observed (messages)

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "transfers": self.transfers,
            "drops": self.drops,
            "bytes_moved": self.bytes_moved,
            "busy_s": self.busy_s,
            "queued_s": self.queued_s,
            "peak_queue": self.peak_queue,
        }


class Link:
    """One directed link with a bounded switch queue in front of it.

    Args:
        name: ``"src->dst"`` label (stats / metrics).
        bandwidth_bps: serialization rate in bytes/second.
        latency_s: one-way propagation delay.
        queue_depth: max messages waiting for the wire; an arrival that
            would queue deeper is dropped.
    """

    def __init__(self, name: str,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 latency_s: float = DEFAULT_LATENCY_S,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.queue_depth = queue_depth
        self.busy_until_s = 0.0
        #: departure times of messages still waiting/serializing, used
        #: to measure queue depth exactly (bounded by queue_depth + 1).
        self._departures: List[float] = []
        self.transfers = 0
        self.drops = 0
        self.bytes_moved = 0
        self.busy_s = 0.0
        self.queued_s = 0.0
        self.peak_queue = 0

    def serialization_s(self, n_bytes: int) -> float:
        return n_bytes / self.bandwidth_bps

    def send(self, now_s: float, n_bytes: int) -> Optional[float]:
        """Push one message onto the link at virtual time ``now_s``.

        Returns the absolute arrival time at the far end, or ``None``
        when the switch queue is full and the message is dropped.
        """
        self._departures = [t for t in self._departures if t > now_s]
        queued = len(self._departures)
        if queued > self.peak_queue:
            self.peak_queue = queued
        if queued >= self.queue_depth:
            self.drops += 1
            return None
        serialize_s = self.serialization_s(n_bytes)
        start_s = max(now_s, self.busy_until_s)
        self.busy_until_s = start_s + serialize_s
        self._departures.append(self.busy_until_s)
        self.transfers += 1
        self.bytes_moved += n_bytes
        self.busy_s += serialize_s
        self.queued_s += start_s - now_s
        return self.busy_until_s + self.latency_s

    def stats(self) -> LinkStats:
        return LinkStats(name=self.name, transfers=self.transfers,
                         drops=self.drops, bytes_moved=self.bytes_moved,
                         busy_s=self.busy_s, queued_s=self.queued_s,
                         peak_queue=self.peak_queue)

    def __repr__(self) -> str:
        return (f"Link({self.name!r}, {self.bandwidth_bps:.3g} B/s, "
                f"{self.latency_s * 1e6:.0f}us, q<={self.queue_depth})")


class Fabric:
    """A set of links plus the path table that strings them together.

    Args:
        links: every directed link in the topology, keyed by name.
        paths: ``(src, dst) -> [link, ...]`` hop sequences; endpoints
            not in the table cannot talk.
        topology: label recorded in stats (``"star"`` / ``"fat-tree"``).
    """

    def __init__(self, links: Dict[str, Link],
                 paths: Dict[Tuple[str, str], List[Link]],
                 topology: str = "custom"):
        self.links = dict(links)
        self.paths = dict(paths)
        self.topology = topology
        self.transfers = 0
        self.drops = 0

    def path(self, src: str, dst: str) -> List[Link]:
        try:
            return self.paths[(src, dst)]
        except KeyError:
            raise KeyError(f"no path {src!r} -> {dst!r} in "
                           f"{self.topology} fabric") from None

    def hops(self, src: str, dst: str) -> int:
        """Links on the ``src -> dst`` path (0 for self-transfers)."""
        return len(self.path(src, dst))

    def transfer(self, src: str, dst: str, n_bytes: int,
                 now_s: float) -> Optional[float]:
        """Move ``n_bytes`` from ``src`` to ``dst`` starting at
        ``now_s``; returns the arrival time, or ``None`` if any hop's
        queue tail-dropped the message.  A self-transfer is free."""
        if src == dst:
            return now_s
        at_s = now_s
        for link in self.path(src, dst):
            arrival = link.send(at_s, n_bytes)
            if arrival is None:
                self.drops += 1
                return None
            at_s = arrival
        self.transfers += 1
        return at_s

    def round_trip(self, src: str, dst: str, request_bytes: int,
                   response_bytes: int, now_s: float,
                   service_s: float = 0.0) -> Optional[float]:
        """Request out, ``service_s`` at the far end, response back.
        Returns the completion time at ``src`` or ``None`` on a drop in
        either direction."""
        arrival = self.transfer(src, dst, request_bytes, now_s)
        if arrival is None:
            return None
        return self.transfer(dst, src, response_bytes,
                             arrival + service_s)

    def round_trip_breakdown(self, src: str, dst: str, request_bytes: int,
                             response_bytes: int,
                             service_s: float = 0.0) -> Dict[str, float]:
        """Ideal (queue-free) cost decomposition of one round trip.

        Splits the floor price of ``src -> dst -> src`` into request /
        response serialization, propagation, and far-end service time
        — the attribution baseline a *measured* round trip is compared
        against: measured minus this total is pure queuing delay.
        Reads only static link parameters; never mutates fabric state.
        """
        def leg(a: str, b: str, n_bytes: int) -> Tuple[float, float]:
            if a == b:
                return 0.0, 0.0
            hops = self.path(a, b)
            return (sum(link.serialization_s(n_bytes) for link in hops),
                    sum(link.latency_s for link in hops))

        req_ser, req_prop = leg(src, dst, request_bytes)
        resp_ser, resp_prop = leg(dst, src, response_bytes)
        breakdown = {
            "request_serialize_s": req_ser,
            "request_propagate_s": req_prop,
            "service_s": service_s,
            "response_serialize_s": resp_ser,
            "response_propagate_s": resp_prop,
        }
        breakdown["total_s"] = sum(breakdown.values())
        return breakdown

    def stats(self, elapsed_s: Optional[float] = None) -> Dict[str, object]:
        """Per-link accounting plus utilization when ``elapsed_s`` (the
        virtual timespan observed) is given."""
        per_link = []
        for link in self.links.values():
            row = link.stats().as_dict()
            if elapsed_s and elapsed_s > 0:
                row["utilization"] = min(1.0, link.busy_s / elapsed_s)
            per_link.append(row)
        return {
            "topology": self.topology,
            "transfers": self.transfers,
            "drops": self.drops,
            "links": per_link,
        }

    def __repr__(self) -> str:
        return (f"Fabric({self.topology!r}, links={len(self.links)}, "
                f"transfers={self.transfers}, drops={self.drops})")


def _duplex(links: Dict[str, Link], a: str, b: str, **kw) -> Tuple[Link, Link]:
    """Create (and register) the two directed halves of one cable."""
    fwd = Link(f"{a}->{b}", **kw)
    rev = Link(f"{b}->{a}", **kw)
    links[fwd.name] = fwd
    links[rev.name] = rev
    return fwd, rev


def node_endpoint(node_id: int) -> str:
    """Canonical endpoint name for store node ``node_id``."""
    return f"node{node_id}"

#: Endpoint name of the coordinating frontend.
FRONTEND = "frontend"


def star_fabric(n_nodes: int,
                bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                latency_s: float = DEFAULT_LATENCY_S,
                queue_depth: int = DEFAULT_QUEUE_DEPTH) -> Fabric:
    """Every node (and the frontend) hangs off one central switch.

    Paths: ``frontend -> sw -> node_i`` (2 links each way) and
    ``node_i -> sw -> node_j`` for node-to-node re-replication traffic.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    links: Dict[str, Link] = {}
    kw = dict(bandwidth_bps=bandwidth_bps, latency_s=latency_s,
              queue_depth=queue_depth)
    sw = "sw0"
    up: Dict[str, Link] = {}
    down: Dict[str, Link] = {}
    for endpoint in [FRONTEND] + [node_endpoint(i) for i in range(n_nodes)]:
        to_sw, from_sw = _duplex(links, endpoint, sw, **kw)
        up[endpoint] = to_sw
        down[endpoint] = from_sw
    paths: Dict[Tuple[str, str], List[Link]] = {}
    endpoints = list(up)
    for src in endpoints:
        for dst in endpoints:
            if src != dst:
                paths[(src, dst)] = [up[src], down[dst]]
    return Fabric(links, paths, topology="star")


def fat_tree_fabric(n_nodes: int, leaf_width: int = 4,
                    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                    latency_s: float = DEFAULT_LATENCY_S,
                    queue_depth: int = DEFAULT_QUEUE_DEPTH) -> Fabric:
    """2-level fat tree: nodes under leaf switches, leaves under one
    spine, the frontend on the spine.

    Same-leaf node pairs shortcut through their leaf (2 links); every
    other pair pays the full node → leaf → spine → leaf → node climb.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if leaf_width < 1:
        raise ValueError("leaf_width must be >= 1")
    links: Dict[str, Link] = {}
    kw = dict(bandwidth_bps=bandwidth_bps, latency_s=latency_s,
              queue_depth=queue_depth)
    spine = "spine"
    leaf_of: Dict[str, str] = {}
    up: Dict[str, Link] = {}
    down: Dict[str, Link] = {}
    leaf_up: Dict[str, Link] = {}
    leaf_down: Dict[str, Link] = {}
    n_leaves = (n_nodes + leaf_width - 1) // leaf_width
    for leaf_id in range(n_leaves):
        leaf = f"leaf{leaf_id}"
        to_spine, from_spine = _duplex(links, leaf, spine, **kw)
        leaf_up[leaf] = to_spine
        leaf_down[leaf] = from_spine
    for i in range(n_nodes):
        endpoint = node_endpoint(i)
        leaf = f"leaf{i // leaf_width}"
        leaf_of[endpoint] = leaf
        to_leaf, from_leaf = _duplex(links, endpoint, leaf, **kw)
        up[endpoint] = to_leaf
        down[endpoint] = from_leaf
    # The frontend attaches directly to the spine.
    fe_up, fe_down = _duplex(links, FRONTEND, spine, **kw)
    paths: Dict[Tuple[str, str], List[Link]] = {}
    nodes = [node_endpoint(i) for i in range(n_nodes)]
    for src in nodes:
        paths[(FRONTEND, src)] = [fe_up, leaf_down[leaf_of[src]], down[src]]
        paths[(src, FRONTEND)] = [up[src], leaf_up[leaf_of[src]], fe_down]
        for dst in nodes:
            if src == dst:
                continue
            if leaf_of[src] == leaf_of[dst]:
                paths[(src, dst)] = [up[src], down[dst]]
            else:
                paths[(src, dst)] = [up[src], leaf_up[leaf_of[src]],
                                     leaf_down[leaf_of[dst]], down[dst]]
    return Fabric(links, paths, topology="fat-tree")


#: topology name -> builder, for config-driven construction.
TOPOLOGIES = {
    "star": star_fabric,
    "fat-tree": fat_tree_fabric,
}


def make_fabric(topology: str, n_nodes: int, **kwargs) -> Fabric:
    """Build a named topology over ``n_nodes`` store nodes."""
    try:
        builder = TOPOLOGIES[topology]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise KeyError(
            f"unknown topology {topology!r}; known: {known}") from None
    return builder(n_nodes, **kwargs)

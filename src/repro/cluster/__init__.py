"""repro.cluster: a multi-node tier over the sharded store.

The paper's prime-indexing math applied one level up: N store nodes
behind a two-level router (key → node, then key → shard inside the
node's own :class:`~repro.store.ShardedStore`), with successor-walk
replication, quorum reads/writes with read-repair, an explicit node
failure/recovery lifecycle, bounded re-replication after crash-loss,
and a virtual-time interconnect model that makes every cross-node hop
cost something.

Layer layout::

    interconnect  links, switch queues, star / fat-tree topologies
    node          StoreNode lifecycle (up/degraded/down/recovering)
    router        ClusterRouter: two RoutingTable levels + replicas()
    faults        NodeFaultInjector: seeded kills and replica errors
    engine        Cluster: replicated ops, quorums, journal, metrics
    rereplicate   ReReplicator: bounded post-crash drain

Entry point::

    from repro.cluster import Cluster, ReplicationConfig

    cluster = Cluster(n_nodes=8, node_scheme="pmod",
                      shard_scheme="pmod", topology="star",
                      replication=ReplicationConfig(replicas=2))
    cluster.put("user:1", b"...")     # fans out to the replica set
    cluster.fail_node(3)              # crash-loss; reads keep serving
    cluster.recover_node(3)           # bounded re-replication drain
"""

from repro.cluster.engine import Cluster, ClusterTelemetry, ReplicationConfig
from repro.cluster.faults import InjectedNodeFault, NodeFaultInjector
from repro.cluster.interconnect import (
    Fabric,
    Link,
    LinkStats,
    TOPOLOGIES,
    fat_tree_fabric,
    make_fabric,
    star_fabric,
)
from repro.cluster.node import NodeDownError, NodeState, StoreNode
from repro.cluster.rereplicate import ReReplicationReport, ReReplicator
from repro.cluster.router import ClusterRouter, ComposedIndexing

__all__ = [
    "Cluster",
    "ClusterRouter",
    "ClusterTelemetry",
    "ComposedIndexing",
    "Fabric",
    "InjectedNodeFault",
    "Link",
    "LinkStats",
    "NodeDownError",
    "NodeFaultInjector",
    "NodeState",
    "ReReplicationReport",
    "ReReplicator",
    "ReplicationConfig",
    "StoreNode",
    "TOPOLOGIES",
    "fat_tree_fabric",
    "make_fabric",
    "star_fabric",
]

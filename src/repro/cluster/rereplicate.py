"""Bounded re-replication: stream a recovered node's keys back.

When a node crashes it loses its contents (crash-loss); when it comes
back it owes the cluster every key whose replica set includes it.  The
:class:`ReReplicator` is the node-tier sibling of the store's
:class:`~repro.store.migrate.Migrator`: the same bounded-budget step
loop, one level up — instead of moving keys between shard fleets inside
one store, it copies a node's owed replica set back from its live
peers, at most ``budget`` keys per :meth:`step`, journaling one
``cluster.rereplicate`` event per chunk so the drain is observable and
resumable in the event stream.

Two properties make the owed set recomputable rather than logged:

* replica **placement is a pure function of (key, node table)** —
  :meth:`~repro.cluster.router.ClusterRouter.replicas` never consults
  up/down state — so scanning the live peers for keys whose placement
  includes the recovering node reconstructs exactly what was lost;
* values are **versioned**, so when two peers hold different copies
  (a write raced the crash) the freshest wins, and keys the recovering
  node already reacquired via read-repair or fresh writes are skipped
  rather than clobbered.

Copies are priced on the :class:`~repro.cluster.interconnect.Fabric`
as peer → node bulk transfers (one per source peer per chunk), so a
recovery drain congests the same links serving traffic is using —
which is why the drain is budgeted at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.obs import MetricsRegistry, get_journal, get_registry
from repro.cluster.interconnect import node_endpoint
from repro.cluster.node import NodeState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.engine import Cluster

__all__ = ["ReReplicationReport", "ReReplicator"]

#: Sentinel for "target does not hold this key".
_MISS = object()


@dataclass(frozen=True)
class ReReplicationReport:
    """Outcome of one full re-replication drain."""

    node: int
    copied: int  #: keys streamed back to the recovering node
    skipped: int  #: owed keys the node already held fresh enough
    scanned: int  #: peer entries examined while computing the owed set
    chunks: int  #: bounded steps the drain took
    budget: int
    bytes_moved: int  #: modeled payload bytes charged to the fabric

    def as_dict(self) -> Dict[str, int]:
        return {
            "node": self.node,
            "copied": self.copied,
            "skipped": self.skipped,
            "scanned": self.scanned,
            "chunks": self.chunks,
            "budget": self.budget,
            "bytes_moved": self.bytes_moved,
        }


class ReReplicator:
    """Streams one recovering node's owed replica set from its peers.

    Args:
        cluster: the owning :class:`~repro.cluster.engine.Cluster`.
        node_id: the recovering node (must be in the ``recovering``
            state — the window where it is writable again).
        budget: max keys copied per :meth:`step`.
    """

    def __init__(self, cluster: "Cluster", node_id: int,
                 budget: int = 128,
                 registry: Optional[MetricsRegistry] = None):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.cluster = cluster
        self.node_id = node_id
        self.budget = budget
        node = cluster.nodes[node_id]
        if node.state is not NodeState.RECOVERING:
            raise ValueError(
                f"node {node_id} is {node.state.value}, not recovering")
        self._registry = get_registry() if registry is None else registry
        self._counter = self._registry.counter(
            "cluster.rereplicated_keys", node=node_id)
        self.copied = 0
        self.skipped = 0
        self.scanned = 0
        self.chunks = 0
        self.bytes_moved = 0
        #: owed key -> (source node id, (version, value)); computed once
        #: up front — placement is liveness-independent, so the owed set
        #: is stable for the whole drain.
        self._pending: List[Tuple[int, int, Tuple[int, Any]]] = (
            self._owed())

    def _owed(self) -> List[Tuple[int, int, Tuple[int, Any]]]:
        """Scan live peers for keys whose replica placement includes
        the recovering node; freshest version wins across peers, and
        keys the node already holds at least as fresh are skipped."""
        cluster = self.cluster
        replicas = cluster.replication.replicas
        target = cluster.nodes[self.node_id]
        freshest: Dict[int, Tuple[int, Tuple[int, Any]]] = {}
        for peer in cluster.nodes:
            if peer.node_id == self.node_id or not peer.live:
                continue
            for shard in peer.store.shards:
                for key, stamped in shard.items():
                    self.scanned += 1
                    if self.node_id not in cluster.router.replicas(
                            key, replicas):
                        continue
                    held = freshest.get(key)
                    if held is None or stamped[0] > held[1][0]:
                        freshest[key] = (peer.node_id, stamped)
        pending: List[Tuple[int, int, Tuple[int, Any]]] = []
        for key, (source, stamped) in sorted(freshest.items()):
            mine = target.store.get(key, _MISS)
            if mine is not _MISS and mine[0] >= stamped[0]:
                self.skipped += 1
                continue
            pending.append((key, source, stamped))
        return pending

    @property
    def remaining(self) -> int:
        return len(self._pending)

    def step(self) -> int:
        """Copy up to ``budget`` owed keys; returns the count moved
        (0 = drain complete).  Each chunk charges one bulk transfer per
        source peer to the fabric and journals ``cluster.rereplicate``."""
        if not self._pending:
            return 0
        cluster = self.cluster
        chunk, self._pending = (self._pending[:self.budget],
                                self._pending[self.budget:])
        target = cluster.nodes[self.node_id]
        per_source: Dict[int, int] = {}
        for key, source, stamped in chunk:
            target.put(key, stamped)
            per_source[source] = (per_source.get(source, 0)
                                  + cluster.payload_bytes)
        # Bulk transfers congest the same links serving traffic uses;
        # a tail-drop here is absorbed as (un-modeled) retry, the copy
        # itself already happened above.
        now = cluster.virtual_now_s
        for source, n_bytes in per_source.items():
            cluster.fabric.transfer(node_endpoint(source),
                                    node_endpoint(self.node_id),
                                    n_bytes, now)
            self.bytes_moved += n_bytes
        cluster._now_s += cluster.tick_s
        moved = len(chunk)
        self.copied += moved
        self.chunks += 1
        cluster.counts["rereplicated_keys"] += moved
        self._counter.inc(moved)
        get_journal().emit("cluster.rereplicate", node=self.node_id,
                           moved=moved, total_moved=self.copied,
                           remaining=self.remaining, budget=self.budget)
        return moved

    def run(self) -> ReReplicationReport:
        """Drain to completion; returns the final report."""
        while self.step():
            pass
        return self.report()

    def report(self) -> ReReplicationReport:
        return ReReplicationReport(
            node=self.node_id, copied=self.copied, skipped=self.skipped,
            scanned=self.scanned, chunks=self.chunks, budget=self.budget,
            bytes_moved=self.bytes_moved)

    def __repr__(self) -> str:
        return (f"ReReplicator(node={self.node_id}, budget={self.budget}, "
                f"copied={self.copied}, remaining={self.remaining})")

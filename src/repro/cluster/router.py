"""Two-level prime routing: key → node, then key → shard in the node.

:class:`ClusterRouter` composes two :class:`~repro.store.routing.
RoutingTable` levels.  The outer table picks the **node** (the paper's
indexing math applied one level up the hierarchy — slice selection, in
sliced-LLC terms); each node's own table then picks the **shard** inside
that node's :class:`~repro.store.ShardedStore`.  Both levels hash the
same canonical 64-bit key, so the composed map ``key → (node, shard)``
inherits the schemes' algebra:

* **pMod over pMod** with distinct primes ``p_n`` (nodes) and ``p_s``
  (shards) is, by CRT, one modulo by ``p_n · p_s`` — sequence invariant
  (§3 Property 2) and conflict-free on exactly the strides the paper
  proves for one level;
* **pow2 over pow2** is one modulo by the larger power of two — also
  invariant, but carrying the full power-of-two conflict pathology at
  *both* levels simultaneously (the same low key bits select node and
  shard, so a bad stride hot-spots one shard of one node);
* mixed stacks sit in between, which is the design space the
  ``cluster`` experiment sweeps.

**Replication placement** is successor-walk on the node ring: a key's
replica set is its primary node plus the next ``r - 1`` distinct
non-quarantined nodes clockwise.  Placement is a pure function of
``(key, node table)`` — independent of which nodes are currently down —
so a recovering node can recompute exactly which keys it owes from its
peers' contents.

Node **quarantine** reuses the routing layer's probe semantics: the
outer table is derived with :meth:`~repro.store.routing.RoutingTable.
with_quarantined`, bumping the cluster epoch, and both scalar and
vectorized routing agree on the re-routed assignment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.store.routing import RoutingTable
from repro.store.selector import StoreKey, canonical_key

__all__ = ["ClusterRouter", "ComposedIndexing"]


class ComposedIndexing:
    """Flat analysis adapter over a :class:`ClusterRouter`.

    Duck-types the :mod:`repro.hashing.analysis` surface (``n_sets`` /
    ``index`` / ``index_array``) by flattening ``(node, shard)`` to one
    slot id (``node_offset[node] + shard``), so balance, concentration
    and sequence-invariance checkers accept the *composed* two-level
    mapping unchanged.  Slot ids are dense over usable shards — no
    holes for fragmented (pMod) fleets — so Eq. 1 over flat counts is
    the honest composed balance.
    """

    def __init__(self, router: "ClusterRouter"):
        self._router = router
        counts = [t.n_shards for t in router.shard_tables]
        self._offsets = np.concatenate(
            ([0], np.cumsum(counts[:-1]))).astype(np.int64)
        self.n_sets = int(sum(counts))
        self.n_sets_physical = self.n_sets
        self.name = (f"{router.node_scheme}x{router.shard_scheme} "
                     f"({router.n_nodes} nodes)")

    def index(self, block_address: int) -> int:
        node, shard = self._router.route(block_address)
        return int(self._offsets[node]) + shard

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        nodes, shards = self._router.route_array(block_addresses)
        return self._offsets[nodes] + shards


class ClusterRouter:
    """Composes a node-level table with one shard table per node.

    Args:
        node_table: the outer key → node :class:`RoutingTable`; its
            ``n_shards`` is the usable node count, its quarantine set
            the nodes currently routed around, its ``epoch_id`` the
            cluster routing epoch.
        shard_tables: inner key → shard table for each node, indexed by
            node id (one per usable node).
    """

    def __init__(self, node_table: RoutingTable,
                 shard_tables: Sequence[RoutingTable]):
        if len(shard_tables) != node_table.n_shards:
            raise ValueError(
                f"need one shard table per node: {node_table.n_shards} "
                f"nodes, {len(shard_tables)} tables")
        self.node_table = node_table
        self.shard_tables = list(shard_tables)

    # -- identity -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Usable node count (pMod leaves part of a pow2 fleet idle)."""
        return self.node_table.n_shards

    @property
    def node_scheme(self) -> str:
        return self.node_table.scheme

    @property
    def shard_scheme(self) -> str:
        return self.shard_tables[0].scheme

    @property
    def epoch(self) -> int:
        """Cluster routing epoch (the outer table's epoch id)."""
        return self.node_table.epoch_id

    @property
    def quarantined_nodes(self) -> frozenset:
        return self.node_table.quarantined

    # -- routing --------------------------------------------------------

    def node(self, key: StoreKey) -> int:
        """Node id ``key`` routes to (honoring node quarantine)."""
        return self.node_table.shard(key)

    def route(self, key: StoreKey) -> Tuple[int, int]:
        """``(node, shard)`` for one key under the current epoch."""
        canonical = canonical_key(key)
        node = self.node_table.shard(canonical)
        return node, self.shard_tables[node].shard(canonical)

    def route_array(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized two-level routing of an integer key batch.

        The inner level dispatches per distinct node, so a batch costs
        one vectorized outer pass plus one inner pass per *occupied*
        node — not per key.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        nodes = self.node_table.shard_array(keys)
        shards = np.empty(len(keys), dtype=np.int64)
        for node in np.unique(nodes):
            mask = nodes == node
            shards[mask] = self.shard_tables[int(node)].shard_array(
                keys[mask])
        return nodes.astype(np.int64), shards

    def replicas(self, key: StoreKey, r: int) -> List[int]:
        """The ``r``-node replica set: primary plus clockwise
        successors on the node ring, skipping quarantined slots.

        Deterministic in ``(key, node table)`` only — node up/down
        state never shifts placement, which is what lets a recovering
        node recompute its owed keys.  ``r`` is capped at the
        non-quarantined node count.
        """
        if r < 1:
            raise ValueError("replica count must be >= 1")
        table = self.node_table
        primary = table.shard(key)
        placement: List[int] = []
        node = primary
        for _ in range(table.n_shards):
            if node not in table.quarantined:
                placement.append(node)
                if len(placement) == r:
                    break
            node = (node + 1) % table.n_shards
        return placement

    # -- analysis / derivation -----------------------------------------

    @property
    def composed(self) -> ComposedIndexing:
        """Flat (node, shard) → slot adapter for the analysis layer."""
        return ComposedIndexing(self)

    def with_node_quarantined(self,
                              node_ids: Iterable[int]) -> "ClusterRouter":
        """Successor router routing around ``node_ids`` (outer epoch
        bump; shard tables untouched)."""
        table = self.node_table.with_quarantined(node_ids)
        if table is self.node_table:
            return self
        return ClusterRouter(table, self.shard_tables)

    def without_node_quarantined(
            self, node_ids: Iterable[int] = None) -> "ClusterRouter":
        """Successor router healing some (default all) quarantined
        nodes."""
        table = self.node_table.without_quarantined(node_ids)
        if table is self.node_table:
            return self
        return ClusterRouter(table, self.shard_tables)

    def describe(self) -> Dict[str, object]:
        return {
            "node_scheme": self.node_scheme,
            "shard_scheme": self.shard_scheme,
            "n_nodes": self.n_nodes,
            "epoch": self.epoch,
            "quarantined_nodes": sorted(self.node_table.quarantined),
            "shards_per_node": [t.n_shards for t in self.shard_tables],
        }

    def __repr__(self) -> str:
        return (f"ClusterRouter({self.node_scheme!r} over "
                f"{self.n_nodes} nodes -> {self.shard_scheme!r} over "
                f"{self.shard_tables[0].n_shards} shards, "
                f"epoch={self.epoch})")

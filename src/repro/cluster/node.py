"""Store nodes: one `ShardedStore` plus an explicit failure lifecycle.

A :class:`StoreNode` wraps one :class:`~repro.store.ShardedStore` (the
inner level of the two-level prime router) behind a small state
machine::

    up ──► degraded ──► up          (slow NIC / hot neighbor; serves,
     │         │                     but every op pays a penalty)
     └─────────┴──► down ──► recovering ──► up

``down`` models a crash: the node's in-memory contents are **lost** —
that is what makes replication and re-replication load-bearing rather
than decorative.  ``recovering`` is the window where the
:class:`~repro.cluster.rereplicate.ReReplicator` streams the node's
replica set back from its peers; the node accepts writes (both repair
copies and fresh traffic) and serves reads best-effort (a miss during
recovery falls through to the other replicas at the cluster layer).

State transitions are validated — a node cannot jump from ``down``
straight to ``up`` — and every entry into ``down``/``up`` is the
cluster's journal event (``cluster.node_down`` / ``cluster.node_up``),
emitted by the :class:`~repro.cluster.engine.Cluster` that owns the
fleet so the event carries cluster context (live counts, epoch).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Optional

from repro.store import ShardedStore

__all__ = ["NodeDownError", "NodeState", "StoreNode"]


class NodeState(str, Enum):
    """Lifecycle states of one store node."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"
    RECOVERING = "recovering"


#: Legal state transitions (see module docstring for the diagram).
_TRANSITIONS: Dict[NodeState, FrozenSet[NodeState]] = {
    NodeState.UP: frozenset({NodeState.DEGRADED, NodeState.DOWN}),
    NodeState.DEGRADED: frozenset({NodeState.UP, NodeState.DOWN}),
    NodeState.DOWN: frozenset({NodeState.RECOVERING}),
    NodeState.RECOVERING: frozenset({NodeState.UP, NodeState.DOWN}),
}

#: Gauge encoding of each state (``cluster.node.state`` series).
STATE_CODES = {
    NodeState.UP: 0,
    NodeState.DEGRADED: 1,
    NodeState.DOWN: 2,
    NodeState.RECOVERING: 3,
}


class NodeDownError(RuntimeError):
    """Raised when an operation reaches a node in the ``down`` state."""


class StoreNode:
    """One cluster member: a sharded store with a failure lifecycle.

    Args:
        node_id: position on the node ring (also the successor-walk
            identity replication placement is computed from).
        store: the node's :class:`ShardedStore` (the inner routing
            level).  Build with ``routing=RoutingTable.create(scheme,
            n_shards)`` for exact prime fleets.
        service_s: modeled per-op service time, charged to the
            interconnect clock on top of the fabric hops.
        degraded_penalty_s: extra service time while ``degraded``.
        registry: the node's *own* metrics registry — each cluster
            member is a separate process in the model, so its metrics
            are private until a federation scrape pulls them.  None
            leaves the node unscrapable (pre-federation behaviour).
    """

    def __init__(self, node_id: int, store: ShardedStore,
                 service_s: float = 5e-6,
                 degraded_penalty_s: float = 250e-6,
                 registry=None):
        if node_id < 0:
            raise ValueError("node_id must be >= 0")
        if service_s < 0 or degraded_penalty_s < 0:
            raise ValueError("service times must be >= 0")
        self.node_id = node_id
        self.store = store
        self.service_s = service_s
        self.degraded_penalty_s = degraded_penalty_s
        self.registry = registry
        self._snapshot_version = 0
        self.state = NodeState.UP
        self.failures = 0
        self.recoveries = 0

    # -- state machine --------------------------------------------------

    @property
    def live(self) -> bool:
        """Whether the node can serve any traffic at all (not down)."""
        return self.state is not NodeState.DOWN

    @property
    def writable(self) -> bool:
        """Whether writes may land here (everything but down)."""
        return self.state is not NodeState.DOWN

    def _transition(self, target: NodeState) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"node {self.node_id}: illegal transition "
                f"{self.state.value} -> {target.value}")
        self.state = target

    def degrade(self) -> "StoreNode":
        """Mark the node slow (serves, but pays the degraded penalty)."""
        self._transition(NodeState.DEGRADED)
        return self

    def restore(self) -> "StoreNode":
        """Clear a degraded state back to healthy."""
        self._transition(NodeState.UP)
        return self

    def fail(self) -> "StoreNode":
        """Crash the node: contents are lost, traffic is refused.

        Reachable from every serving state (up, degraded, recovering —
        a node can die again mid-recovery)."""
        self._transition(NodeState.DOWN)
        self.failures += 1
        self._wipe()
        return self

    def begin_recovery(self) -> "StoreNode":
        """Enter ``recovering``: writable (re-replication + fresh
        writes), readable best-effort."""
        self._transition(NodeState.RECOVERING)
        return self

    def complete_recovery(self) -> "StoreNode":
        """Recovery done: back to full membership."""
        self._transition(NodeState.UP)
        self.recoveries += 1
        return self

    def _wipe(self) -> None:
        """Crash-loss: the store's shard fleet restarts empty, keeping
        the same routing table (same scheme, same shard count)."""
        self.store.wipe()

    # -- serving --------------------------------------------------------

    def service_time(self) -> float:
        """Modeled service time for one op in the current state."""
        if self.state is NodeState.DEGRADED:
            return self.service_s + self.degraded_penalty_s
        return self.service_s

    def _check_live(self) -> None:
        if self.state is NodeState.DOWN:
            raise NodeDownError(f"node {self.node_id} is down")

    def get(self, key, default=None):
        self._check_live()
        return self.store.get(key, default)

    def put(self, key, value):
        self._check_live()
        return self.store.put(key, value)

    def delete(self, key) -> bool:
        self._check_live()
        return self.store.delete(key)

    def contains(self, key) -> bool:
        self._check_live()
        return self.store.contains(key)

    @property
    def occupancy(self) -> int:
        return len(self.store)

    def metrics_snapshot(self) -> Dict[str, object]:
        """The node's scrape endpoint: a versioned metrics snapshot.

        The standard snapshot document plus a ``fed`` block carrying
        the node id, a monotonically increasing per-node version (so
        the aggregator can detect and skip stale re-deliveries), and
        the node's lifecycle state.  Raises :class:`NodeDownError`
        when down — a crashed node's exporter is gone too, which is
        exactly the staleness the federation layer must surface.
        """
        self._check_live()
        if self.registry is None:
            raise RuntimeError(
                f"node {self.node_id} has no registry to scrape "
                f"(build the cluster with node_registries=True)")
        from repro.obs.sinks import metrics_snapshot
        self._snapshot_version += 1
        doc = metrics_snapshot(self.registry)
        doc["fed"] = {
            "node": self.node_id,
            "version": self._snapshot_version,
            "state": self.state.value,
        }
        return doc

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for telemetry and journal payloads."""
        return {
            "node_id": self.node_id,
            "state": self.state.value,
            "scheme": self.store.scheme,
            "n_shards": self.store.n_shards,
            "occupancy": self.occupancy,
            "failures": self.failures,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:
        return (f"StoreNode(id={self.node_id}, state={self.state.value}, "
                f"{self.store.scheme}/{self.store.n_shards} shards, "
                f"occupancy={self.occupancy})")

"""The cluster tier: N store nodes, two-level routing, replication.

:class:`Cluster` is the multi-node analogue of
:class:`~repro.store.ShardedStore`: every ``get``/``put``/``delete``
routes through a :class:`~repro.cluster.router.ClusterRouter` (key →
node → shard), fans out to the key's ``R``-node replica set, and pays
for every cross-node hop through the :class:`~repro.cluster.
interconnect.Fabric`'s virtual-time queuing model.  Semantics:

* **writes** carry a monotonically increasing version and land on every
  *writable* replica (a down node just misses the write); fewer than
  ``write_quorum`` acks is a **quorum miss** — journaled
  (``cluster.quorum_miss``), counted, and still applied best-effort to
  the replicas that did respond;
* **reads** consult the whole replica set, serve the freshest version,
  and **read-repair** any reached replica that was missing or stale —
  so a recovered node converges from read traffic as well as from the
  explicit re-replication drain;
* **deletes** apply to every writable replica.  Crash-loss makes this
  safe against resurrection: a down node lost its contents entirely, so
  nothing stale survives to come back.

Node failure and recovery are first-class lifecycle transitions
(:class:`~repro.cluster.node.NodeState`), drivable by hand or by a
seeded :class:`~repro.cluster.faults.NodeFaultInjector` schedule, each
journaled (``cluster.node_down`` / ``cluster.node_up``) with cluster
context.  Recovery streams the node's owed replica set back from its
peers in bounded chunks (:class:`~repro.cluster.rereplicate.
ReReplicator`, ``cluster.rereplicate`` events).

The class also duck-types the store surface the serving layer binds to
(``n_shards``/``epoch``/``scheme``/``shard_for``/``routing`` plus the
three ops), so a :class:`~repro.serve.Frontend` placed over a Cluster
batches **per node** — the frontend routes to nodes, not shards, and
the node's own table finishes the job.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

import numpy as np

from repro.hashing.analysis import balance_from_counts
from repro.obs import (
    HeavyHitterTracker,
    MetricsRegistry,
    get_collector,
    get_journal,
    get_registry,
)
from repro.cluster.faults import InjectedNodeFault, NodeFaultInjector
from repro.cluster.interconnect import (
    FRONTEND,
    Fabric,
    make_fabric,
    node_endpoint,
)
from repro.cluster.node import NodeState, STATE_CODES, StoreNode
from repro.cluster.router import ClusterRouter
from repro.store import RoutingTable, ShardedStore
from repro.store.selector import StoreKey, canonical_key

__all__ = ["Cluster", "ClusterTelemetry", "ReplicationConfig"]

#: Sentinel distinguishing "not stored" from a stored ``None``.
_MISS = object()

#: Modeled wire cost of a request/ack control message (bytes).
CONTROL_BYTES = 64

#: Sim-latency charged to an op that reached no replica at all (the
#: caller's timeout, in virtual-clock terms).
FAILED_OP_LATENCY_S = 2e-3

#: Bounded window of per-op simulated latencies (tail percentiles).
LATENCY_WINDOW = 1 << 16

#: 1-in-N op sampling for wall-clock stage attribution (the cluster's
#: op path is synchronous and hot; sampling keeps tracing cheap).
TRACE_EVERY = 16

#: Space-saving heavy-hitter slots tracked per cluster (top routed
#: keys, attributed to their primary node).
HOT_KEYS = 8


@dataclass(frozen=True)
class ReplicationConfig:
    """Replica placement and quorum sizes.

    Attributes:
        replicas: copies per key (successor placement on the node ring).
        write_quorum: acks a put needs to count as clean (fewer is a
            journaled quorum miss, still applied best-effort).
        read_quorum: replica responses a get needs; with successor
            placement and a single node down, ``read_quorum=1`` keeps
            every fully-replicated key readable.
    """

    replicas: int = 2
    write_quorum: int = 1
    read_quorum: int = 1

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not 1 <= self.write_quorum <= self.replicas:
            raise ValueError("write_quorum must be within [1, replicas]")
        if not 1 <= self.read_quorum <= self.replicas:
            raise ValueError("read_quorum must be within [1, replicas]")

    @classmethod
    def majority(cls, replicas: int) -> "ReplicationConfig":
        """R replicas with majority write quorum (R=3 → W=2)."""
        return cls(replicas=replicas, write_quorum=replicas // 2 + 1)


@dataclass(frozen=True)
class ClusterTelemetry:
    """One snapshot of cluster health, load shape, and fabric cost."""

    node_scheme: str
    shard_scheme: str
    n_nodes: int
    live_nodes: int
    epoch: int
    ops: int
    puts: int
    gets: int
    deletes: int
    quorum_misses: int
    failed_reads: int
    read_repairs: int
    replica_errors: int
    rereplicated_keys: int
    occupancy: int
    evictions: int
    node_balance: float
    tail_node_load: float
    sim_p50_s: float
    sim_p99_s: float
    fabric_drops: int
    node_accesses: List[int] = field(default_factory=list)
    node_states: List[str] = field(default_factory=list)
    top_keys: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node_scheme": self.node_scheme,
            "shard_scheme": self.shard_scheme,
            "n_nodes": self.n_nodes,
            "live_nodes": self.live_nodes,
            "epoch": self.epoch,
            "ops": self.ops,
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "quorum_misses": self.quorum_misses,
            "failed_reads": self.failed_reads,
            "read_repairs": self.read_repairs,
            "replica_errors": self.replica_errors,
            "rereplicated_keys": self.rereplicated_keys,
            "occupancy": self.occupancy,
            "evictions": self.evictions,
            "node_balance": self.node_balance,
            "tail_node_load": self.tail_node_load,
            "sim_p50_s": self.sim_p50_s,
            "sim_p99_s": self.sim_p99_s,
            "fabric_drops": self.fabric_drops,
            "node_accesses": list(self.node_accesses),
            "node_states": list(self.node_states),
            "top_keys": list(self.top_keys),
        }


class Cluster:
    """N sharded store nodes behind a two-level prime router.

    Args:
        n_nodes: physical node count; prime-capable node schemes use
            the largest prime below a power of two (Table 1's
            fragmentation, one level up), exact primes are honored.
        node_scheme: outer key → node scheme
            (:data:`~repro.store.selector.STORE_SCHEMES`).
        shard_scheme: inner key → shard scheme for every node's store.
        shards_per_node: physical shard count per node (same ladder
            rules as ``n_nodes``).
        shard_capacity / assoc / replacement: per-shard geometry,
            passed through to each node's :class:`ShardedStore`.
        replication: replica placement and quorum config.
        topology: fabric topology name (``"star"`` / ``"fat-tree"``)
            when no explicit ``fabric`` is given.
        fabric: explicit :class:`Fabric` (overrides ``topology``).
        payload_bytes: modeled value size on the wire.
        tick_s: virtual-clock advance per submitted op — the offered
            inter-arrival gap; smaller ticks congest the fabric.
        injector: optional seeded node-fault source; its kill/recover
            schedule is applied at op boundaries.
        recovery_budget: per-chunk key budget for the re-replication
            drain run by :meth:`recover_node`.
        node_registries: give every node its own enabled, fully
            declared :class:`MetricsRegistry` (each member is a
            separate process in the model, so its metrics are private
            until scraped) plus a per-node request-latency sketch the
            federation layer merges into cluster-wide quantiles.
    """

    def __init__(self, n_nodes: int = 8, node_scheme: str = "pmod",
                 shard_scheme: str = "pmod", shards_per_node: int = 16,
                 shard_capacity: int = 512, assoc: int = 8,
                 replacement: str = "lru",
                 replication: Optional[ReplicationConfig] = None,
                 topology: str = "star", fabric: Optional[Fabric] = None,
                 payload_bytes: int = 512, tick_s: float = 50e-6,
                 injector: Optional[NodeFaultInjector] = None,
                 recovery_budget: int = 128,
                 registry: Optional[MetricsRegistry] = None,
                 node_registries: bool = False):
        if payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if recovery_budget < 1:
            raise ValueError("recovery_budget must be >= 1")
        node_table = RoutingTable.create(node_scheme, n_nodes)
        self.nodes: List[StoreNode] = []
        for i in range(node_table.n_shards):
            node_registry = None
            if node_registries:
                from repro.obs import declare_core_metrics
                node_registry = MetricsRegistry(enabled=True)
                declare_core_metrics(node_registry)
            store = ShardedStore(
                shard_capacity=shard_capacity, assoc=assoc,
                replacement=replacement,
                routing=RoutingTable.create(shard_scheme, shards_per_node),
                registry=node_registry)
            self.nodes.append(StoreNode(i, store, registry=node_registry))
        self.router = ClusterRouter(
            node_table, [node.store.routing for node in self.nodes])
        self.replication = replication or ReplicationConfig()
        if self.replication.replicas > self.n_nodes:
            raise ValueError(
                f"cannot place {self.replication.replicas} replicas on "
                f"{self.n_nodes} usable nodes")
        self.fabric = fabric if fabric is not None else make_fabric(
            topology, self.n_nodes)
        self.payload_bytes = payload_bytes
        self.tick_s = tick_s
        self.injector = injector
        self.recovery_budget = recovery_budget
        self._now_s = 0.0
        self._version = 0
        self._op_index = 0
        self._node_accesses = np.zeros(self.n_nodes, dtype=np.int64)
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self.counts: Dict[str, int] = {
            "ops": 0, "puts": 0, "gets": 0, "deletes": 0,
            "quorum_misses": 0, "failed_reads": 0, "read_repairs": 0,
            "replica_errors": 0, "rereplicated_keys": 0,
        }
        self._registry = get_registry() if registry is None else registry
        self._observed = self._registry.enabled
        self._hitters = (HeavyHitterTracker(k=HOT_KEYS)
                         if self._observed else None)
        #: per-op sample counters for :meth:`_maybe_trace` (a single
        #: global index would alias with alternating op patterns and
        #: starve one op type of traces entirely).
        self._trace_seen: Dict[str, int] = {}
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        registry = self._registry
        scheme = self.scheme
        self._op_counters = {
            op: registry.counter("cluster.requests", scheme=scheme, op=op)
            for op in ("get", "put", "delete")
        }
        self._quorum_counter = registry.counter("cluster.quorum_misses",
                                                scheme=scheme)
        self._repair_counter = registry.counter("cluster.read_repairs",
                                                scheme=scheme)
        self._replica_error_counter = registry.counter(
            "cluster.replica_errors", scheme=scheme)
        self._failure_counter = registry.counter("cluster.node_failures",
                                                 scheme=scheme)
        self._drop_counter = registry.counter("cluster.link.drops",
                                              scheme=scheme)
        self._latency_hist = registry.histogram("cluster.op.sim_latency_s",
                                                scheme=scheme)
        self._state_gauges = [
            registry.gauge("cluster.node.state", scheme=scheme, node=i)
            for i in range(self.n_nodes)
        ]
        # Per-node request-latency sketches, bound on each node's *own*
        # registry: a node only ever sees the ops it is primary for, so
        # only a federated merge of these sketches yields the true
        # cluster-wide latency distribution.
        self._node_sketches = [
            node.registry.histogram("cluster.node.request_latency_s",
                                    sketch=True, scheme=scheme,
                                    node=node.node_id)
            if node.registry is not None else None
            for node in self.nodes
        ]

    # -- identity (Frontend-compatible surface) -------------------------

    @property
    def n_nodes(self) -> int:
        return self.router.n_nodes

    @property
    def n_shards(self) -> int:
        """Frontend compatibility: the outer routing width is the node
        count — a frontend over a cluster batches per *node*."""
        return self.router.n_nodes

    @property
    def scheme(self) -> str:
        """The stack label, outer+inner (``"pmod+pmod"``)."""
        return f"{self.router.node_scheme}+{self.router.shard_scheme}"

    @property
    def epoch(self) -> int:
        return self.router.epoch

    @property
    def routing(self) -> RoutingTable:
        """The outer (node-level) routing table."""
        return self.router.node_table

    def shard_for(self, key: StoreKey) -> int:
        """Frontend compatibility: outer-level routing only (the queue
        a frontend batches this key onto is the node's)."""
        return self.router.node(key)

    @property
    def live_nodes(self) -> List[int]:
        return [n.node_id for n in self.nodes if n.live]

    @property
    def virtual_now_s(self) -> float:
        """The cluster's virtual clock (advances ``tick_s`` per op)."""
        return self._now_s

    def node(self, node_id: int) -> StoreNode:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return sum(node.occupancy for node in self.nodes)

    # -- clock / fault schedule -----------------------------------------

    def _maybe_trace(self, op: str, key: StoreKey):
        """Begin a wall-clock attribution trace for 1-in-
        :data:`TRACE_EVERY` ops (None otherwise / when tracing is off).

        The cluster's *simulated* latency lives on the virtual clock;
        the trace measures the real wall time the synchronous op path
        spends in routing, replica fan-out, and quorum settling, so
        the critical-path analyzer can decompose the stack's own cost.
        """
        collector = get_collector()
        if not collector.enabled:
            return None
        seen = self._trace_seen.get(op, 0)
        self._trace_seen[op] = seen + 1
        if seen % TRACE_EVERY != 0:
            return None
        return collector.begin(op, scheme=self.scheme, key=str(key),
                               epoch=self.epoch)

    def _begin_op(self, op: str) -> float:
        """Advance the virtual clock, apply due fault-schedule
        transitions, and count the op; returns its arrival time."""
        if self.injector is not None:
            for action, node_id in self.injector.scheduled(self._op_index):
                if action == "fail":
                    self.fail_node(node_id)
                else:
                    self.recover_node(node_id)
        self._op_index += 1
        now = self._now_s
        self._now_s += self.tick_s
        self.counts["ops"] += 1
        self.counts[op + "s"] += 1
        if self._observed:
            self._op_counters[op].inc()
        return now

    def _finish_op(self, now_s: float, completions: List[float],
                   quorum: int, primary: Optional[int] = None) -> float:
        """Sim latency of one op: the quorum-th fastest replica
        completion (or the failed-op penalty when nothing responded).

        ``primary`` attributes the op to the node owning the key so the
        latency also lands in that node's private sketch (the series
        federation merges into cluster-wide quantiles)."""
        if completions:
            completions.sort()
            done = completions[min(quorum, len(completions)) - 1]
            latency = done - now_s
        else:
            latency = FAILED_OP_LATENCY_S
        self._latencies.append(latency)
        if self._observed:
            self._latency_hist.observe(latency)
        if primary is not None:
            sketch = self._node_sketches[primary]
            if sketch is not None:
                sketch.observe(latency)
        return latency

    def _replica_error(self) -> None:
        self.counts["replica_errors"] += 1
        if self._observed:
            self._replica_error_counter.inc()

    def _contact(self, node: StoreNode, now_s: float,
                 request_bytes: int, response_bytes: int) -> Optional[float]:
        """One replica round trip; None = unreachable this op (injected
        error or fabric drop)."""
        if self.injector is not None:
            try:
                self.injector.before_replica_op(node.node_id)
            except InjectedNodeFault:
                self._replica_error()
                return None
        done = self.fabric.round_trip(
            FRONTEND, node_endpoint(node.node_id), request_bytes,
            response_bytes, now_s, node.service_time())
        if done is None:
            self.counts["replica_errors"] += 1
            if self._observed:
                self._drop_counter.inc()
            return None
        self._node_accesses[node.node_id] += 1
        return done

    def _quorum_miss(self, op: str, reached: int, needed: int) -> None:
        self.counts["quorum_misses"] += 1
        if self._observed:
            self._quorum_counter.inc()
        get_journal().emit("cluster.quorum_miss", op=op, reached=reached,
                           needed=needed, live_nodes=len(self.live_nodes),
                           epoch=self.epoch)

    # -- operations ------------------------------------------------------

    def put(self, key: StoreKey, value: Any) -> int:
        """Replicated write; returns the ack count (< ``write_quorum``
        means a journaled quorum miss, still applied best-effort)."""
        ctx = self._maybe_trace("put", key)
        now = self._begin_op("put")
        canonical = canonical_key(key)
        self._version += 1
        stamped = (self._version, value)
        placement = self.router.replicas(canonical,
                                         self.replication.replicas)
        if self._hitters is not None:
            self._hitters.offer(str(canonical), placement[0])
        fan_from = perf_counter()
        if ctx is not None:
            ctx.stage("route", ctx.start_s, fan_from - ctx.start_s,
                      replicas=len(placement))
        acks = 0
        completions: List[float] = []
        for node_id in placement:
            node = self.nodes[node_id]
            if not node.writable:
                continue
            done = self._contact(node, now, self.payload_bytes,
                                 CONTROL_BYTES)
            if done is None:
                continue
            node.put(canonical, stamped)
            acks += 1
            completions.append(done)
        settle_from = perf_counter()
        if ctx is not None:
            ctx.stage("contact", fan_from, settle_from - fan_from,
                      acks=acks, replicas=len(placement))
        clean = acks >= self.replication.write_quorum
        if not clean:
            self._quorum_miss("put", acks, self.replication.write_quorum)
        latency = self._finish_op(now, completions,
                                  self.replication.write_quorum,
                                  primary=placement[0])
        if ctx is not None:
            end = perf_counter()
            ctx.stage("settle", settle_from, end - settle_from,
                      sim_latency_s=latency)
            get_collector().finish(
                ctx, status="ok" if clean else "quorum_miss",
                wall_s=end - ctx.start_s)
        return acks

    def get(self, key: StoreKey, default: Any = None) -> Any:
        """Quorum read with read-repair; returns the freshest value."""
        ctx = self._maybe_trace("get", key)
        now = self._begin_op("get")
        canonical = canonical_key(key)
        placement = self.router.replicas(canonical,
                                         self.replication.replicas)
        if self._hitters is not None:
            self._hitters.offer(str(canonical), placement[0])
        fan_from = perf_counter()
        if ctx is not None:
            ctx.stage("route", ctx.start_s, fan_from - ctx.start_s,
                      replicas=len(placement))
        reached = 0
        completions: List[float] = []
        freshest: Optional[tuple] = None
        holders: Dict[int, Any] = {}
        for node_id in placement:
            node = self.nodes[node_id]
            if not node.live:
                continue
            done = self._contact(node, now, CONTROL_BYTES,
                                 self.payload_bytes)
            if done is None:
                continue
            reached += 1
            completions.append(done)
            copy = node.get(canonical, _MISS)
            holders[node_id] = copy
            if copy is not _MISS and (freshest is None
                                      or copy[0] > freshest[0]):
                freshest = copy
        settle_from = perf_counter()
        if ctx is not None:
            ctx.stage("contact", fan_from, settle_from - fan_from,
                      reached=reached, replicas=len(placement))
        quorate = reached >= self.replication.read_quorum
        if not quorate:
            self._quorum_miss("get", reached,
                              self.replication.read_quorum)
            if reached == 0:
                self.counts["failed_reads"] += 1
        if freshest is not None:
            # Read repair: any reached replica missing the freshest
            # copy converges now, not just at the recovery drain.
            for node_id, copy in holders.items():
                if copy is _MISS or copy[0] < freshest[0]:
                    self.nodes[node_id].put(canonical, freshest)
                    self.counts["read_repairs"] += 1
                    if self._observed:
                        self._repair_counter.inc()
        latency = self._finish_op(now, completions,
                                  self.replication.read_quorum,
                                  primary=placement[0])
        if ctx is not None:
            end = perf_counter()
            ctx.stage("settle", settle_from, end - settle_from,
                      sim_latency_s=latency)
            get_collector().finish(
                ctx, status="ok" if quorate else "quorum_miss",
                wall_s=end - ctx.start_s)
        return default if freshest is None else freshest[1]

    def delete(self, key: StoreKey) -> bool:
        """Delete from every writable replica; True if any copy died."""
        ctx = self._maybe_trace("delete", key)
        now = self._begin_op("delete")
        canonical = canonical_key(key)
        placement = self.router.replicas(canonical,
                                         self.replication.replicas)
        if self._hitters is not None:
            self._hitters.offer(str(canonical), placement[0])
        fan_from = perf_counter()
        if ctx is not None:
            ctx.stage("route", ctx.start_s, fan_from - ctx.start_s,
                      replicas=len(placement))
        deleted = False
        completions: List[float] = []
        for node_id in placement:
            node = self.nodes[node_id]
            if not node.writable:
                continue
            done = self._contact(node, now, CONTROL_BYTES, CONTROL_BYTES)
            if done is None:
                continue
            completions.append(done)
            deleted = node.delete(canonical) or deleted
        settle_from = perf_counter()
        if ctx is not None:
            ctx.stage("contact", fan_from, settle_from - fan_from,
                      replicas=len(placement))
        latency = self._finish_op(now, completions,
                                  self.replication.write_quorum,
                                  primary=placement[0])
        if ctx is not None:
            end = perf_counter()
            ctx.stage("settle", settle_from, end - settle_from,
                      sim_latency_s=latency)
            get_collector().finish(ctx, status="ok",
                                   wall_s=end - ctx.start_s)
        return deleted

    # -- node lifecycle --------------------------------------------------

    def _publish_state(self, node: StoreNode) -> None:
        if self._observed:
            self._state_gauges[node.node_id].set(
                STATE_CODES[node.state])

    def fail_node(self, node_id: int) -> StoreNode:
        """Crash one node (contents lost); journaled."""
        node = self.nodes[node_id]
        node.fail()
        self.counts.setdefault("node_failures", 0)
        self.counts["node_failures"] += 1
        if self._observed:
            self._failure_counter.inc()
        self._publish_state(node)
        get_journal().emit("cluster.node_down", node=node_id,
                           live_nodes=len(self.live_nodes),
                           epoch=self.epoch, op_index=self._op_index)
        return node

    def degrade_node(self, node_id: int) -> StoreNode:
        node = self.nodes[node_id].degrade()
        self._publish_state(node)
        return node

    def restore_node(self, node_id: int) -> StoreNode:
        node = self.nodes[node_id].restore()
        self._publish_state(node)
        return node

    def recover_node(self, node_id: int,
                     budget: Optional[int] = None):
        """Bring a down node back: enter ``recovering``, drain the
        owed replica set from peers in bounded chunks, then rejoin.
        Returns the :class:`~repro.cluster.rereplicate.
        ReReplicationReport`."""
        from repro.cluster.rereplicate import ReReplicator

        node = self.nodes[node_id]
        node.begin_recovery()
        self._publish_state(node)
        report = ReReplicator(
            self, node_id,
            budget=self.recovery_budget if budget is None else budget,
            registry=self._registry).run()
        node.complete_recovery()
        self._publish_state(node)
        get_journal().emit("cluster.node_up", node=node_id,
                           copied=report.copied,
                           occupancy=node.occupancy,
                           live_nodes=len(self.live_nodes),
                           epoch=self.epoch)
        return report

    def quarantine_node(self, node_ids) -> ClusterRouter:
        """Route around nodes long-term: outer-table quarantine, epoch
        bump, placement shifts to the survivors (rebalancing)."""
        self.router = self.router.with_node_quarantined(node_ids)
        return self.router

    def heal_node(self, node_ids=None) -> ClusterRouter:
        """Lift node quarantine (all by default); epoch bump."""
        self.router = self.router.without_node_quarantined(node_ids)
        return self.router

    # -- telemetry -------------------------------------------------------

    def node_access_counts(self) -> np.ndarray:
        """Per-node successful replica contacts (the load histogram)."""
        return self._node_accesses.copy()

    def node_balance(self) -> float:
        """Balance (Eq. 1) of the per-node load histogram."""
        counts = self._node_accesses
        if counts.sum() == 0:
            return math.nan
        return float(balance_from_counts(counts))

    def heavy_hitters(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Top routed keys (space-saving estimate), heaviest first;
        ``where`` is the key's primary node.  Empty when unobserved."""
        if self._hitters is None:
            return []
        return self._hitters.top(n)

    def sim_latency_percentiles(self) -> Dict[str, float]:
        if not self._latencies:
            return {"p50": 0.0, "p99": 0.0}
        arr = np.array(self._latencies)
        return {"p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99))}

    def telemetry(self) -> ClusterTelemetry:
        counts = self._node_accesses
        total = int(counts.sum())
        ideal = total / self.n_nodes if total else 0.0
        percentiles = self.sim_latency_percentiles()
        evictions = sum(
            sum(s.stats.evictions for s in node.store.shards)
            for node in self.nodes)
        telemetry = ClusterTelemetry(
            node_scheme=self.router.node_scheme,
            shard_scheme=self.router.shard_scheme,
            n_nodes=self.n_nodes,
            live_nodes=len(self.live_nodes),
            epoch=self.epoch,
            ops=self.counts["ops"],
            puts=self.counts["puts"],
            gets=self.counts["gets"],
            deletes=self.counts["deletes"],
            quorum_misses=self.counts["quorum_misses"],
            failed_reads=self.counts["failed_reads"],
            read_repairs=self.counts["read_repairs"],
            replica_errors=self.counts["replica_errors"],
            rereplicated_keys=self.counts["rereplicated_keys"],
            occupancy=len(self),
            evictions=evictions,
            node_balance=self.node_balance(),
            tail_node_load=float(counts.max() / ideal) if ideal else 0.0,
            sim_p50_s=percentiles["p50"],
            sim_p99_s=percentiles["p99"],
            fabric_drops=self.fabric.drops,
            node_accesses=counts.tolist(),
            node_states=[n.state.value for n in self.nodes],
            top_keys=self.heavy_hitters(),
        )
        if self._observed:
            self._registry.gauge("cluster.node_balance",
                                 scheme=self.scheme).set(
                telemetry.node_balance)
            elapsed = self._now_s
            for row in self.fabric.stats(elapsed).get("links", []):
                if "utilization" in row:
                    self._registry.gauge("cluster.link.utilization",
                                         link=row["name"]).set(
                        row["utilization"])
        return telemetry

    def __repr__(self) -> str:
        return (f"Cluster({self.scheme!r}, nodes={self.n_nodes} "
                f"({len(self.live_nodes)} live), "
                f"R={self.replication.replicas}, epoch={self.epoch}, "
                f"occupancy={len(self)})")

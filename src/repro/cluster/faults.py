"""Seeded node-granularity fault injection for cluster drills.

The serving layer already has :class:`~repro.serve.FaultInjector` for
queue-level chaos; this is its node-tier sibling, reusing the same
machinery shape — one seeded ``numpy`` generator, deterministic
targeted faults layered over probabilistic ones — so a cluster drill
replays exactly under the same seed:

* **scheduled kills/recoveries** — ``fail_at``/``recover_at`` map an
  operation index to a node id; the cluster consults
  :meth:`NodeFaultInjector.scheduled` once per submitted op and applies
  the transition.  This is how the ``cluster`` experiment kills a node
  mid-run at a reproducible point in the stream.
* **transient replica errors** — with ``error_probability``, an
  individual replica sub-operation fails (that replica misses the
  write / read), which is how quorum paths get exercised without a
  full node loss.

The injector never touches the cluster itself — it only *decides*; the
:class:`~repro.cluster.engine.Cluster` applies the transitions so that
journal events and metrics stay in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["InjectedNodeFault", "NodeFaultInjector"]


class InjectedNodeFault(RuntimeError):
    """Raised in place of a real per-replica failure."""


@dataclass
class NodeFaultInjector:
    """Seeded, schedulable fault source for cluster operations.

    Attributes:
        error_probability: chance one replica sub-op fails transiently.
        seed: RNG seed for the probabilistic draws.
        fail_at: op index → node id to crash *before* that op.
        recover_at: op index → node id to start recovering before that
            op (the cluster runs its bounded re-replication drain).
    """

    error_probability: float = 0.0
    seed: int = 0
    fail_at: Dict[int, int] = field(default_factory=dict)
    recover_at: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 <= self.error_probability <= 1.0:
            raise ValueError("error_probability must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self.injected: Dict[str, int] = {"error": 0, "fail": 0,
                                         "recover": 0}

    # -- scheduling -----------------------------------------------------

    def schedule_fail(self, op_index: int, node_id: int) -> "NodeFaultInjector":
        self.fail_at[op_index] = node_id
        return self

    def schedule_recover(self, op_index: int,
                         node_id: int) -> "NodeFaultInjector":
        self.recover_at[op_index] = node_id
        return self

    def scheduled(self, op_index: int) -> List[Tuple[str, int]]:
        """Transitions due before op ``op_index``: ``[(action, node)]``
        with action ``"fail"`` or ``"recover"`` (fail first, so a
        same-index fail+recover of different nodes is well-defined)."""
        due: List[Tuple[str, int]] = []
        node = self.fail_at.pop(op_index, None)
        if node is not None:
            self.injected["fail"] += 1
            due.append(("fail", node))
        node = self.recover_at.pop(op_index, None)
        if node is not None:
            self.injected["recover"] += 1
            due.append(("recover", node))
        return due

    # -- probabilistic faults -------------------------------------------

    def before_replica_op(self, node_id: int) -> None:
        """Raise :class:`InjectedNodeFault` with ``error_probability``
        ahead of one replica sub-operation."""
        if (self.error_probability > 0.0
                and self._rng.random() < self.error_probability):
            self.injected["error"] += 1
            raise InjectedNodeFault(
                f"injected replica error on node {node_id}")

    def stats(self) -> Dict[str, int]:
        return dict(self.injected)

"""Virtual memory: page allocation policies and address translation."""

from repro.vm.translation import (
    ColoringAllocator,
    PageAllocator,
    RandomAllocator,
    SequentialAllocator,
    VirtualMemory,
)

__all__ = [
    "ColoringAllocator",
    "PageAllocator",
    "RandomAllocator",
    "SequentialAllocator",
    "VirtualMemory",
]

"""Virtual-to-physical translation with pluggable page allocation.

The L2 the paper rehashes is physically indexed, so the OS page
allocator stands between a program's virtual access pattern and the
cache sets it actually fights over.  Three allocation policies bound
the design space:

* :class:`SequentialAllocator` — physical pages handed out in first-
  touch order: virtual contiguity becomes physical contiguity (the
  most conflict-friendly case, and what trace-driven studies
  implicitly assume).
* :class:`RandomAllocator` — each virtual page lands on a uniformly
  random free physical page (a freshly booted, fragmented, or
  security-hardened allocator).
* :class:`ColoringAllocator` — classic page coloring: the allocator
  preserves the page-color bits (the page-number bits that reach the
  cache index), as Kessler & Hill's careful-placement policies do.

The page-allocation experiment uses these to ask which of the paper's
conflict patterns survive OS randomization: offset-driven crowding
(tree's arena allocation) does — the crowded index bits live *below*
the page boundary — while pitch-driven column conflicts (bt) require
physically contiguous arrays.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.mathutil import log2_exact
from repro.trace.records import Trace


class PageAllocator(abc.ABC):
    """Assigns physical page numbers to first-touched virtual pages."""

    def __init__(self, n_physical_pages: int):
        if n_physical_pages < 1:
            raise ValueError("need at least one physical page")
        self.n_physical_pages = n_physical_pages

    @abc.abstractmethod
    def allocate(self, virtual_page: int) -> int:
        """Physical page for a newly touched virtual page."""


class SequentialAllocator(PageAllocator):
    """First-touch order: the i-th new page gets physical page i."""

    def __init__(self, n_physical_pages: int):
        super().__init__(n_physical_pages)
        self._next = 0

    def allocate(self, virtual_page: int) -> int:
        if self._next >= self.n_physical_pages:
            raise MemoryError("out of physical pages")
        page = self._next
        self._next += 1
        return page


class RandomAllocator(PageAllocator):
    """Uniformly random free physical page (deterministic seed)."""

    def __init__(self, n_physical_pages: int, seed: int = 0):
        super().__init__(n_physical_pages)
        rng = np.random.default_rng(seed)
        self._free = rng.permutation(n_physical_pages).tolist()

    def allocate(self, virtual_page: int) -> int:
        if not self._free:
            raise MemoryError("out of physical pages")
        return int(self._free.pop())


class ColoringAllocator(PageAllocator):
    """Page coloring: keep the low ``color_bits`` of the page number.

    Within each color, pages are handed out in first-touch order, so
    virtual pages of equal color stay on equal-color physical pages —
    preserving exactly the index bits the cache sees.
    """

    def __init__(self, n_physical_pages: int, color_bits: int):
        super().__init__(n_physical_pages)
        if color_bits < 0:
            raise ValueError("color_bits cannot be negative")
        n_colors = 1 << color_bits
        if n_colors > n_physical_pages:
            raise ValueError("more colors than physical pages")
        self.n_colors = n_colors
        self._next_per_color: Dict[int, int] = {}

    def allocate(self, virtual_page: int) -> int:
        color = virtual_page % self.n_colors
        index = self._next_per_color.get(color, 0)
        page = index * self.n_colors + color
        if page >= self.n_physical_pages:
            raise MemoryError(f"out of pages of color {color}")
        self._next_per_color[color] = index + 1
        return page


class VirtualMemory:
    """First-touch page table over a chosen allocator."""

    def __init__(self, allocator: PageAllocator, page_bytes: int = 4096):
        self.allocator = allocator
        self.page_bytes = page_bytes
        self.page_bits = log2_exact(page_bytes)
        self._page_table: Dict[int, int] = {}

    @property
    def mapped_pages(self) -> int:
        return len(self._page_table)

    def translate(self, virtual_address: int) -> int:
        """Physical address for one virtual address (allocate on miss)."""
        if virtual_address < 0:
            raise ValueError("address must be non-negative")
        vpn = virtual_address >> self.page_bits
        ppn = self._page_table.get(vpn)
        if ppn is None:
            ppn = self.allocator.allocate(vpn)
            self._page_table[vpn] = ppn
        return (ppn << self.page_bits) | (
            virtual_address & (self.page_bytes - 1)
        )

    def translate_trace(self, trace: Trace) -> Trace:
        """A physically addressed copy of a virtual trace.

        First-touch order follows the trace; the page table persists on
        the instance, so translating a second trace models a second
        phase of the same process.
        """
        page_bits = np.uint64(self.page_bits)
        offset_mask = np.uint64(self.page_bytes - 1)
        vpns = (trace.addresses >> page_bits).tolist()
        table = self._page_table
        allocate = self.allocator.allocate
        ppns = np.empty(len(vpns), dtype=np.uint64)
        for i, vpn in enumerate(vpns):
            ppn = table.get(vpn)
            if ppn is None:
                ppn = allocate(vpn)
                table[vpn] = ppn
            ppns[i] = ppn
        physical = (ppns << page_bits) | (trace.addresses & offset_mask)
        return Trace(
            name=f"{trace.name}@phys",
            addresses=physical,
            is_write=trace.is_write.copy(),
            meta=trace.meta,
        )

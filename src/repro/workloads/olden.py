"""Olden-suite models: mst, tree (Barnes treecode).

Both are pointer codes; what separates them is allocation alignment.
tree's nodes sit at the front of power-of-two arenas, concentrating the
hot lines onto ~6% of the traditional sets (the Figure 13a histogram);
mst's hash-table walk covers the sets evenly but cycles through a
footprint slightly above the L2 capacity — LRU's worst case, which only
the skewed (pseudo-LRU) configurations improve.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import pointer_chase, write_mask
from repro.workloads.base import Workload, register_workload
from repro.workloads.patterns import (
    chunked_interleave,
    cyclic_sweep,
    page_resident_nodes,
    streaming_arrays,
)


@register_workload
class Tree(Workload):
    """University of Hawaii treecode (Barnes): N-body tree walks.

    Tree cells are allocated at 4 KB arena boundaries with only the
    first few lines of each arena hot.  The walk revisits cells heavily
    (every body traverses the top of the tree), so the crowded sets
    thrash under traditional indexing — the paper's best case for
    prime hashing (speedups above 2.3, misses nearly eliminated).
    """

    name = "tree"
    suite = "olden"
    expected_non_uniform = True
    description = "tree walks over page-aligned arena-allocated cells"

    def metadata(self) -> TraceMetadata:
        # The trace carries only the L2-relevant reference slice; the
        # force kernels evaluated per visited cell put hundreds of
        # instructions between those references (calibration constant,
        # see DESIGN.md §4).
        return TraceMetadata(instructions_per_access=300.0,
                             mispredicts_per_kaccess=12.0, mlp=1.2)

    def generate(self, n_accesses: int, seed: int):
        # 85% tree-cell walks on ~6% of the traditional sets (the
        # Figure 13a concentration), 15% full-line body streaming:
        # tree's working set fits the L2, so its misses are nearly all
        # conflicts — the paper's best case.
        n_walk = int(n_accesses * 0.85)
        # 600 pages x 4 hot lines = 2400 hot blocks: ~19 per crowded
        # traditional set (thrash) but ~1.2 per prime-modulo set
        # (resident even alongside the stream's fills).
        cells = page_resident_nodes(
            n_pages=600, hot_bytes_per_page=256, count=n_walk, seed=seed,
            base=1 << 24,
        )
        bodies = streaming_arrays(1, 4 * 1024 * 1024, n_accesses - n_walk,
                                  base=1 << 27, element_bytes=64)
        addresses = chunked_interleave([cells, bodies], chunk=512)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.1, seed + 1
        )


@register_workload
class Mst(Workload):
    """Olden mst: minimum spanning tree over hash-table adjacency.

    Each phase re-walks a fixed-order node list slightly larger than
    the L2 — every access misses under true LRU regardless of indexing,
    while the skewed caches' imprecise replacement accidentally retains
    most of the footprint (Section 5.3: 'with cg and mst, only the
    skewed associative schemes are able to obtain speedups').
    """

    name = "mst"
    suite = "olden"
    expected_non_uniform = False
    description = "fixed-order re-walks of a just-over-capacity node list"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=8.0,
                             mispredicts_per_kaccess=10.0, mlp=1.4)

    def generate(self, n_accesses: int, seed: int):
        # 45% over-capacity node re-walks (the skewed caches' win), 35%
        # full-line edge streaming (compulsory), 20% small hot chase.
        n_sweep = int(n_accesses * 0.45)
        sweep_blocks = 8600  # ~1.05x the 8192-block L2
        sweeps = max(1, n_sweep // sweep_blocks)
        walks = cyclic_sweep(sweep_blocks, sweeps, base=1 << 24,
                             permute_seed=seed + 3,
                             scatter_seed=seed + 4)[:n_sweep]
        # 16 B elements: the L1 absorbs most edge traffic, so the
        # stream dilutes execution time without flushing the skewed
        # cache's retained sweep blocks.
        edges = streaming_arrays(1, 4 * 1024 * 1024,
                                 int(n_accesses * 0.35),
                                 base=1 << 28, element_bytes=16)
        neighbors = pointer_chase(1200, 64,
                                  max(1, n_accesses - len(walks) - len(edges)),
                                  seed=seed + 5, base=1 << 27)
        addresses = chunked_interleave([walks, edges, neighbors], chunk=1024)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.12, seed + 1
        )

"""Workload sanity validation.

``validate_workload`` runs the checks every registered workload must
satisfy — determinism, length scaling, bounded addresses, sane write
mix, valid metadata — and returns a structured report.  The test suite
applies it to all 23 paper models, and users get the same gate for
their :class:`~repro.workloads.custom.CompositeWorkload` definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.workloads.base import Workload

#: Address-space ceiling: generators stay within 48-bit physical space.
MAX_ADDRESS = 1 << 48


@dataclass
class ValidationReport:
    """Outcome of validating one workload."""

    workload: str
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __str__(self) -> str:
        if self.ok:
            return f"{self.workload}: OK"
        issues = "; ".join(self.problems)
        return f"{self.workload}: {issues}"


def validate_workload(workload: Workload, scale: float = 0.05,
                      seed: int = 0) -> ValidationReport:
    """Run the standard sanity checks on one workload."""
    report = ValidationReport(workload.name)
    problems = report.problems

    try:
        meta = workload.metadata()
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        problems.append(f"metadata() raised {exc!r}")
        return report
    if meta.instructions_per_access <= 0 or meta.mlp < 1.0:
        problems.append("metadata out of range")

    try:
        first = workload.trace(scale=scale, seed=seed)
    except Exception as exc:  # noqa: BLE001
        problems.append(f"trace() raised {exc!r}")
        return report

    if len(first) == 0:
        problems.append("empty trace")
        return report
    if int(first.addresses.max()) >= MAX_ADDRESS:
        problems.append("addresses exceed 48-bit space")
    if not 0.0 < first.write_fraction < 0.8:
        problems.append(
            f"write fraction {first.write_fraction:.2f} outside (0, 0.8)"
        )

    second = workload.trace(scale=scale, seed=seed)
    if not (np.array_equal(first.addresses, second.addresses)
            and np.array_equal(first.is_write, second.is_write)):
        problems.append("trace not deterministic for fixed seed")

    other_seed = workload.trace(scale=scale, seed=seed + 1)
    if (np.array_equal(first.addresses, other_seed.addresses)
            and np.array_equal(first.is_write, other_seed.is_write)):
        problems.append("trace ignores the seed")

    larger = workload.trace(scale=scale * 3, seed=seed)
    if len(larger) <= len(first):
        problems.append("trace length does not scale")

    return report


def validate_all(workloads, scale: float = 0.05) -> List[ValidationReport]:
    """Validate a collection of workloads; returns one report each."""
    return [validate_workload(w, scale=scale) for w in workloads]

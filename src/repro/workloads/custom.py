"""Declarative composite workloads.

The 23 paper workloads are hand-written classes; users studying their
own application can instead describe its access structure as a list of
component specs and get a :class:`~repro.workloads.base.Workload` with
the same interface (deterministic traces, CPU metadata, simulator
compatibility):

>>> spec = [
...     {"kind": "resident_gather", "share": 0.5, "blocks": 4000},
...     {"kind": "stream", "share": 0.3, "arrays": 2,
...      "array_kb": 2048, "element_bytes": 64},
...     {"kind": "alias_columns", "share": 0.2, "rows": 16, "repeats": 4},
... ]
>>> workload = CompositeWorkload("mykernel", spec)
>>> trace = workload.trace(scale=0.5)

Component kinds map onto the pattern builders of
:mod:`repro.workloads.patterns`; shares must sum to 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import write_mask
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    aligned_struct_chase,
    chunked_interleave,
    conflict_column_walk,
    cyclic_sweep,
    page_resident_nodes,
    shuffled_cycles,
    streaming_arrays,
)

#: Supported component kinds and their required spec keys.
COMPONENT_KINDS = {
    "resident_gather": ("blocks",),
    "stream": ("arrays", "array_kb"),
    "alias_columns": ("rows", "repeats"),
    "cyclic": ("blocks",),
    "page_nodes": ("pages", "hot_bytes"),
    "struct_chase": ("structs", "struct_bytes"),
}


def _build_component(kind: str, spec: Dict, count: int, seed: int,
                     base: int) -> np.ndarray:
    if kind == "resident_gather":
        return shuffled_cycles(spec["blocks"], count, seed=seed, base=base)
    if kind == "stream":
        return streaming_arrays(
            spec["arrays"], spec["array_kb"] * 1024, count, base=base,
            element_bytes=spec.get("element_bytes", 8),
            order_seed=seed if spec.get("random_order") else None,
        )
    if kind == "alias_columns":
        per_column = spec["rows"] * spec["repeats"]
        n_cols = max(1, count // per_column)
        return conflict_column_walk(spec["rows"], n_cols, spec["repeats"],
                                    base=base)[:count]
    if kind == "cyclic":
        repeats = max(1, count // spec["blocks"])
        return cyclic_sweep(spec["blocks"], repeats, base=base,
                            permute_seed=seed,
                            scatter_seed=seed + 1 if spec.get("scatter")
                            else None)[:count]
    if kind == "page_nodes":
        return page_resident_nodes(spec["pages"], spec["hot_bytes"], count,
                                   seed=seed, base=base)
    if kind == "struct_chase":
        return aligned_struct_chase(spec["structs"], spec["struct_bytes"],
                                    count, seed=seed, base=base)
    raise KeyError(kind)  # pragma: no cover - validated in __init__


class CompositeWorkload(Workload):
    """A workload assembled from declarative component specs."""

    suite = "custom"

    def __init__(self, name: str, components: Sequence[Dict],
                 write_fraction: float = 0.25,
                 metadata: TraceMetadata = None,
                 chunk: int = 256):
        if not components:
            raise ValueError("need at least one component")
        for i, spec in enumerate(components):
            kind = spec.get("kind")
            if kind not in COMPONENT_KINDS:
                known = ", ".join(sorted(COMPONENT_KINDS))
                raise ValueError(
                    f"component {i}: unknown kind {kind!r}; known: {known}"
                )
            missing = [k for k in COMPONENT_KINDS[kind] if k not in spec]
            if missing:
                raise ValueError(
                    f"component {i} ({kind}): missing keys {missing}"
                )
            if not 0 < spec.get("share", 0) <= 1:
                raise ValueError(
                    f"component {i} ({kind}): share must be in (0, 1]"
                )
        total_share = sum(c["share"] for c in components)
        if not math.isclose(total_share, 1.0, abs_tol=1e-6):
            raise ValueError(f"component shares sum to {total_share}, not 1")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        self.name = name
        self.components = list(components)
        self.write_fraction = write_fraction
        self._metadata = metadata or TraceMetadata()
        self.chunk = chunk

    def metadata(self) -> TraceMetadata:
        return self._metadata

    def generate(self, n_accesses: int, seed: int):
        streams = []
        for i, spec in enumerate(self.components):
            count = max(1, int(n_accesses * spec["share"]))
            base = spec.get("base", (1 << 24) + i * (1 << 28))
            streams.append(
                _build_component(spec["kind"], spec, count, seed + i, base)
            )
        addresses = chunked_interleave(streams, chunk=self.chunk)[:n_accesses]
        return addresses, write_mask(len(addresses), self.write_fraction,
                                     seed + 99)

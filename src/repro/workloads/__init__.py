"""Synthetic models of the paper's 23 memory-intensive applications.

Importing this package registers every workload; use
:func:`get_workload` / :func:`all_workload_names` to enumerate them,
and the :data:`NONUNIFORM_APPS` / :data:`UNIFORM_APPS` tuples for the
paper's Section 4 classification.
"""

from repro.workloads import nas, olden, scientific, spec_fp, spec_int  # noqa: F401
from repro.workloads.base import (
    NONUNIFORM_APPS,
    UNIFORM_APPS,
    Workload,
    all_workload_names,
    get_workload,
)
from repro.workloads.custom import COMPONENT_KINDS, CompositeWorkload

__all__ = [
    "COMPONENT_KINDS",
    "CompositeWorkload",
    "NONUNIFORM_APPS",
    "UNIFORM_APPS",
    "Workload",
    "all_workload_names",
    "get_workload",
]

"""NAS Parallel Benchmark models: bt, cg, ft, is, lu, sp.

The NAS kernels are the paper's richest source of non-uniform
applications: the block solvers (bt, sp) and the FFT (ft) walk
power-of-two-pitched multidimensional arrays column-wise, aliasing L2
sets; cg mixes an aligned sparse structure with an over-capacity
iteration vector.  is and lu are uniform: a scatter histogram and a
well-blocked dense solver.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import strided_stream, write_mask
from repro.workloads.base import Workload, register_workload
from repro.workloads.patterns import (
    L2_BLOCK,
    chunked_interleave,
    conflict_column_walk,
    cyclic_sweep,
    streaming_arrays,
)


@register_workload
class Bt(Workload):
    """NAS BT: block-tridiagonal solver.

    Models the x/y/z line solves over 5x5-block 3-D arrays whose plane
    pitch is a power of two: the z-sweeps walk columns 128 KB apart
    (one traditional set each), re-solving each line several times per
    timestep — dense conflict misses with strong reuse.  A unit-stride
    phase models the rhs/flux computation.
    """

    name = "bt"
    suite = "nas"
    expected_non_uniform = True
    description = "column line-solves over power-of-two-pitched 3-D arrays"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=8.0,
                             mispredicts_per_kaccess=3.0, mlp=2.5)

    def generate(self, n_accesses: int, seed: int):
        # ~32% aliased line-solves (the fixable conflicts), ~68% full-line
        # flux/rhs streaming (compulsory misses no indexing can remove) —
        # proportions set so pMod's speedup lands near the paper's.
        n_conflict = int(n_accesses * 0.36)
        rows, repeats = 16, 6
        n_cols = max(1, n_conflict // (rows * repeats))
        solves = conflict_column_walk(rows, n_cols, repeats)
        flux = streaming_arrays(3, 4 * 1024 * 1024, n_accesses - len(solves),
                                base=1 << 26, element_bytes=64)
        addresses = chunked_interleave([solves, flux], chunk=rows * repeats)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.25, seed + 1
        )


@register_workload
class Sp(Workload):
    """NAS SP: scalar pentadiagonal solver.

    Same plane-aliased line solves as bt but with shallower reuse
    (scalar rather than 5x5-block lines) and a larger unit-stride
    share, so its conflicts — and its speedups — are milder.
    """

    name = "sp"
    suite = "nas"
    expected_non_uniform = True
    description = "scalar line-solves over power-of-two-pitched arrays"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=7.0,
                             mispredicts_per_kaccess=3.0, mlp=3.0)

    def generate(self, n_accesses: int, seed: int):
        # Milder than bt: 13% conflicts, deeper per-column reuse (the
        # concentration is what pushes the histogram non-uniform).
        n_conflict = int(n_accesses * 0.13)
        rows, repeats = 12, 12
        n_cols = max(1, n_conflict // (rows * repeats))
        solves = conflict_column_walk(rows, n_cols, repeats, base=512 * L2_BLOCK)
        rhs = streaming_arrays(4, 4 * 1024 * 1024, n_accesses - len(solves),
                               base=1 << 26, element_bytes=64)
        addresses = chunked_interleave([solves, rhs], chunk=rows * repeats)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )


@register_workload
class Ft(Workload):
    """NAS FT: 3-D FFT.

    The dimension-wise FFTs walk columns of power-of-two-pitched planes
    with log(N) butterfly passes per column — repeated same-set bursts
    under traditional indexing — separated by unit-stride transposes.
    """

    name = "ft"
    suite = "nas"
    expected_non_uniform = True
    description = "columnwise FFT passes over power-of-two planes"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=9.0,
                             mispredicts_per_kaccess=2.0, mlp=3.0)

    def generate(self, n_accesses: int, seed: int):
        n_fft = int(n_accesses * 0.24)
        rows, passes = 32, 5
        n_cols = max(1, n_fft // (rows * passes))
        ffts = conflict_column_walk(rows, n_cols, passes, base=1 << 24)
        transpose = streaming_arrays(2, 4 * 1024 * 1024,
                                     n_accesses - len(ffts), base=1 << 27,
                                     element_bytes=64)
        addresses = chunked_interleave([ffts, transpose], chunk=rows * passes)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.4, seed + 1
        )


@register_workload
class Cg(Workload):
    """NAS CG: conjugate gradient.

    Three components: 16-block-aligned sparse row descriptors that
    crowd (but exactly fit) a sixteenth of the traditional sets — a
    non-uniform histogram with *no* removable conflict misses — an
    over-capacity cyclic pass over the matrix values (LRU's worst case;
    only the pseudo-LRU skewed caches retain it, the Section 5.5 effect
    where skw+pDisp beats even full associativity), and streaming
    matrix data.
    """

    name = "cg"
    suite = "nas"
    expected_non_uniform = True
    description = "aligned row descriptors + over-capacity value sweep"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=5.0,
                             mispredicts_per_kaccess=6.0, mlp=2.0)

    def generate(self, n_accesses: int, seed: int):
        # Row descriptors: 512 blocks at 16-block alignment -> 4 blocks
        # in each of 128 traditional sets.  They *fit* 4 ways exactly,
        # so they skew the histogram without conflict-missing — which
        # is why no single-hash scheme speeds cg up, only the skewed
        # caches (via the over-capacity value sweep) do.
        n_desc = int(n_accesses * 0.35)
        n_sweep = int(n_accesses * 0.45)
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, 512, size=n_desc, dtype=np.uint64)
        descriptors = (np.uint64(1 << 24)
                       + picks * np.uint64(16 * L2_BLOCK))
        sweep_blocks = 8500  # just over the 8192-block L2
        sweeps = max(1, n_sweep // sweep_blocks)
        values = cyclic_sweep(sweep_blocks, sweeps, base=1 << 27,
                              permute_seed=seed + 7,
                              scatter_seed=seed + 8)[:n_sweep]
        matrix = streaming_arrays(2, 4 * 1024 * 1024,
                                  max(1, n_accesses - n_desc - len(values)),
                                  base=1 << 28, element_bytes=64)
        addresses = chunked_interleave([descriptors, values, matrix],
                                       chunk=512)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.15, seed + 1
        )


@register_workload
class Is(Workload):
    """NAS IS: integer bucket sort.

    Sequential key reads feeding scattered increments into a
    histogram larger than the L2 — uniform set pressure, write-heavy,
    branchy.
    """

    name = "is"
    suite = "nas"
    expected_non_uniform = False
    description = "sequential key reads + scattered histogram increments"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=4.0,
                             mispredicts_per_kaccess=14.0, mlp=1.5)

    def generate(self, n_accesses: int, seed: int):
        rng = np.random.default_rng(seed)
        half = n_accesses // 2
        keys = streaming_arrays(1, 4 * 1024 * 1024, half, element_bytes=4)
        hist_blocks = 16384  # 1 MB of counters
        scatter = (np.uint64(1 << 27)
                   + rng.integers(0, hist_blocks, size=n_accesses - half,
                                  dtype=np.uint64) * np.uint64(L2_BLOCK))
        addresses = chunked_interleave([keys, scatter], chunk=64)
        writes = np.zeros(n_accesses, dtype=bool)
        writes[:] = write_mask(n_accesses, 0.45, seed + 1)
        return addresses[:n_accesses], writes


@register_workload
class Lu(Workload):
    """NAS LU: blocked dense factorization.

    Well-tiled: each ~64 KB tile is reused many times before moving on,
    so the L2 serves it with minimal misses under any indexing — the
    uniform, nothing-to-gain case.
    """

    name = "lu"
    suite = "nas"
    expected_non_uniform = False
    description = "tile-resident dense factorization sweeps"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=10.0,
                             mispredicts_per_kaccess=2.0, mlp=2.0)

    def generate(self, n_accesses: int, seed: int):
        tile_blocks = 1000  # ~64 KB
        reuse = 10
        tiles = []
        produced = 0
        tile_id = 0
        while produced < int(n_accesses * 0.85):
            base = (1 << 24) + tile_id * tile_blocks * L2_BLOCK
            tiles.append(strided_stream(base, L2_BLOCK, tile_blocks,
                                        repeats=reuse))
            produced += tile_blocks * reuse
            tile_id += 1
        panel = streaming_arrays(1, 2 * 1024 * 1024,
                                 max(1, n_accesses - produced), base=1 << 27)
        addresses = np.concatenate(tiles + [panel])
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )

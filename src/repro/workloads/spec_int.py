"""SPECint2000 models: bzip2, gap, mcf, parser.

mcf is the suite's non-uniform member: its network-simplex nodes and
arcs are 256-byte power-of-two structs of which only the first line is
hot, crowding a quarter of the traditional sets.  The other three are
uniform — hash/dictionary traffic and block-sorting working sets with
LRU-friendly reuse (the populations the skewed caches' pseudo-LRU can
pathologically hurt, Figures 10/12).
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import strided_stream, write_mask
from repro.workloads.base import Workload, register_workload
from repro.workloads.patterns import (
    L2_BLOCK,
    aligned_struct_chase,
    chunked_interleave,
    shuffled_cycles,
    streaming_arrays,
)


@register_workload
class Mcf(Workload):
    """SPECint mcf: network simplex for vehicle scheduling.

    Chases 256-byte node/arc structs touching mostly the header line,
    so hot blocks satisfy ``block ≡ 0 (mod 4)`` — a quarter of the
    traditional sets carry the whole working set, far beyond 4 ways.
    Prime hashing spreads the same blocks to ~3 per set.
    """

    name = "mcf"
    suite = "specint"
    expected_non_uniform = True
    description = "pointer chase over 256-byte-aligned node structs"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=4.5,
                             mispredicts_per_kaccess=16.0, mlp=1.1)

    def generate(self, n_accesses: int, seed: int):
        # 22% aligned node chases (fixable conflicts), 78% full-line arc
        # streaming (compulsory).
        n_chase = int(n_accesses * 0.30)
        nodes = aligned_struct_chase(2400, 512, n_chase, seed=seed,
                                     base=1 << 24)
        arcs = streaming_arrays(1, 4 * 1024 * 1024, n_accesses - n_chase,
                                base=1 << 27, element_bytes=64)
        addresses = chunked_interleave([nodes, arcs], chunk=256)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.2, seed + 1
        )


@register_workload
class Bzip2(Workload):
    """SPECint bzip2: block-sorting compression.

    A sequential pass over the current ~800 KB block, random probes
    into a ~400 KB suffix window, and small resident frequency tables —
    a uniform histogram with enough LRU-friendly reuse that imprecise
    replacement costs misses.
    """

    name = "bzip2"
    suite = "specint"
    expected_non_uniform = False
    description = "sequential block scan + random suffix-window probes"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=5.0,
                             mispredicts_per_kaccess=9.0, mlp=1.5)

    def generate(self, n_accesses: int, seed: int):
        n_scan = int(n_accesses * 0.35)
        n_window = int(n_accesses * 0.45)
        scan = streaming_arrays(1, 800 * 1024, n_scan, element_bytes=16)
        window = shuffled_cycles(6144, n_window, seed=seed, base=1 << 25)
        tables = shuffled_cycles(2048, n_accesses - n_scan - n_window,
                                 seed=seed + 2, base=1 << 28)
        addresses = chunked_interleave([scan, window, tables], chunk=128)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )


@register_workload
class Gap(Workload):
    """SPECint gap: computational group theory (GAP interpreter).

    Bag-allocated objects probed through a ~1 MB heap larger than the
    L2, plus interpreter workspace; the heap probes dominate and load
    the sets evenly.
    """

    name = "gap"
    suite = "specint"
    expected_non_uniform = False
    description = "random heap probes over an L2-exceeding bag heap"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=4.0,
                             mispredicts_per_kaccess=11.0, mlp=1.4)

    def generate(self, n_accesses: int, seed: int):
        n_heap = int(n_accesses * 0.6)
        rng = np.random.default_rng(seed)
        heap_blocks = 16384  # 1 MB
        heap = (np.uint64(1 << 24)
                + rng.integers(0, heap_blocks, size=n_heap, dtype=np.uint64)
                * np.uint64(L2_BLOCK))
        workspace = shuffled_cycles(2048, n_accesses - n_heap, seed=seed + 1,
                                    base=1 << 28)
        addresses = chunked_interleave([heap, workspace], chunk=128)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.25, seed + 2
        )


@register_workload
class Parser(Workload):
    """SPECint parser: link-grammar dictionary parsing.

    The dictionary and connector tables (~300 KB) stay L2-resident and
    are probed randomly with high reuse; the input stream is a trickle.
    A model LRU citizen — and therefore a pseudo-LRU victim.
    """

    name = "parser"
    suite = "specint"
    expected_non_uniform = False
    description = "high-reuse random probes of an L2-resident dictionary"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=4.5,
                             mispredicts_per_kaccess=13.0, mlp=1.3)

    def generate(self, n_accesses: int, seed: int):
        n_dict = int(n_accesses * 0.7)
        dictionary = shuffled_cycles(4096, n_dict, seed=seed, base=1 << 24)
        text = streaming_arrays(1, 2 * 1024 * 1024, n_accesses - n_dict,
                                element_bytes=4, base=1 << 27)
        addresses = chunked_interleave([dictionary, text], chunk=96)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.15, seed + 1
        )

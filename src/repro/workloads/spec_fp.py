"""SPECfp models: applu, mgrid, swim, equake, tomcatv.

All five are uniform: dense unit-stride sweeps (the case traditional
indexing already handles perfectly) plus an L2-resident hot component
— coefficient arrays, coarse multigrid levels, the shared vector of a
sparse solve.  The hot components give the pseudo-LRU skewed caches
something to lose, reproducing the up-to-20% miss inflation of
Figure 12 (mgrid, swim, tomcatv) without affecting pMod/pDisp.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import strided_stream, write_mask
from repro.workloads.base import Workload, register_workload
from repro.workloads.patterns import (
    L2_BLOCK,
    chunked_interleave,
    cyclic_sweep,
    shuffled_cycles,
    streaming_arrays,
)


def _resident_cycle(n_blocks: int, count: int, base: int) -> np.ndarray:
    """In-order cyclic reuse of an L2-resident footprint."""
    repeats = max(1, count // n_blocks)
    return cyclic_sweep(n_blocks, repeats, base=base)


@register_workload
class Swim(Workload):
    """SPECfp swim: shallow-water finite differences.

    Four multi-megabyte unit-stride streams plus resident boundary/
    coefficient arrays revisited every sweep.
    """

    name = "swim"
    suite = "specfp"
    expected_non_uniform = False
    description = "unit-stride stencil streams + resident coefficients"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=7.0,
                             mispredicts_per_kaccess=1.5, mlp=5.0)

    def generate(self, n_accesses: int, seed: int):
        n_stream = int(n_accesses * 0.7)
        streams = streaming_arrays(4, 1536 * 1024, n_stream, base=1 << 24)
        hot = _resident_cycle(2048, n_accesses - n_stream, base=1 << 28)
        addresses = chunked_interleave([streams, hot], chunk=256)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )


@register_workload
class Tomcatv(Workload):
    """SPECfp95 tomcatv: vectorized mesh generation.

    Row sweeps over seven mesh arrays with odd element strides plus a
    resident residual array.
    """

    name = "tomcatv"
    suite = "specfp"
    expected_non_uniform = False
    description = "odd-stride mesh sweeps + resident residuals"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=6.5,
                             mispredicts_per_kaccess=1.5, mlp=4.0)

    def generate(self, n_accesses: int, seed: int):
        n_stream = int(n_accesses * 0.65)
        streams = streaming_arrays(7, 1024 * 1024, n_stream, base=1 << 24)
        hot = _resident_cycle(2048, n_accesses - n_stream, base=1 << 28)
        addresses = chunked_interleave([streams, hot], chunk=224)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.25, seed + 1
        )


@register_workload
class Mgrid(Workload):
    """SPECfp mgrid: multigrid V-cycles.

    The fine grid streams, but the coarse levels (a few hundred KB
    total) stay resident and are re-swept every cycle — the deepest
    LRU-friendly reuse among the FP codes, and the application
    skw+pDisp slows the most (7%) in the paper.
    """

    name = "mgrid"
    suite = "specfp"
    expected_non_uniform = False
    description = "streaming fine grid + resident coarse grids"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=8.0,
                             mispredicts_per_kaccess=1.5, mlp=3.5)

    def generate(self, n_accesses: int, seed: int):
        n_fine = int(n_accesses * 0.45)
        fine = streaming_arrays(2, 3 * 1024 * 1024, n_fine, base=1 << 24)
        n_coarse = n_accesses - n_fine
        level1 = _resident_cycle(4096, int(n_coarse * 0.5), base=1 << 28)
        level2 = _resident_cycle(2048, int(n_coarse * 0.3), base=1 << 29)
        level3 = cyclic_sweep(
            1024,
            max(1, (n_coarse - len(level1) - len(level2)) // 1024),
            base=(1 << 29) + (1 << 26),
            stride_blocks=2,  # even coverage of half the sets
        )
        addresses = chunked_interleave([fine, level1, level2, level3],
                                       chunk=250)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )


@register_workload
class Applu(Workload):
    """SPECfp applu: parabolic/elliptic PDE solver (SSOR).

    Five large solution/residual arrays swept with unit stride, plus a
    small resident coefficient block.
    """

    name = "applu"
    suite = "specfp"
    expected_non_uniform = False
    description = "five-array SSOR sweeps + resident coefficients"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=9.0,
                             mispredicts_per_kaccess=2.0, mlp=3.0)

    def generate(self, n_accesses: int, seed: int):
        n_stream = int(n_accesses * 0.8)
        streams = streaming_arrays(5, 1024 * 1024, n_stream, base=1 << 24)
        hot = _resident_cycle(2048, n_accesses - n_stream, base=1 << 28)
        addresses = chunked_interleave([streams, hot], chunk=320)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.3, seed + 1
        )


@register_workload
class Equake(Workload):
    """SPECfp equake: earthquake FE simulation.

    Streaming CSR matrix arrays with an indexed gather into the
    L2-resident displacement vectors.
    """

    name = "equake"
    suite = "specfp"
    expected_non_uniform = False
    description = "CSR streaming + resident displacement-vector gather"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=5.5,
                             mispredicts_per_kaccess=4.0, mlp=2.5)

    def generate(self, n_accesses: int, seed: int):
        n_csr = int(n_accesses * 0.6)
        csr = streaming_arrays(3, 2 * 1024 * 1024, n_csr, base=1 << 24)
        gather = shuffled_cycles(4096, n_accesses - n_csr, seed=seed,
                                 base=1 << 28)
        addresses = chunked_interleave([csr, gather], chunk=192)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.2, seed + 1
        )

"""Remaining scientific codes: sparse, irr, charmm, moldyn, nbf, euler.

irr is the non-uniform member: an irregular PDE solver whose mesh nodes
live at the front of allocator pages.  charmm/moldyn/nbf/euler are
molecular-dynamics and CFD gathers over unaligned footprints — uniform
histograms whose residual (Poisson-tail) conflicts only full
associativity or skewing can remove.  sparse additionally carries two
deliberately adversarial stride components: one at the prime set count
(pMod's single bad stride) and one at ``n_set − 1`` (XOR's classic bad
stride), reproducing the paper's only pMod/XOR slowdowns (−2% on
sparse, Figure 8).
"""

from __future__ import annotations

from repro.trace.records import TraceMetadata
from repro.trace.synthetic import write_mask
from repro.workloads.base import Workload, register_workload
from repro.workloads.patterns import (
    PMOD_BAD_STRIDE_BLOCKS,
    XOR_BAD_STRIDE_BLOCKS,
    adversarial_stride_walk,
    chunked_interleave,
    page_resident_nodes,
    shuffled_cycles,
    streaming_arrays,
)


@register_workload
class Irr(Workload):
    """Iterative PDE solver on an irregular CFD mesh.

    Mesh nodes are arena-allocated with the front half-KB of each page
    hot (as in tree, but shallower), gathered through edge lists that
    also stream.
    """

    name = "irr"
    suite = "scientific"
    expected_non_uniform = True
    description = "page-front mesh-node gathers + edge-list streaming"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=5.5,
                             mispredicts_per_kaccess=7.0, mlp=1.6)

    def generate(self, n_accesses: int, seed: int):
        # 25% page-front node gathers (fixable conflicts), 75% full-line
        # edge-list streaming (compulsory).
        n_nodes = int(n_accesses * 0.40)
        nodes = page_resident_nodes(400, hot_bytes_per_page=512,
                                    count=n_nodes, seed=seed, base=1 << 24)
        edges = streaming_arrays(2, 4 * 1024 * 1024, n_accesses - n_nodes,
                                 base=1 << 27, element_bytes=64)
        addresses = chunked_interleave([nodes, edges], chunk=256)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.2, seed + 1
        )


@register_workload
class Sparse(Workload):
    """SparseBench iterative solver (CG/GMRES on CSR matrices).

    Mostly streaming CSR arrays and a resident solution vector, plus
    small diagonal-probing components whose strides are exactly the
    adversarial cases: the prime set count 2039 (pMod's only bad
    stride) and 2047 = n_set − 1 (XOR's degenerate stride).
    """

    name = "sparse"
    suite = "scientific"
    expected_non_uniform = False
    description = "CSR streaming + adversarial 2039/2047-block strides"

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=5.0,
                             mispredicts_per_kaccess=4.0, mlp=2.5)

    def generate(self, n_accesses: int, seed: int):
        n_csr = int(n_accesses * 0.67)
        n_vec = int(n_accesses * 0.32)
        n_diag = (n_accesses - n_csr - n_vec) // 2
        csr = streaming_arrays(3, 2 * 1024 * 1024, n_csr, base=1 << 24)
        vector = shuffled_cycles(2048, n_vec, seed=seed, base=1 << 28)
        # Diagonal probes: 8 hot lines per walk, beyond 4 ways when the
        # stride collapses onto one set (the strides also alias L1 sets
        # so the reuse is visible at L2).
        pmod_bad = adversarial_stride_walk(PMOD_BAD_STRIDE_BLOCKS, 5, n_diag,
                                           base=1 << 32, repeats_per_group=3)
        # XOR's walk carries one more line: its degenerate stride folds
        # fewer L1-visible reuses through to L2, so the extra line
        # equalizes the two penalties at the paper's ~2%.
        xor_bad = adversarial_stride_walk(XOR_BAD_STRIDE_BLOCKS, 7, n_diag,
                                          base=1 << 34, repeats_per_group=3)
        addresses = chunked_interleave([csr, vector, pmod_bad, xor_bad],
                                       chunk=192)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.2, seed + 1
        )


class _MolecularDynamics(Workload):
    """Shared shape for charmm / moldyn / nbf.

    Neighbor-list force computation: random gathers over an unaligned
    particle footprint (uniform histogram, Poisson-tail conflicts) mixed
    with unit-stride sweeps of the force/position arrays.
    """

    hot_blocks = 4096
    gather_share = 0.5
    #: Stream element width: 16 B keeps the stream's L2 fill rate high
    #: enough to pressure the gather's residency in 4-way sets (the
    #: stream-interference conflicts only FA / skewing can remove);
    #: 8 B lets the L1 absorb most of it, leaving the gather untouched.
    stream_element_bytes = 16

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=8.0,
                             mispredicts_per_kaccess=3.0, mlp=2.0)

    def generate(self, n_accesses: int, seed: int):
        n_gather = int(n_accesses * self.gather_share)
        gather = shuffled_cycles(self.hot_blocks, n_gather, seed=seed,
                                 base=1 << 24)
        sweeps = streaming_arrays(3, 768 * 1024, n_accesses - n_gather,
                                  base=1 << 28,
                                  element_bytes=self.stream_element_bytes,
                                  order_seed=seed + 9)
        addresses = chunked_interleave([gather, sweeps], chunk=160)
        return addresses[:n_accesses], write_mask(
            min(len(addresses), n_accesses), 0.25, seed + 1
        )


@register_workload
class Charmm(_MolecularDynamics):
    """CHARMM molecular dynamics: the largest neighbor-list footprint —
    close enough to capacity that its Poisson tail yields conflict
    misses only full associativity (or skewing) removes (Figure 12)."""

    name = "charmm"
    suite = "scientific"
    expected_non_uniform = False
    description = "large neighbor-list gathers + force-array sweeps"
    hot_blocks = 5700
    gather_share = 0.55


@register_workload
class Moldyn(_MolecularDynamics):
    """moldyn: the CHARMM kernel with a mid-sized particle set."""

    name = "moldyn"
    suite = "scientific"
    expected_non_uniform = False
    description = "mid-sized neighbor-list gathers + sweeps"
    hot_blocks = 3900
    gather_share = 0.45
    stream_element_bytes = 8  # gather fits comfortably; no interference


@register_workload
class Nbf(_MolecularDynamics):
    """GROMOS non-bonded-forces kernel: the smallest gather footprint."""

    name = "nbf"
    suite = "scientific"
    expected_non_uniform = False
    description = "small neighbor-list gathers + sweeps"
    hot_blocks = 3700
    gather_share = 0.35
    stream_element_bytes = 8  # gather fits comfortably; no interference


@register_workload
class Euler(_MolecularDynamics):
    """NASA 3-D Euler solver on an unstructured mesh.

    Edge-based gathers over node states — the footprint nearest to
    capacity among the uniform apps, so full associativity visibly
    helps (Figure 12) while single-hash functions cannot.
    """

    name = "euler"
    suite = "scientific"
    expected_non_uniform = False
    description = "edge-based gathers over near-capacity node states"
    hot_blocks = 5500
    gather_share = 0.5

    def metadata(self) -> TraceMetadata:
        return TraceMetadata(instructions_per_access=6.0,
                             mispredicts_per_kaccess=5.0, mlp=2.2)

"""L2-geometry-aware access-pattern builders shared by the workloads.

These wrap the raw generators of :mod:`repro.trace.synthetic` with the
paper's cache geometry (2048 L2 sets of 64-byte lines) so that each
workload module can say *what it means* — "a conflict-aligned column
walk", "an over-capacity cyclic sweep" — instead of repeating address
arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic import pointer_chase, strided_stream

#: Paper L2 geometry (Table 3): 512 KB, 4-way, 64 B lines.
L2_BLOCK = 64
L2_SETS = 2048
L2_WAYS = 4
L2_BLOCKS = L2_SETS * L2_WAYS
#: Byte distance between blocks mapping to the same traditional L2 set.
SET_ALIAS_BYTES = L2_SETS * L2_BLOCK  # 128 KB


def conflict_column_walk(
    n_rows: int, n_cols: int, repeats: int, base: int = 0
) -> np.ndarray:
    """Column-major walk of a matrix whose row pitch aliases L2 sets.

    Every element of a column maps to the *same* traditional set, so a
    column of more than ``L2_WAYS`` rows thrashes — the access structure
    of the NAS block solvers (bt, sp) and of FFT butterflies operating
    on power-of-two-pitched planes.
    """
    columns = []
    for c in range(n_cols):
        columns.append(
            strided_stream(base + c * L2_BLOCK, SET_ALIAS_BYTES, n_rows,
                           repeats=repeats)
        )
    return np.concatenate(columns)


def cyclic_sweep(n_blocks: int, repeats: int, base: int = 0,
                 permute_seed: int = None, stride_blocks: int = 1,
                 scatter_seed: int = None) -> np.ndarray:
    """Repeated fixed-order sweep over ``n_blocks`` distinct lines.

    With ``n_blocks`` slightly above the cache capacity this is LRU's
    worst case (every access misses) while pseudo-random replacement
    retains most of the footprint — the behavior that lets skewed
    caches remove "capacity" misses in cg/mst (Section 5.5).

    ``scatter_seed`` draws the footprint from a 4x larger region
    instead of a contiguous range: real heap footprints load the sets
    Poisson-like, where a contiguous range puts *exactly* ``floor`` or
    ``ceil`` blocks in every set — a knife-edge that makes results
    flip unrealistically with the set count.
    """
    if scatter_seed is not None:
        rng = np.random.default_rng(scatter_seed)
        blocks = rng.choice(n_blocks * 4, size=n_blocks, replace=False)
        sweep = (np.uint64(base)
                 + np.sort(blocks).astype(np.uint64)
                 * np.uint64(stride_blocks * L2_BLOCK))
    else:
        sweep = strided_stream(base, stride_blocks * L2_BLOCK, n_blocks)
    if permute_seed is not None:
        rng = np.random.default_rng(permute_seed)
        sweep = sweep[rng.permutation(n_blocks)]
    return np.tile(sweep, repeats)


def shuffled_cycles(n_blocks: int, count: int, seed: int,
                    base: int = 0) -> np.ndarray:
    """Random-order epochs over a *contiguous* resident footprint.

    Every epoch visits each of the ``n_blocks`` lines exactly once in a
    fresh permutation.  The footprint covers the traditional sets as
    evenly as a contiguous range can (exactly evenly when ``n_blocks``
    is a multiple of the set count), so the histogram stays uniform
    while the access order still looks like hash/dictionary traffic.
    Reuse distance equals the footprint: LRU retains everything that
    fits, and imprecise (pseudo-LRU) replacement pays — the uniform-app
    behavior the skewed caches damage in Figures 10/12.
    """
    if n_blocks <= 0 or count <= 0:
        raise ValueError("n_blocks and count must be positive")
    rng = np.random.default_rng(seed)
    epochs = []
    produced = 0
    blocks = np.arange(n_blocks, dtype=np.uint64)
    while produced < count:
        epochs.append(rng.permutation(blocks))
        produced += n_blocks
    picks = np.concatenate(epochs)[:count]
    return np.uint64(base) + picks * np.uint64(L2_BLOCK)


def adversarial_stride_walk(stride_blocks: int, lines: int, count: int,
                            base: int = 0, groups: int = 64,
                            repeats_per_group: int = 5) -> np.ndarray:
    """Short repeated walks at a hash-adversarial stride, across many
    probe groups (e.g. the diagonals of different matrix panels).

    Used by the sparse workload to plant the paper's two documented
    pathologies: ``stride_blocks = 2039·128`` collapses each group onto
    a single prime-modulo set (pMod's only bad stride, amplified to
    also alias L1 sets so the reuse reaches L2), and ``stride_blocks =
    2049·128`` degenerates the XOR hash the same way.  Traditional and
    pDisp indexing spread both walks, and spreading the groups keeps
    the overall set histogram uniform.
    """
    if lines <= 0 or count <= 0 or groups <= 0 or repeats_per_group <= 0:
        raise ValueError("lines, count, groups and repeats must be positive")
    group_walks = []
    for g in range(groups):
        # Odd block offset between groups spreads them over the sets.
        group_base = base + g * 97 * L2_BLOCK
        group_walks.append(
            strided_stream(group_base, stride_blocks * L2_BLOCK, lines,
                           repeats=repeats_per_group)
        )
    cycle = np.concatenate(group_walks)
    reps = max(1, -(-count // len(cycle)))
    return np.tile(cycle, reps)[:count]


#: Stride (in L2 blocks) that collapses onto one prime-modulo set while
#: aliasing L1 sets: multiples of n_set = 2039 and of 128 blocks (8 KB).
PMOD_BAD_STRIDE_BLOCKS = 2039 * 128
#: Stride that degenerates the XOR hash (t ⊕ x) the same way.
XOR_BAD_STRIDE_BLOCKS = 2049 * 128


def page_resident_nodes(
    n_pages: int,
    hot_bytes_per_page: int,
    count: int,
    seed: int,
    page_bytes: int = 4096,
    base: int = 0,
) -> np.ndarray:
    """Pointer-chase over objects at the *front* of heap pages.

    Allocators that place one object per page (or per power-of-two
    arena) leave only the first few lines of each page hot, so the hot
    blocks occupy a small slice of the traditional index space — the
    source of tree's (and to a lesser degree irr's) set concentration
    (Figure 13a).
    """
    if hot_bytes_per_page > page_bytes:
        raise ValueError("hot region cannot exceed the page")
    rng = np.random.default_rng(seed)
    pages = rng.integers(0, n_pages, size=count, dtype=np.uint64)
    hot_blocks = max(1, hot_bytes_per_page // L2_BLOCK)
    offsets = rng.integers(0, hot_blocks, size=count, dtype=np.uint64)
    return (np.uint64(base) + pages * np.uint64(page_bytes)
            + offsets * np.uint64(L2_BLOCK))


def aligned_struct_chase(
    n_structs: int, struct_bytes: int, count: int, seed: int, base: int = 0
) -> np.ndarray:
    """Pointer-chase over power-of-two-sized structs, touching only the
    first line of each — mcf's node/arc arrays.

    With 256-byte structs the hot lines all satisfy ``block ≡ 0 (mod
    4)``, crowding one quarter of the traditional sets.
    """
    if struct_bytes % L2_BLOCK:
        raise ValueError("struct size must be a multiple of the line size")
    return pointer_chase(n_structs, struct_bytes, count, seed=seed, base=base)


def streaming_arrays(
    n_arrays: int, array_bytes: int, count: int, base: int = 0,
    element_bytes: int = 8, hop_blocks: int = 37, order_seed: int = None,
) -> np.ndarray:
    """Round-robin streaming sweeps over several large arrays.

    The classic dense-FP pattern (swim, tomcatv, applu): element-level
    accesses walk each array without revisiting a cache block — pure
    compulsory misses no indexing scheme can remove.  Blocks are
    visited in a ``hop_blocks``-strided order (coprime with the array
    length) so even a short trace window loads every cache set evenly;
    within a block, elements stay sequential, so a small
    ``element_bytes`` lets the L1 absorb most of the traffic.
    """
    if n_arrays < 1:
        raise ValueError("need at least one array")
    if count < 1:
        raise ValueError("count must be positive")
    if array_bytes < L2_BLOCK:
        raise ValueError("arrays must span at least one block")
    per_array = count // n_arrays + 1
    elements_per_block = max(1, L2_BLOCK // element_bytes)
    blocks_in_array = array_bytes // L2_BLOCK
    hop = hop_blocks
    while np.gcd(hop, blocks_in_array) != 1:
        hop += 2  # ensure full coverage before any block repeats
    j = np.arange(per_array, dtype=np.uint64)
    offsets = (j % np.uint64(elements_per_block)) \
        * np.uint64(min(element_bytes, L2_BLOCK))
    arrays = []
    rng = np.random.default_rng(order_seed) if order_seed is not None else None
    for i in range(n_arrays):
        if rng is None:
            block_order = (j // np.uint64(elements_per_block) * np.uint64(hop)) \
                % np.uint64(blocks_in_array)
        else:
            # Neighbor-list order: each block visited once, in a random
            # per-array permutation.  The resulting cache-fill arrivals
            # are memoryless per set, so the interference they exert is
            # statistically identical under any indexing function —
            # unlike a deterministic sweep, whose insert phase can
            # accidentally favor one modulus over another.
            n_whole = int(per_array) // elements_per_block + 1
            perm = rng.permutation(blocks_in_array)
            reps = max(1, -(-n_whole // blocks_in_array))
            visit = np.tile(perm, reps)[:n_whole].astype(np.uint64)
            block_order = np.repeat(visit, elements_per_block)[: int(per_array)]
        array_base = base + i * (array_bytes + 4096 + i * L2_BLOCK)
        arrays.append(
            np.uint64(array_base) + block_order * np.uint64(L2_BLOCK) + offsets
        )
    stacked = np.stack(arrays, axis=1)
    return stacked.reshape(-1)[:count]


def chunked_interleave(streams, chunk: int = 256) -> np.ndarray:
    """Interleave streams in ``chunk``-sized runs, preserving each
    stream's internal order.

    Loop nests alternate between access patterns at the granularity of
    inner loops, not per-access; coarse interleaving keeps each
    component's temporal reuse intact while letting them share the
    cache, which per-element interleaving would distort.
    """
    if not streams:
        raise ValueError("need at least one stream")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    pieces = []
    offsets = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining > 0:
        for i, stream in enumerate(streams):
            start = offsets[i]
            if start >= len(stream):
                continue
            end = min(start + chunk, len(stream))
            pieces.append(stream[start:end])
            offsets[i] = end
            remaining -= end - start
    return np.concatenate(pieces)


def poisson_hot_set(
    n_blocks: int, count: int, seed: int, base: int = 0
) -> np.ndarray:
    """Uniform random reuse over an unaligned hot footprint.

    A random footprint loads traditional sets Poisson-uniformly: no
    single-hash function can rebalance it (the histogram is already
    flat) but its Poisson tail still overflows 4-way sets.  Skewed
    caches and full associativity remove those conflicts — the charmm /
    euler / cg residue the paper attributes to "misses that the strided
    access patterns cannot account for" (Section 5.3).
    """
    rng = np.random.default_rng(seed)
    # Unaligned: spread blocks over a region 16x the footprint.
    blocks = rng.choice(n_blocks * 16, size=n_blocks, replace=False).astype(np.uint64)
    picks = rng.integers(0, n_blocks, size=count, dtype=np.int64)
    return np.uint64(base) + blocks[picks] * np.uint64(L2_BLOCK)

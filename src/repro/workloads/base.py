"""Workload interface and registry.

Each of the paper's 23 applications is modeled as a :class:`Workload`
producing a deterministic synthetic :class:`~repro.trace.records.Trace`
whose L2 set-access histogram and stride spectrum match the published
behavior of that application (see DESIGN.md §4 for the substitution
rationale).  The paper's classification — which applications have
non-uniform cache accesses — is encoded in ``expected_non_uniform`` and
*verified* against the generated traces by the test suite.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List

from repro.trace.records import Trace, TraceMetadata

#: The 7 applications the paper classifies as having non-uniform L2
#: set accesses (Section 4).
NONUNIFORM_APPS = ("bt", "cg", "ft", "irr", "mcf", "sp", "tree")

#: The remaining 16 applications (uniform accesses).
UNIFORM_APPS = (
    "applu", "bzip2", "charmm", "equake", "euler", "gap", "is", "lu",
    "mgrid", "moldyn", "mst", "nbf", "parser", "sparse", "swim", "tomcatv",
)


class Workload(abc.ABC):
    """A synthetic stand-in for one of the paper's applications.

    Attributes:
        name: application name as used in the paper's figures.
        suite: source suite (``specint``, ``specfp``, ``nas``, ``olden``,
            ``scientific``).
        expected_non_uniform: the paper's Section 4 classification.
        description: one-line summary of the modeled access behavior.
    """

    name: str = "abstract"
    suite: str = "unknown"
    expected_non_uniform: bool = False
    description: str = ""

    #: Default number of memory accesses at scale=1.0.
    base_length: int = 120_000

    def metadata(self) -> TraceMetadata:
        """CPU-side characteristics; override per workload."""
        return TraceMetadata()

    @abc.abstractmethod
    def generate(self, n_accesses: int, seed: int):
        """Return (addresses, is_write) arrays of length ~n_accesses."""

    def trace(self, scale: float = 1.0, seed: int = 0) -> Trace:
        """Build the trace at ``scale`` times the default length."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = max(1000, int(self.base_length * scale))
        addresses, is_write = self.generate(n, seed)
        return Trace(self.name, addresses, is_write, self.metadata())

    def __repr__(self) -> str:
        kind = "non-uniform" if self.expected_non_uniform else "uniform"
        return f"{type(self).__name__}(name={self.name!r}, {kind})"


_REGISTRY: Dict[str, Callable[[], Workload]] = {}


def register_workload(cls):
    """Class decorator adding a workload to the registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload by paper name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return cls()


def all_workload_names() -> List[str]:
    """All 23 registered application names, sorted."""
    return sorted(_REGISTRY)

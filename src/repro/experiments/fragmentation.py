"""Table 1: prime modulo set fragmentation.

Pure number theory: for each power-of-two physical set count, the
largest prime below it and the fraction of sets the prime modulo
hashing leaves unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.mathutil import largest_prime_below
from repro.reporting import format_table

#: The physical set counts Table 1 tabulates.
PAPER_SET_COUNTS = (256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class FragmentationRow:
    """One row of Table 1."""

    n_sets_physical: int
    n_sets: int

    @property
    def fragmentation(self) -> float:
        return (self.n_sets_physical - self.n_sets) / self.n_sets_physical


def run(set_counts=PAPER_SET_COUNTS) -> List[FragmentationRow]:
    """Compute Table 1 for the given physical set counts."""
    return [
        FragmentationRow(phys, largest_prime_below(phys))
        for phys in set_counts
    ]


def render(rows: List[FragmentationRow]) -> str:
    """Render Table 1 in the paper's layout."""
    return format_table(
        ["n_set_phys", "n_set", "Fragmentation (%)"],
        [
            [row.n_sets_physical, row.n_sets, f"{row.fragmentation:.2%}"]
            for row in rows
        ],
        title="Table 1: Prime modulo set fragmentation",
    )


def _build(ctx: ExperimentContext) -> Dict:
    set_counts = tuple(ctx.param("set_counts", PAPER_SET_COUNTS))
    rows = run(set_counts)
    return {
        "rows": [
            {
                "n_sets_physical": row.n_sets_physical,
                "n_sets": row.n_sets,
                "fragmentation": row.fragmentation,
            }
            for row in rows
        ]
    }


def _render_artifact(artifact: Mapping) -> str:
    rows = [
        FragmentationRow(r["n_sets_physical"], r["n_sets"])
        for r in artifact["data"]["rows"]
    ]
    return render(rows)


register(ExperimentSpec(
    name="fragmentation",
    title="Table 1: prime modulo set fragmentation",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("fragmentation", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Figures 11 and 12: normalized L2 miss counts
(Base, pMod, pDisp, skw+pDisp, FA).

Key reference observations (Section 5.5): the proposed hashing removes
over 30% of the misses on average for the non-uniform applications —
nearly all of them for bt and tree; skw+pDisp can beat even a fully
associative cache on cg; pMod/pDisp never increase misses materially on
the uniform applications, while skw+pDisp inflates several by up to
~20%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import bar_chart, format_table
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 11-12, in presentation order.
MISS_SCHEMES = ("base", "pmod", "pdisp", "skw+pdisp", "fa")


@dataclass
class MissFigure:
    """Normalized miss counts for one application group."""

    title: str
    apps: Sequence[str]
    schemes: Sequence[str]
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, scheme: str) -> float:
        return sum(self.normalized[a][scheme] for a in self.apps) / len(self.apps)


def build_figure(title: str, apps: Sequence[str], store: ResultStore,
                 schemes: Sequence[str] = MISS_SCHEMES) -> MissFigure:
    figure = MissFigure(title=title, apps=list(apps), schemes=list(schemes))
    for app in apps:
        figure.normalized[app] = {
            scheme: store.miss_ratio(app, scheme) for scheme in schemes
        }
    return figure


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure11, figure12)."""
    store = store or ResultStore(config)
    fig11 = build_figure("Figure 11: normalized L2 misses, non-uniform apps",
                         NONUNIFORM_APPS, store)
    fig12 = build_figure("Figure 12: normalized L2 misses, uniform apps",
                         UNIFORM_APPS, store)
    return fig11, fig12


def render(figure: MissFigure) -> str:
    sections = [figure.title]
    for app in figure.apps:
        labels = [f"{app}/{s}" for s in figure.schemes]
        values = [figure.normalized[app][s] for s in figure.schemes]
        sections.append(bar_chart(labels, values, reference=1.0))
    rows = [
        [scheme, f"{figure.average(scheme):.3f}"]
        for scheme in figure.schemes
    ]
    sections.append(format_table(["scheme", "avg normalized misses"], rows))
    return "\n\n".join(sections)


def figure_payload(figure: MissFigure) -> Dict:
    """JSON-serializable form of one miss figure."""
    return {
        "title": figure.title,
        "apps": list(figure.apps),
        "schemes": list(figure.schemes),
        "normalized": figure.normalized,
    }


def figure_from_payload(payload: Mapping) -> MissFigure:
    """Inverse of :func:`figure_payload`."""
    figure = MissFigure(
        title=payload["title"],
        apps=list(payload["apps"]),
        schemes=list(payload["schemes"]),
    )
    figure.normalized = {
        app: dict(by_scheme) for app, by_scheme in payload["normalized"].items()
    }
    return figure


def _build(ctx: ExperimentContext) -> Dict:
    engine = ctx.engine
    engine.run_grid((*NONUNIFORM_APPS, *UNIFORM_APPS), MISS_SCHEMES)
    fig11, fig12 = run(store=engine)
    return {"figures": [figure_payload(fig11), figure_payload(fig12)]}


def _render_artifact(artifact: Mapping) -> str:
    return "\n\n".join(
        render(figure_from_payload(payload))
        for payload in artifact["data"]["figures"]
    )


register(ExperimentSpec(
    name="miss_reduction",
    title="Figures 11-12: normalized L2 miss counts",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("miss_reduction", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

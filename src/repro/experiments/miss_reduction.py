"""Figures 11 and 12: normalized L2 miss counts
(Base, pMod, pDisp, skw+pDisp, FA).

Key reference observations (Section 5.5): the proposed hashing removes
over 30% of the misses on average for the non-uniform applications —
nearly all of them for bt and tree; skw+pDisp can beat even a fully
associative cache on cg; pMod/pDisp never increase misses materially on
the uniform applications, while skw+pDisp inflates several by up to
~20%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import ResultStore, RunConfig, standard_argparser
from repro.reporting import bar_chart, format_table
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 11-12, in presentation order.
MISS_SCHEMES = ("base", "pmod", "pdisp", "skw+pdisp", "fa")


@dataclass
class MissFigure:
    """Normalized miss counts for one application group."""

    title: str
    apps: Sequence[str]
    schemes: Sequence[str]
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, scheme: str) -> float:
        return sum(self.normalized[a][scheme] for a in self.apps) / len(self.apps)


def build_figure(title: str, apps: Sequence[str], store: ResultStore,
                 schemes: Sequence[str] = MISS_SCHEMES) -> MissFigure:
    figure = MissFigure(title=title, apps=list(apps), schemes=list(schemes))
    for app in apps:
        figure.normalized[app] = {
            scheme: store.miss_ratio(app, scheme) for scheme in schemes
        }
    return figure


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure11, figure12)."""
    store = store or ResultStore(config)
    fig11 = build_figure("Figure 11: normalized L2 misses, non-uniform apps",
                         NONUNIFORM_APPS, store)
    fig12 = build_figure("Figure 12: normalized L2 misses, uniform apps",
                         UNIFORM_APPS, store)
    return fig11, fig12


def render(figure: MissFigure) -> str:
    sections = [figure.title]
    for app in figure.apps:
        labels = [f"{app}/{s}" for s in figure.schemes]
        values = [figure.normalized[app][s] for s in figure.schemes]
        sections.append(bar_chart(labels, values, reference=1.0))
    rows = [
        [scheme, f"{figure.average(scheme):.3f}"]
        for scheme in figure.schemes
    ]
    sections.append(format_table(["scheme", "avg normalized misses"], rows))
    return "\n\n".join(sections)


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    fig11, fig12 = run(RunConfig(scale=args.scale, seed=args.seed))
    print(render(fig11))
    print()
    print(render(fig12))


if __name__ == "__main__":
    main()

"""Cluster drill: two-level prime routing through node loss + recovery.

Extension experiment for the multi-node tier (:mod:`repro.cluster`):
each routing *stack* (outer node scheme + inner shard scheme) serves
hot-key Zipfian traffic through a full failure drill —

1. **populate** — the first 40% of the stream lands on a healthy ring
   with R=2 successor replication;
2. **loss** — the hottest node is killed mid-run (crash-loss: its
   contents are gone) and the next 40% is served straight through the
   outage, quorum reads falling back to the surviving replicas;
3. **recover** — the node comes back and the bounded
   :class:`~repro.cluster.ReReplicator` drains its owed replica set
   from its peers, journaled chunk by chunk; the final 20% of the
   stream then runs on the healed ring.

The artifact's ``checks`` block asserts the cluster contract:

* **zero key loss** — after recovery, every key an exact expected
  model says is live is served with the right (freshest) value;
* **served through loss** — no read failed while the node was down
  (R=2 successor placement keeps every key readable under one loss);
* **bounded re-replication** — no drain chunk exceeded its budget, and
  the ``cluster.node_down`` → ``cluster.rereplicate`` →
  ``cluster.node_up`` journal chain is sequence-ordered;
* **Figure-5 ordering survives the hierarchy** — on a strided probe
  stream through the *composed* (node, shard) mapping, the pMod-over-
  pMod stack beats traditional-over-traditional on balance (Eq. 1)
  both on the healthy ring and after quarantine rebalancing shifts the
  dead node's range to its ring successors.

With ``--check`` the CLI exits nonzero unless every check holds (the
``make cluster-check`` gate).
"""

from __future__ import annotations

import hashlib
import json
import sys
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.cluster import Cluster, ClusterRouter, ReplicationConfig
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationKey,
    register,
    render_artifact,
    run_experiment,
)
from repro.hashing import balance_from_counts
from repro.obs import (
    Journal,
    enable_observability,
    get_collector,
    get_journal,
    set_journal,
)
from repro.store import make_traffic, request_keys
from repro.store.selector import canonical_key

#: Routing stacks compared, as "node_scheme+shard_scheme" labels: the
#: all-prime stack, the all-pow2 baseline, and the mixed middle ground.
DEFAULT_STACKS = ("pmod+pmod", "traditional+traditional",
                  "pmod+traditional")

#: Physical fleet geometry; prime-capable levels pay Table-1
#: fragmentation (8 nodes -> 7 usable, 16 shards -> 13).
N_NODES = 8
SHARDS_PER_NODE = 16

#: Minimum fraction of measured op wall time the per-stage attribution
#: must explain (the tracing contract, asserted only when tracing ran).
MIN_STAGE_COVERAGE = 0.9


def _fingerprint(params: Mapping) -> str:
    """Stable digest of every drill knob, for content addressing."""
    payload = json.dumps(dict(params), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _apply(cluster: Cluster, model: Dict[int, int], request) -> None:
    """Serve one request, mirroring its effect into the expected model.

    The model is exact as long as no shard evicts (checked in the
    artifact: the drill sizes capacity so occupancy never evicts), so
    a zero-loss failure always blames replication, never capacity.
    """
    key = canonical_key(request.key)
    if request.op == "put":
        cluster.put(request.key, request.value)
        model[key] = request.value
    elif request.op == "delete":
        cluster.delete(request.key)
        model.pop(key, None)
    else:
        cluster.get(request.key)


def _composed_strided_balance(router: ClusterRouter, n_requests: int,
                              seed: int,
                              exclude: Iterable[int] = ()) -> float:
    """Balance (Eq. 1) of a strided probe through the composed two-level
    map, flattened to (node, shard) slots.  ``exclude`` drops a dead
    node's slots from the histogram so a quarantined ring is graded on
    the capacity actually serving."""
    excluded = set(exclude)
    keys = request_keys(make_traffic("strided", n_requests, seed=seed))
    nodes, shards = router.route_array(keys)
    counts: List[np.ndarray] = []
    for node_id, table in enumerate(router.shard_tables):
        if node_id in excluded:
            continue
        counts.append(np.bincount(shards[nodes == node_id],
                                  minlength=table.n_shards))
    return float(balance_from_counts(np.concatenate(counts)))


def measure(stack: str, n_requests: int, shard_capacity: int = 512,
            assoc: int = 16, replicas: int = 2, budget: int = 128,
            topology: str = "star", seed: int = 0) -> Dict:
    """Run the full drill for one routing stack."""
    node_scheme, shard_scheme = stack.split("+")
    journal = Journal()
    previous = set_journal(journal)
    try:
        cluster = Cluster(
            n_nodes=N_NODES, node_scheme=node_scheme,
            shard_scheme=shard_scheme, shards_per_node=SHARDS_PER_NODE,
            shard_capacity=shard_capacity, assoc=assoc,
            replication=ReplicationConfig(replicas=replicas),
            topology=topology, recovery_budget=budget)
        requests = make_traffic("zipfian", n_requests, seed=seed)
        populate_end = int(n_requests * 0.4)
        loss_end = int(n_requests * 0.8)
        model: Dict[int, int] = {}

        balance_healthy = _composed_strided_balance(
            cluster.router, n_requests, seed)

        # Phase 1 — populate the healthy ring.
        for request in requests[:populate_end]:
            _apply(cluster, model, request)

        # Phase 2 — kill the hottest node, serve straight through.
        victim = int(np.argmax(cluster.node_access_counts()))
        lost_keys = cluster.nodes[victim].occupancy
        failed_before = cluster.counts["failed_reads"]
        latency_mark = len(cluster._latencies)
        cluster.fail_node(victim)
        started = perf_counter()
        for request in requests[populate_end:loss_end]:
            _apply(cluster, model, request)
        loss_elapsed = perf_counter() - started
        loss_window = list(cluster._latencies)[latency_mark:]
        balance_rebalanced = _composed_strided_balance(
            cluster.router.with_node_quarantined([victim]), n_requests,
            seed, exclude=[victim])

        # Phase 3 — recover (bounded drain), then the healed tail.
        drain_started = perf_counter()
        report = cluster.recover_node(victim, budget=budget)
        drain_elapsed = perf_counter() - drain_started
        for request in requests[loss_end:]:
            _apply(cluster, model, request)

        # Verification — exact model, freshest value must serve.
        missing = mismatched = 0
        for key, value in model.items():
            served = cluster.get(key)
            if served is None and value is not None:
                missing += 1
            elif served != value:
                mismatched += 1

        down_events = journal.find("cluster.node_down")
        chunk_events = journal.find("cluster.rereplicate")
        up_events = journal.find("cluster.node_up")
        telemetry = cluster.telemetry()
        attribution = None
        collector = get_collector()
        if collector.enabled:
            # Wall-clock stage decomposition of this stack's sampled
            # ops (route → replica fan-out → quorum settle); the stack
            # label keeps each cell's traces separable on the global
            # collector.
            attribution = collector.analyze(scheme=cluster.scheme)
        return {
            "stack": stack,
            "node_scheme": node_scheme,
            "shard_scheme": shard_scheme,
            "n_nodes": cluster.n_nodes,
            "shards_per_node": cluster.router.shard_tables[0].n_shards,
            "victim": victim,
            "victim_keys_lost": lost_keys,
            "rereplication": report.as_dict(),
            "rereplicate_keys_per_s": (report.copied / drain_elapsed
                                       if drain_elapsed > 0 else 0.0),
            "during_loss": {
                "requests": loss_end - populate_end,
                "rps": ((loss_end - populate_end) / loss_elapsed
                        if loss_elapsed > 0 else 0.0),
                "failed_reads": (cluster.counts["failed_reads"]
                                 - failed_before),
                "sim_p99_s": (float(np.percentile(loss_window, 99))
                              if loss_window else 0.0),
            },
            "zero_loss": {
                "model_size": len(model),
                "missing": missing,
                "mismatched": mismatched,
            },
            "journal_chain": {
                "down_seq": down_events[0].seq if down_events else -1,
                "first_chunk_seq": (chunk_events[0].seq
                                    if chunk_events else -1),
                "up_seq": up_events[0].seq if up_events else -1,
                "chunks": len(chunk_events),
                "max_chunk_moved": max(
                    (e.fields["moved"] for e in chunk_events), default=0),
            },
            "balance_healthy": balance_healthy,
            "balance_rebalanced": balance_rebalanced,
            "balance_recovered": _composed_strided_balance(
                cluster.router, n_requests, seed),
            "quorum_misses": cluster.counts["quorum_misses"],
            "evictions": telemetry.evictions,
            "telemetry": telemetry.as_dict(),
            "attribution": attribution,
        }
    finally:
        set_journal(previous)


def run(n_requests: int = 8000, shard_capacity: int = 512,
        assoc: int = 16, replicas: int = 2, budget: int = 128,
        topology: str = "star", seed: int = 0,
        stacks: List[str] = None) -> Dict[str, Dict]:
    """Full sweep: ``result[stack] = drill measurement payload``."""
    return {
        stack: measure(stack, n_requests, shard_capacity=shard_capacity,
                       assoc=assoc, replicas=replicas, budget=budget,
                       topology=topology, seed=seed)
        for stack in (stacks or DEFAULT_STACKS)
    }


def cluster_checks(cells: Mapping[str, Mapping]) -> Dict[str, bool]:
    """The cluster contract, one boolean per claim."""
    checks: Dict[str, bool] = {}
    for stack, cell in cells.items():
        loss = cell["zero_loss"]
        chain = cell["journal_chain"]
        drain = cell["rereplication"]
        checks[f"{stack}_zero_key_loss"] = (
            loss["missing"] == 0 and loss["mismatched"] == 0)
        checks[f"{stack}_served_through_loss"] = (
            cell["during_loss"]["failed_reads"] == 0)
        checks[f"{stack}_chunks_under_budget"] = (
            0 < chain["max_chunk_moved"] <= drain["budget"])
        checks[f"{stack}_journal_chain_ordered"] = (
            0 <= chain["down_seq"] < chain["first_chunk_seq"]
            < chain["up_seq"])
        checks[f"{stack}_no_evictions"] = cell["evictions"] == 0
        attribution = cell.get("attribution")
        if attribution and attribution.get("n_traces"):
            checks[f"{stack}_stage_coverage"] = bool(
                attribution["coverage"] >= MIN_STAGE_COVERAGE)
    prime = cells.get("pmod+pmod")
    pow2 = cells.get("traditional+traditional")
    if prime is not None and pow2 is not None:
        checks["pmod_stack_beats_pow2_stack_healthy"] = (
            prime["balance_healthy"] < pow2["balance_healthy"])
        checks["pmod_stack_beats_pow2_stack_after_rebalance"] = (
            prime["balance_rebalanced"] < pow2["balance_rebalanced"])
        checks["pmod_stack_beats_pow2_stack_recovered"] = (
            prime["balance_recovered"] < pow2["balance_recovered"])
    return checks


def render(data: Mapping) -> str:
    """One row per stack plus the contract verdict."""
    header = (f"{'stack':<26} {'ring':>7} {'victim':>6} {'copied':>6} "
              f"{'chunks':>6} {'loss rps':>9} {'p99(sim)':>9} "
              f"{'bal healthy':>11} {'bal rebal':>10}")
    lines = [
        f"Cluster drill — node loss + bounded re-replication under live "
        f"zipfian traffic ({data['n_requests']} requests, R="
        f"{data['replicas']}, budget {data['budget']}, "
        f"{data['topology']} fabric)",
        header,
        "-" * len(header),
    ]
    for stack, cell in data["cells"].items():
        drill = cell["during_loss"]
        lines.append(
            f"{stack:<26} "
            f"{cell['n_nodes']:>3}x{cell['shards_per_node']:<3} "
            f"{cell['victim']:>6} {cell['rereplication']['copied']:>6} "
            f"{cell['journal_chain']['chunks']:>6} "
            f"{drill['rps']:>9.0f} {drill['sim_p99_s'] * 1e6:>7.0f}us "
            f"{cell['balance_healthy']:>11.3f} "
            f"{cell['balance_rebalanced']:>10.3f}")
    attributed = [(stack, cell["attribution"])
                  for stack, cell in data["cells"].items()
                  if cell.get("attribution")
                  and cell["attribution"].get("n_traces")]
    if attributed:
        lines.append("")
        lines.append("Per-stage op attribution (sampled wall-clock "
                     "traces):")
        for stack, ana in attributed:
            stages = ", ".join(
                f"{name} {stage['share']:.0%}"
                for name, stage in list(ana["stages"].items())[:4])
            lines.append(
                f"  {stack}: {ana['n_traces']} traces, coverage "
                f"{ana['coverage']:.0%} — {stages}")
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        lines.append("")
        lines.append(
            f"Cluster contract: {verdict} "
            f"({sum(checks.values())}/{len(checks)} checks hold — zero "
            f"loss, served through loss, bounded drain, Figure 5 "
            f"ordering on the composed map)")
    return "\n".join(lines)


def _build(ctx: ExperimentContext) -> Dict:
    n_requests = max(10, int(int(ctx.param("requests", 8000))
                             * ctx.config.scale))
    params = {
        "n_requests": n_requests,
        "shard_capacity": int(ctx.param("shard_capacity", 512)),
        "assoc": int(ctx.param("assoc", 16)),
        "replicas": int(ctx.param("replicas", 2)),
        "budget": int(ctx.param("budget", 128)),
        "topology": str(ctx.param("topology", "star")),
        "seed": ctx.config.seed,
    }
    stacks = list(ctx.param("stacks", DEFAULT_STACKS))
    cache = ctx.engine.cache
    fingerprint = _fingerprint(params)

    def cell_key(stack: str) -> SimulationKey:
        return SimulationKey(
            workload="cluster-drill",
            scheme=stack,
            scale=ctx.config.scale,
            seed=ctx.config.seed,
            skew_replacement=ctx.config.skew_replacement,
            machine=fingerprint,
        )

    cells: Dict[str, Dict] = {}
    for stack in stacks:
        payload: Optional[Dict] = None
        if cache is not None:
            payload = cache.get_payload(cell_key(stack))
        if payload is None:
            kwargs = dict(params)
            kwargs.pop("n_requests")
            payload = measure(stack, n_requests, **kwargs)
            if cache is not None:
                cache.put_payload(cell_key(stack), payload)
        cells[stack] = payload
    return {
        "n_requests": n_requests,
        "shard_capacity": params["shard_capacity"],
        "assoc": params["assoc"],
        "replicas": params["replicas"],
        "budget": params["budget"],
        "topology": params["topology"],
        "cells": cells,
        "checks": cluster_checks(cells),
    }


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="cluster",
    title="Cluster drill: two-level routing through node loss and "
          "re-replication (extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every cluster contract "
                             "check holds (the make cluster-check gate)")
    parser.add_argument("--trace", action="store_true",
                        help="enable op tracing: sample wall-clock stage "
                             "timelines and publish the per-stack "
                             "critical-path decomposition")
    args = parser.parse_args()
    if args.trace:
        enable_observability()
    artifact = run_experiment("cluster", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if failing:
            print(f"cluster-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("cluster-check: ok")


if __name__ == "__main__":
    main()

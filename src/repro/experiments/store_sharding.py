"""Store sharding: the paper's indexing schemes serving real traffic.

Extension experiment: route hot-key Zipfian, strided-batch and
power-of-two-aligned request streams through a
:class:`~repro.store.ShardedStore` under each shard-selection scheme
(traditional modulo, XOR, pMod with a prime shard count, pDisp with the
paper's p = 9), and measure what Figures 5/6 measure for L2 sets — on
served requests instead of simulated addresses:

* balance (Eq. 1) of the observed per-shard access histogram,
* concentration (Eq. 2) of the shard-access stream,
* plus the serving-side symptoms: hit rate (conflict evictions), tail
  per-shard load, and replay throughput.

Expected shape (the paper's Figure 5 ordering, transplanted): pMod and
pDisp strictly beat traditional modulo on the strided and pow2-aligned
streams, where power-of-two routing collapses onto a handful of shards.

With ``--cache-dir`` set, each (pattern, scheme) measurement is
content-addressed through the engine's :class:`~repro.engine.cache.
ResultCache` payload surface and reused across runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationKey,
    register,
    render_artifact,
    run_experiment,
)
from repro.reporting import shard_balance_chart, shard_balance_table
from repro.store import ShardedStore, make_traffic, replay

#: Schemes compared, in the paper's figure order.
DEFAULT_SCHEMES = ("traditional", "xor", "pmod", "pdisp")

#: Traffic patterns replayed against every scheme.
DEFAULT_PATTERNS = ("zipfian", "strided", "pow2")

#: Patterns on which the paper's ordering (pMod/pDisp < traditional)
#: is asserted by the artifact's ``checks`` block.
ORDERED_PATTERNS = ("strided", "pow2")


def _store_fingerprint(params: Mapping) -> str:
    """Stable digest of every store/traffic knob, for content addressing."""
    payload = json.dumps(dict(params), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def measure(pattern: str, scheme: str, n_requests: int, n_shards: int = 64,
            shard_capacity: int = 512, assoc: int = 8,
            replacement: str = "lru", workers: int = 1,
            seed: int = 0) -> Dict:
    """Replay one (pattern, scheme) cell; returns the report payload."""
    store = ShardedStore(n_shards=n_shards, scheme=scheme,
                         shard_capacity=shard_capacity, assoc=assoc,
                         replacement=replacement)
    requests = make_traffic(pattern, n_requests, seed=seed)
    return replay(store, requests, workers=workers).as_dict()


def run(n_requests: int = 20000, n_shards: int = 64,
        shard_capacity: int = 512, assoc: int = 8, replacement: str = "lru",
        workers: int = 1, seed: int = 0,
        schemes: List[str] = None,
        patterns: List[str] = None) -> Dict[str, Dict[str, Dict]]:
    """Full grid: ``result[pattern][scheme] = replay report payload``."""
    schemes = list(schemes or DEFAULT_SCHEMES)
    patterns = list(patterns or DEFAULT_PATTERNS)
    return {
        pattern: {
            scheme: measure(pattern, scheme, n_requests, n_shards=n_shards,
                            shard_capacity=shard_capacity, assoc=assoc,
                            replacement=replacement, workers=workers,
                            seed=seed)
            for scheme in schemes
        }
        for pattern in patterns
    }


def ordering_checks(grid: Mapping[str, Mapping[str, Mapping]]) -> Dict[str, bool]:
    """Figure 5 ordering on served traffic: prime schemes < traditional.

    One boolean per (pattern, prime scheme) pair on the structured
    patterns; True means strictly better (lower) balance than the
    traditional power-of-two modulo selector.
    """
    checks: Dict[str, bool] = {}
    for pattern in ORDERED_PATTERNS:
        cells = grid.get(pattern, {})
        base = cells.get("traditional")
        if base is None:
            continue
        for scheme in ("pmod", "pdisp"):
            if scheme in cells:
                checks[f"{scheme}_beats_traditional_{pattern}"] = bool(
                    cells[scheme]["telemetry"]["balance"]
                    < base["telemetry"]["balance"]
                )
    return checks


def render(data: Mapping) -> str:
    """Tables + balance charts, one section per traffic pattern."""
    sections = []
    for pattern, cells in data["patterns"].items():
        rows = [
            {**payload["telemetry"],
             "throughput_rps": payload["throughput_rps"],
             "chunk_skew": payload.get("chunk_skew")}
            for payload in cells.values()
        ]
        sections.append(shard_balance_table(
            rows,
            title=(f"Store sharding — {pattern} traffic "
                   f"({data['n_requests']} requests, "
                   f"{data['n_shards']} shards)"),
        ))
        sections.append(shard_balance_chart(
            rows, title=f"balance (1.0 = ideal) — {pattern}"))
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        sections.append(
            f"Figure 5 ordering on served traffic: {verdict} "
            f"({sum(checks.values())}/{len(checks)} prime-vs-traditional "
            f"comparisons hold)"
        )
    return "\n\n".join(sections)


def _build(ctx: ExperimentContext) -> Dict:
    n_requests = max(1, int(int(ctx.param("requests", 20000))
                            * ctx.config.scale))
    params = {
        "n_requests": n_requests,
        "n_shards": int(ctx.param("n_shards", 64)),
        "shard_capacity": int(ctx.param("shard_capacity", 512)),
        "assoc": int(ctx.param("assoc", 8)),
        "replacement": str(ctx.param("replacement", "lru")),
        "workers": int(ctx.param("workers", 1)),
        "seed": ctx.config.seed,
    }
    schemes = list(ctx.param("schemes", DEFAULT_SCHEMES))
    patterns = list(ctx.param("patterns", DEFAULT_PATTERNS))
    cache = ctx.engine.cache
    fingerprint = _store_fingerprint(params)

    def cell_key(pattern: str, scheme: str) -> SimulationKey:
        return SimulationKey(
            workload=f"store-{pattern}",
            scheme=scheme,
            scale=ctx.config.scale,
            seed=ctx.config.seed,
            skew_replacement=ctx.config.skew_replacement,
            machine=fingerprint,
        )

    grid: Dict[str, Dict[str, Dict]] = {}
    for pattern in patterns:
        grid[pattern] = {}
        for scheme in schemes:
            payload: Optional[Dict] = None
            if cache is not None:
                payload = cache.get_payload(cell_key(pattern, scheme))
            if payload is None:
                payload = measure(pattern, scheme, **params)
                if cache is not None:
                    cache.put_payload(cell_key(pattern, scheme), payload)
            grid[pattern][scheme] = payload
    return {
        "n_requests": n_requests,
        "n_shards": params["n_shards"],
        "shard_capacity": params["shard_capacity"],
        "assoc": params["assoc"],
        "replacement": params["replacement"],
        "workers": params["workers"],
        "patterns": grid,
        "checks": ordering_checks(grid),
    }


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="store_sharding",
    title="Store sharding: shard balance under skewed traffic (extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("store_sharding", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Attack-success-vs-scheme curves: cracking, flooding, rotating.

Extension experiment closing the security loop around the paper's
schemes.  Three phases, all seed-deterministic:

1. **Attack** — a :class:`~repro.adversary.ProbeAdversary` cracks each
   scheme black-box through the serve API (timing/co-batching oracle
   only).  Traditional and pow2-XOR are GF(2)-linear and fall to an
   **exact** solve in ~1k probes; pMod and pDisp force the per-key
   bucketing fallback, costing **>= 5x** the probes for the same
   universe — the attack-cost gap this experiment's headline curve
   reports.  Each crack then synthesizes a hostile trace and replays
   it on a fresh store, recording the achieved Eq. 1 / Eq. 2 damage.
2. **Defense, rotation on** — a keyed store behind the full loop:
   hostile flood -> :meth:`~repro.obs.health.HashQualityDetector.
   grade_adversary` pages (``health.adversary``) -> the
   :class:`~repro.control.RemediationController` fires its
   :class:`~repro.control.KeyRotator` -> epoch migration under a fresh
   secret -> ``adversary.mitigated`` on the journal.  Zero key loss is
   asserted against an exact expected model.
3. **Defense, rotation off** — the same flood with no rotator: the
   page fires and *stays* active, the victim shard stays pinned.  The
   contrast is the defense's value, measured not claimed.

The artifact's ``checks`` block (the ``make adversary-check`` gate)
asserts the full contract: exact recovery of the linear schemes within
a bounded probe budget, the >=5x prime probe factor, hostile traffic
tripping the adversarial-drift page, and keyed rotation restoring
Eq. 1 / Eq. 2 green bands with zero key loss.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.adversary import run_crack, synthesize_hostile_trace
from repro.adversary.probe import CrackResult
from repro.control import (
    ControlConfig,
    KeyRotator,
    RemediationController,
)
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.obs import (
    Journal,
    disable_observability,
    enable_observability,
    get_registry,
)
from repro.obs.health import HashQualityDetector, SloEngine
from repro.serve import AdmissionConfig, BatchConfig, FaultPolicy, Frontend
from repro.store import ShardedStore

#: Schemes attacked, public first, the keyed defense last.
DEFAULT_SCHEMES = ("traditional", "xor", "pmod", "pdisp", "keyed")

#: Probe bill the GF(2)-linear schemes must fall within (they measure
#: ~1k; the bound leaves headroom without letting them near the primes).
LINEAR_PROBE_BUDGET = 2000

#: Required attack-cost multiplier of the prime schemes over the
#: cheapest-to-crack linear scheme.
PRIME_PROBE_FACTOR = 5.0


def _build_frontend(scheme: str, n_shards: int,
                    shard_capacity: int) -> Frontend:
    """A frontend tuned for probing: batchy, unthrottled, patient.

    The oracle needs co-batching (``max_batch_size`` well above the
    burst width) and clean responses (no admission rate limit, long
    timeout) — an attacker picks quiet hours for the same reason.
    """
    store = ShardedStore(n_shards=n_shards, scheme=scheme,
                         shard_capacity=shard_capacity)
    return Frontend(
        store,
        batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
        admission=AdmissionConfig(rate=None, max_queue_depth=4096),
        policy=FaultPolicy(timeout_s=5.0, max_retries=0),
    )


def attack_cell(scheme: str, n_shards: int = 16, key_bits: int = 16,
                crack_keys: int = 256, hostile_requests: int = 4000,
                distinct_keys: int = 16, shard_capacity: int = 256,
                seed: int = 0) -> Dict[str, Any]:
    """Crack one scheme black-box, then replay its hostile trace.

    The hostile replay runs on a *fresh* store of the same
    configuration (the routing map is identical), so the recorded
    Eq. 1 / Eq. 2 damage is the trace's alone, undiluted by the
    probe traffic that discovered it.
    """
    journal = Journal()
    result: CrackResult = run_crack(
        lambda: _build_frontend(scheme, n_shards, shard_capacity),
        key_bits=key_bits, crack_keys=crack_keys, seed=seed,
        journal=journal)
    trace = synthesize_hostile_trace(result, hostile_requests,
                                     distinct_keys=distinct_keys)
    victim = ShardedStore(n_shards=n_shards, scheme=scheme,
                          shard_capacity=shard_capacity)
    for request in trace.requests:
        if request.op == "put":
            victim.put(request.key, request.value)
        else:
            victim.get(request.key)
    telemetry = victim.telemetry()
    return {
        "scheme": scheme,
        "crack": result.as_dict(),
        "probe_phases": [dict(e.fields, kind=e.kind)
                         for e in journal.find("adversary.probe_phase")],
        "hostile": {
            "requests": len(trace),
            "distinct_keys": len(trace.keys),
            "target_class": trace.target_class,
            "balance": telemetry.balance,
            "concentration": telemetry.concentration,
            "tail_load": telemetry.tail_load,
        },
    }


def defense_cell(rotate: bool, scheme: str = "keyed_pdisp",
                 n_shards: int = 16, shard_capacity: int = 512,
                 resident_keys: int = 200, flood_per_round: int = 640,
                 hot_keys: int = 16, max_rounds: int = 6,
                 normal_requests: int = 2000,
                 seed: int = 0) -> Dict[str, Any]:
    """Flood a keyed store's victim shard; rotate (or don't) and grade.

    The attacker here is granted the crack for free (phase 1 already
    priced it); the phase under test is the *defense*: sustained
    hot-shard + hot-key concentration pages ``health.adversary``, the
    controller answers with a key rotation (when ``rotate``), and the
    journal records page -> rotation -> mitigation.  An exact expected
    model of resident keys is checked after the dust settles.
    """
    journal = Journal()
    store = ShardedStore(n_shards=n_shards, scheme=scheme,
                         shard_capacity=shard_capacity)
    detector = HashQualityDetector(journal=journal)
    rotator = KeyRotator(store, seed=seed, journal=journal) if rotate \
        else None
    # The rotation-off arm models "alarm wired, no automated answer":
    # the detector still pages (graded directly below), but the
    # controller gets no detector — otherwise its *drift* rule would
    # keep resharding the attack skew away, resetting the very window
    # the page is measured on and muddying the contrast.
    controller = RemediationController(
        store, SloEngine([], journal=journal),
        detector=detector if rotate else None,
        config=ControlConfig(target_scheme=scheme), journal=journal,
        rotator=rotator)

    model: Dict[int, int] = {}
    for i in range(resident_keys):
        key = i * 1009 + 3
        store.put(key, i)
        model[key] = i
    controller.step()  # clean baseline observation

    # The flood: every request lands on one victim shard.  (Routing
    # computed white-box here — phase 1 already priced discovering it
    # black-box; this phase tests the defense, not the attacker.)
    victim_shard = store.shard_for(seed + 12345)
    universe = np.arange(1 << 14, dtype=np.uint64)
    routed = store.routing.shard_array(universe)
    hot = [int(k) for k in universe[routed == victim_shard][:hot_keys]]
    rounds_to_rotation: Optional[int] = None
    rounds_to_page: Optional[int] = None
    for round_no in range(1, max_rounds + 1):
        for i in range(flood_per_round):
            store.get(hot[i % len(hot)])
        if not rotate:
            # No rotator on the controller means nothing polls
            # adversary mode — grade it directly, as a dashboard would.
            detector.grade_adversary(store.telemetry())
        actions = controller.step()
        if rounds_to_page is None and detector.adversary_tripped():
            rounds_to_page = round_no
        if any(a.kind == "key_rotation" for a in actions):
            rounds_to_rotation = round_no
            break

    # State at the end of the flood: without rotation this is where
    # the victim still sits — shard pinned, page active.  (After the
    # flood stops, the alarm resolving on clean traffic is correct
    # behavior, not mitigation; the journal tells the two apart.)
    after_flood = store.telemetry()
    page_after_flood = bool(detector.adversary_tripped())

    # Post phase: the attacker's map is stale (or the flood simply
    # stops); normal traffic resumes and the loop re-grades.
    for i in range(normal_requests):
        store.get((i * 2654435761 + seed) & 0xFFFF)
    if not rotate:
        detector.grade_adversary(store.telemetry())
    controller.step()
    steps_after = 1
    if rotate and journal.find("adversary.mitigated") == []:
        controller.step()  # one more grading pass if needed
        steps_after += 1

    missing = sum(1 for key, value in model.items()
                  if store.get(key) != value)
    telemetry = store.telemetry()
    return {
        "scheme": scheme,
        "rotate": rotate,
        "rounds_to_page": rounds_to_page,
        "rounds_to_rotation": rounds_to_rotation,
        "rotations": rotator.rotations if rotator else 0,
        "page_after_flood": page_after_flood,
        "tail_after_flood": after_flood.tail_load,
        "page_active_at_end": bool(detector.adversary_tripped()),
        "drift_tripped_at_end": [s.scheme for s in detector.tripped()],
        "mitigated_events": [dict(e.fields)
                             for e in journal.find("adversary.mitigated")],
        "rotation_events": [dict(e.fields)
                            for e in journal.find("control.key_rotation")],
        "page_events": len([e for e in journal.find("health.alert_fired")
                            if e.fields.get("slo") == "health.adversary"]),
        "final_epoch": store.epoch,
        "zero_loss": {"model_size": len(model), "lost": missing},
        "final": {
            "balance": telemetry.balance,
            "concentration": telemetry.concentration,
            "tail_load": telemetry.tail_load,
        },
    }


def adversary_checks(data: Mapping[str, Any]) -> Dict[str, bool]:
    """The attack/defense contract, one boolean per claim."""
    attacks = data["attacks"]
    checks: Dict[str, bool] = {}
    for scheme in ("traditional", "xor"):
        crack = attacks[scheme]["crack"]
        checks[f"{scheme}_exact_recovery"] = (
            crack["method"] == "gf2" and crack["verified"]
            and crack["accuracy"] == 1.0)
        checks[f"{scheme}_bounded_probes"] = (
            crack["probes"] <= LINEAR_PROBE_BUDGET)
    for scheme in ("pmod", "pdisp", "keyed"):
        crack = attacks[scheme]["crack"]
        checks[f"{scheme}_resists_gf2"] = (
            crack["method"] == "bucketing" and not crack["verified"])
    linear_max = max(attacks["traditional"]["crack"]["probes"],
                     attacks["xor"]["crack"]["probes"])
    prime_min = min(attacks["pmod"]["crack"]["probes"],
                    attacks["pdisp"]["crack"]["probes"])
    checks["prime_probe_factor"] = (
        prime_min >= PRIME_PROBE_FACTOR * linear_max)
    checks["keyed_probe_factor"] = (
        attacks["keyed"]["crack"]["probes"]
        >= PRIME_PROBE_FACTOR * linear_max)
    checks["hostile_concentrates_every_scheme"] = all(
        cell["hostile"]["tail_load"] >= 4.0 for cell in attacks.values())

    on = data["defense"]["rotation_on"]
    off = data["defense"]["rotation_off"]
    checks["adversary_page_fires"] = (
        on["rounds_to_page"] is not None and on["page_events"] >= 1)
    checks["rotation_triggered"] = (
        on["rounds_to_rotation"] is not None and on["rotations"] >= 1
        and len(on["rotation_events"]) >= 1)
    checks["rotation_zero_key_loss"] = (
        on["zero_loss"]["lost"] == 0 and on["final_epoch"] >= 1)
    checks["mitigation_journaled"] = len(on["mitigated_events"]) >= 1
    checks["post_rotation_green"] = (
        not on["page_active_at_end"]
        and on["scheme"] not in on["drift_tripped_at_end"]
        and on["final"]["balance"] <= 1.5)
    checks["no_rotation_stays_pinned"] = (
        off["rotations"] == 0 and off["page_after_flood"]
        and off["tail_after_flood"] >= 4.0
        and len(off["mitigated_events"]) == 0
        and off["final_epoch"] == 0)
    return checks


def run(n_shards: int = 16, key_bits: int = 16, crack_keys: int = 256,
        hostile_requests: int = 4000, seed: int = 0,
        schemes: Optional[List[str]] = None) -> Dict[str, Any]:
    """Full sweep: attack every scheme, then both defense arms.

    Observability is enabled for the duration (and restored after)
    because the defense drill's adversarial-drift alarm keys on the
    store's heavy-hitter top-K, which only the observed store tracks.
    """
    was_enabled = get_registry().enabled
    if not was_enabled:
        enable_observability()
    try:
        attacks = {
            scheme: attack_cell(scheme, n_shards=n_shards,
                                key_bits=key_bits, crack_keys=crack_keys,
                                hostile_requests=hostile_requests,
                                seed=seed)
            for scheme in (schemes or DEFAULT_SCHEMES)
        }
        defense = {
            "rotation_on": defense_cell(rotate=True, n_shards=n_shards,
                                        seed=seed),
            "rotation_off": defense_cell(rotate=False, n_shards=n_shards,
                                         seed=seed),
        }
    finally:
        if not was_enabled:
            disable_observability()
    return {"attacks": attacks, "defense": defense}


def render(data: Mapping[str, Any]) -> str:
    """Attack curve table plus the defense drill verdict."""
    header = (f"{'scheme':<12} {'method':>10} {'verified':>8} "
              f"{'probes':>7} {'tests':>6} {'hostile tail':>12} "
              f"{'hostile conc':>12}")
    lines = [
        "Attack-success-vs-scheme: black-box probes to crack the "
        "key->shard map",
        header,
        "-" * len(header),
    ]
    for scheme, cell in data["attacks"].items():
        crack = cell["crack"]
        hostile = cell["hostile"]
        lines.append(
            f"{scheme:<12} {crack['method']:>10} "
            f"{str(crack['verified']):>8} {crack['probes']:>7} "
            f"{crack['conflict_tests']:>6} "
            f"{hostile['tail_load']:>12.2f} "
            f"{hostile['concentration']:>12.2f}")
    attacks = data["attacks"]
    linear_max = max(attacks["traditional"]["crack"]["probes"],
                     attacks["xor"]["crack"]["probes"])
    prime_min = min(attacks["pmod"]["crack"]["probes"],
                    attacks["pdisp"]["crack"]["probes"])
    lines.append("")
    lines.append(
        f"Prime probe factor: {prime_min / linear_max:.1f}x "
        f"(prime min {prime_min} / linear max {linear_max}; "
        f"required >= {PRIME_PROBE_FACTOR:.0f}x)")
    on = data["defense"]["rotation_on"]
    off = data["defense"]["rotation_off"]
    lines.append(
        f"Defense ({on['scheme']}): page after round "
        f"{on['rounds_to_page']}, rotation in round "
        f"{on['rounds_to_rotation']}, {len(on['mitigated_events'])} "
        f"mitigation(s), {on['zero_loss']['lost']} of "
        f"{on['zero_loss']['model_size']} keys lost, final balance "
        f"{on['final']['balance']:.2f}")
    lines.append(
        f"Without rotation: page "
        f"{'active' if off['page_after_flood'] else 'clear'} through the "
        f"flood, tail load {off['tail_after_flood']:.2f}, "
        f"0 mitigations, epoch {off['final_epoch']}")
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        lines.append("")
        lines.append(
            f"Adversary contract: {verdict} "
            f"({sum(checks.values())}/{len(checks)} checks hold — exact "
            f"linear recovery, >=5x prime probe cost, page on flood, "
            f"keyed rotation restores green with zero loss)")
    return "\n".join(lines)


def _build(ctx: ExperimentContext) -> Dict:
    params = {
        "n_shards": int(ctx.param("n_shards", 16)),
        "key_bits": int(ctx.param("key_bits", 16)),
        "crack_keys": int(ctx.param("crack_keys", 256)),
        "hostile_requests": int(ctx.param("hostile_requests", 4000)),
        "seed": ctx.config.seed,
    }
    data = run(**params)
    data.update(params)
    data["checks"] = adversary_checks(data)
    return data


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="adversary",
    title="Hash cracking vs scheme: probe cost, hostile damage, keyed "
          "rotation (extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every adversary contract "
                             "check holds (the make adversary-check gate)")
    args = parser.parse_args()
    artifact = run_experiment("adversary", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if failing:
            print(f"adversary-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("adversary-check: ok")


if __name__ == "__main__":
    main()

"""Seed robustness: are the headline results an artifact of one RNG?

Every workload generator is seeded; this experiment re-runs a chosen
slice of the evaluation across several seeds and reports the spread of
each scheme's speedup.  The reproduction's claims should hold for
*every* seed, not on average — the tests assert the min across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationEngine,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import format_table


@dataclass(frozen=True)
class SeedSpread:
    """Speedup statistics across seeds for one (workload, scheme)."""

    workload: str
    scheme: str
    speedups: tuple

    @property
    def minimum(self) -> float:
        return min(self.speedups)

    @property
    def maximum(self) -> float:
        return max(self.speedups)

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def relative_spread(self) -> float:
        """(max − min) / mean — the run-to-run variability."""
        return (self.maximum - self.minimum) / self.mean


def run(workloads: Sequence[str] = ("tree", "mcf", "lu"),
        schemes: Sequence[str] = ("pmod", "pdisp"),
        seeds: Sequence[int] = (0, 1, 2),
        scale: float = 0.3,
        make_store: Optional[Callable[[RunConfig], ResultStore]] = None,
        ) -> List[SeedSpread]:
    """``make_store`` builds the per-seed runner; the default is an
    in-memory :class:`ResultStore`, and the registry adapter passes
    cache-sharing engines instead."""
    results = []
    make_store = make_store or ResultStore
    stores = {
        seed: make_store(RunConfig(scale=scale, seed=seed))
        for seed in seeds
    }
    for workload in workloads:
        for scheme in schemes:
            speedups = tuple(
                stores[seed].speedup(workload, scheme) for seed in seeds
            )
            results.append(SeedSpread(workload, scheme, speedups))
    return results


def render(results: List[SeedSpread]) -> str:
    return format_table(
        ["workload", "scheme", "min", "mean", "max", "spread"],
        [
            [r.workload, r.scheme, f"{r.minimum:.3f}", f"{r.mean:.3f}",
             f"{r.maximum:.3f}", f"{r.relative_spread:.1%}"]
            for r in results
        ],
        title="Speedup across workload RNG seeds",
    )


def _build(ctx: ExperimentContext) -> Dict:
    cache = ctx.engine.cache

    def make_store(config: RunConfig) -> ResultStore:
        if cache is None:
            return ResultStore(config)
        return SimulationEngine(config, machine=ctx.engine.machine,
                                cache_dir=cache.root.parent)

    results = run(
        workloads=tuple(ctx.param("workloads", ("tree", "mcf", "lu"))),
        schemes=tuple(ctx.param("schemes", ("pmod", "pdisp"))),
        seeds=tuple(ctx.param("seeds", (0, 1, 2))),
        scale=ctx.config.scale,
        make_store=make_store,
    )
    return {
        "spreads": [
            {"workload": r.workload, "scheme": r.scheme,
             "speedups": list(r.speedups)}
            for r in results
        ]
    }


def _render_artifact(artifact: Mapping) -> str:
    results = [
        SeedSpread(r["workload"], r["scheme"], tuple(r["speedups"]))
        for r in artifact["data"]["spreads"]
    ]
    return render(results)


register(ExperimentSpec(
    name="seeds",
    title="Ablation: seed robustness of the headline speedups",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    args = parser.parse_args()
    ctx = context_from_args(args, seeds=tuple(args.seeds))
    print(render_artifact(run_experiment("seeds", ctx)))


if __name__ == "__main__":
    main()

"""Seed robustness: are the headline results an artifact of one RNG?

Every workload generator is seeded; this experiment re-runs a chosen
slice of the evaluation across several seeds and reports the spread of
each scheme's speedup.  The reproduction's claims should hold for
*every* seed, not on average — the tests assert the min across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import ResultStore, RunConfig, standard_argparser
from repro.reporting import format_table


@dataclass(frozen=True)
class SeedSpread:
    """Speedup statistics across seeds for one (workload, scheme)."""

    workload: str
    scheme: str
    speedups: tuple

    @property
    def minimum(self) -> float:
        return min(self.speedups)

    @property
    def maximum(self) -> float:
        return max(self.speedups)

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def relative_spread(self) -> float:
        """(max − min) / mean — the run-to-run variability."""
        return (self.maximum - self.minimum) / self.mean


def run(workloads: Sequence[str] = ("tree", "mcf", "lu"),
        schemes: Sequence[str] = ("pmod", "pdisp"),
        seeds: Sequence[int] = (0, 1, 2),
        scale: float = 0.3) -> List[SeedSpread]:
    results = []
    stores = {
        seed: ResultStore(RunConfig(scale=scale, seed=seed))
        for seed in seeds
    }
    for workload in workloads:
        for scheme in schemes:
            speedups = tuple(
                stores[seed].speedup(workload, scheme) for seed in seeds
            )
            results.append(SeedSpread(workload, scheme, speedups))
    return results


def render(results: List[SeedSpread]) -> str:
    return format_table(
        ["workload", "scheme", "min", "mean", "max", "spread"],
        [
            [r.workload, r.scheme, f"{r.minimum:.3f}", f"{r.mean:.3f}",
             f"{r.maximum:.3f}", f"{r.relative_spread:.1%}"]
            for r in results
        ],
        title="Speedup across workload RNG seeds",
    )


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    args = parser.parse_args()
    print(render(run(seeds=args.seeds, scale=args.scale)))


if __name__ == "__main__":
    main()

"""Parallel execution of (workload, scheme) simulation grids.

Thin compatibility wrappers over
:meth:`repro.engine.SimulationEngine.run_grid`, which schedules worker
processes *by workload* (one trace generation per workload, shared by
every scheme in the task) instead of regenerating the trace in every
grid cell.  Results are bit-identical to serial execution — every
simulation is deterministic and independent — which the test suite
checks.

New code should use the engine directly; these helpers remain for call
sites written against the original API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.cpu import ExecutionResult
from repro.engine import RunConfig, SimulationEngine, default_jobs
from repro.experiments.common import ResultStore


def run_grid_parallel(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: RunConfig = RunConfig(),
    max_workers: int = None,
) -> Dict[Tuple[str, str], ExecutionResult]:
    """Simulate every (workload, scheme) pair across worker processes."""
    engine = SimulationEngine(config, jobs=max_workers or default_jobs())
    return engine.run_grid(workloads, schemes)


def parallel_store(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: RunConfig = RunConfig(),
    max_workers: int = None,
) -> ResultStore:
    """A pre-populated :class:`ResultStore` filled in parallel.

    Downstream figure builders consume it exactly like a lazily-filled
    store; any (workload, scheme) pair outside the pre-computed grid is
    simulated serially on demand.
    """
    store = ResultStore(config)
    store.preload(run_grid_parallel(workloads, schemes, config, max_workers))
    return store

"""Parallel execution of (workload, scheme) simulation grids.

A full-scale paper run simulates 23 applications x 8 cache schemes
sequentially in a few minutes; with one process per core it finishes in
a fraction of that.  Results are bit-identical to serial execution —
every simulation is already deterministic and independent — which the
test suite checks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Tuple

from repro.cpu import ExecutionResult, simulate_scheme
from repro.experiments.common import ResultStore, RunConfig
from repro.workloads import get_workload


def _simulate_one(task: Tuple[str, str, float, int, str]) -> Tuple[Tuple[str, str], ExecutionResult]:
    """Worker: simulate one (workload, scheme) cell. Module-level so it
    pickles under the spawn start method too."""
    workload, scheme, scale, seed, skew_replacement = task
    trace = get_workload(workload).trace(scale=scale, seed=seed)
    result = simulate_scheme(trace, scheme, skew_replacement=skew_replacement)
    return (workload, scheme), result


def run_grid_parallel(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: RunConfig = RunConfig(),
    max_workers: int = None,
) -> Dict[Tuple[str, str], ExecutionResult]:
    """Simulate every (workload, scheme) pair across worker processes."""
    tasks = [
        (w, s, config.scale, config.seed, config.skew_replacement)
        for w in workloads for s in schemes
    ]
    results: Dict[Tuple[str, str], ExecutionResult] = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for key, result in pool.map(_simulate_one, tasks):
            results[key] = result
    return results


def parallel_store(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: RunConfig = RunConfig(),
    max_workers: int = None,
) -> ResultStore:
    """A pre-populated :class:`ResultStore` filled in parallel.

    Downstream figure builders consume it exactly like a lazily-filled
    store; any (workload, scheme) pair outside the pre-computed grid is
    simulated serially on demand.
    """
    store = ResultStore(config)
    store._results.update(
        run_grid_parallel(workloads, schemes, config, max_workers)
    )
    return store

"""Figures 7 and 8: normalized execution time under single hashing
functions (Base, 8-way, XOR, pMod, pDisp).

Figure 7 covers the applications with non-uniform cache accesses;
Figure 8 the uniform ones.  Bars are normalized to Base and broken into
Busy / Other Stalls / Memory Stall, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.cpu import NormalizedTime
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import format_table, stacked_bar_chart
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 7-8, in presentation order.
SINGLE_HASH_SCHEMES = ("base", "8way", "xor", "pmod", "pdisp")


@dataclass
class ExecutionTimeFigure:
    """One of the normalized-execution-time figures."""

    title: str
    apps: Sequence[str]
    schemes: Sequence[str]
    bars: Dict[str, Dict[str, NormalizedTime]] = field(default_factory=dict)

    def normalized_total(self, app: str, scheme: str) -> float:
        return self.bars[app][scheme].total

    def speedup(self, app: str, scheme: str) -> float:
        return 1.0 / self.normalized_total(app, scheme)

    def average_speedup(self, scheme: str) -> float:
        speedups = [self.speedup(app, scheme) for app in self.apps]
        return sum(speedups) / len(speedups)


def build_figure(title: str, apps: Sequence[str], schemes: Sequence[str],
                 store: ResultStore) -> ExecutionTimeFigure:
    """Simulate every (app, scheme) pair and normalize to Base."""
    figure = ExecutionTimeFigure(title=title, apps=list(apps),
                                 schemes=list(schemes))
    for app in apps:
        base = store.result(app, "base")
        figure.bars[app] = {
            scheme: store.result(app, scheme).normalized_to(base)
            for scheme in schemes
        }
    return figure


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure7, figure8)."""
    store = store or ResultStore(config)
    fig7 = build_figure(
        "Figure 7: single hashing, non-uniform applications",
        NONUNIFORM_APPS, SINGLE_HASH_SCHEMES, store,
    )
    fig8 = build_figure(
        "Figure 8: single hashing, uniform applications",
        UNIFORM_APPS, SINGLE_HASH_SCHEMES, store,
    )
    return fig7, fig8


def render(figure: ExecutionTimeFigure) -> str:
    """Stacked bars per app plus a speedup summary table."""
    sections = [figure.title]
    for app in figure.apps:
        labels, segments = [], []
        for scheme in figure.schemes:
            bar = figure.bars[app][scheme]
            labels.append(f"{app}/{scheme}")
            segments.append((bar.busy, bar.other_stalls, bar.memory_stall))
        sections.append(stacked_bar_chart(labels, segments))
    rows = []
    for scheme in figure.schemes:
        speedups = [figure.speedup(app, scheme) for app in figure.apps]
        rows.append([
            scheme,
            f"{min(speedups):.2f}",
            f"{figure.average_speedup(scheme):.2f}",
            f"{max(speedups):.2f}",
        ])
    sections.append(format_table(
        ["scheme", "min speedup", "avg speedup", "max speedup"], rows,
        title="Speedup over Base",
    ))
    return "\n\n".join(sections)


def figure_payload(figure: ExecutionTimeFigure) -> Dict:
    """JSON-serializable form of one execution-time figure."""
    return {
        "title": figure.title,
        "apps": list(figure.apps),
        "schemes": list(figure.schemes),
        "bars": {
            app: {scheme: asdict(bar) for scheme, bar in bars.items()}
            for app, bars in figure.bars.items()
        },
    }


def figure_from_payload(payload: Mapping) -> ExecutionTimeFigure:
    """Inverse of :func:`figure_payload`."""
    figure = ExecutionTimeFigure(
        title=payload["title"],
        apps=list(payload["apps"]),
        schemes=list(payload["schemes"]),
    )
    figure.bars = {
        app: {scheme: NormalizedTime(**bar) for scheme, bar in bars.items()}
        for app, bars in payload["bars"].items()
    }
    return figure


def _build(ctx: ExperimentContext) -> Dict:
    engine = ctx.engine
    engine.run_grid((*NONUNIFORM_APPS, *UNIFORM_APPS), SINGLE_HASH_SCHEMES)
    fig7, fig8 = run(store=engine)
    return {"figures": [figure_payload(fig7), figure_payload(fig8)]}


def _render_artifact(artifact: Mapping) -> str:
    return "\n\n".join(
        render(figure_from_payload(payload))
        for payload in artifact["data"]["figures"]
    )


register(ExperimentSpec(
    name="single_hash",
    title="Figures 7-8: normalized execution time, single hashing",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("single_hash", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Figures 7 and 8: normalized execution time under single hashing
functions (Base, 8-way, XOR, pMod, pDisp).

Figure 7 covers the applications with non-uniform cache accesses;
Figure 8 the uniform ones.  Bars are normalized to Base and broken into
Busy / Other Stalls / Memory Stall, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cpu import NormalizedTime
from repro.experiments.common import ResultStore, RunConfig, standard_argparser
from repro.reporting import format_table, stacked_bar_chart
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 7-8, in presentation order.
SINGLE_HASH_SCHEMES = ("base", "8way", "xor", "pmod", "pdisp")


@dataclass
class ExecutionTimeFigure:
    """One of the normalized-execution-time figures."""

    title: str
    apps: Sequence[str]
    schemes: Sequence[str]
    bars: Dict[str, Dict[str, NormalizedTime]] = field(default_factory=dict)

    def normalized_total(self, app: str, scheme: str) -> float:
        return self.bars[app][scheme].total

    def speedup(self, app: str, scheme: str) -> float:
        return 1.0 / self.normalized_total(app, scheme)

    def average_speedup(self, scheme: str) -> float:
        speedups = [self.speedup(app, scheme) for app in self.apps]
        return sum(speedups) / len(speedups)


def build_figure(title: str, apps: Sequence[str], schemes: Sequence[str],
                 store: ResultStore) -> ExecutionTimeFigure:
    """Simulate every (app, scheme) pair and normalize to Base."""
    figure = ExecutionTimeFigure(title=title, apps=list(apps),
                                 schemes=list(schemes))
    for app in apps:
        base = store.result(app, "base")
        figure.bars[app] = {
            scheme: store.result(app, scheme).normalized_to(base)
            for scheme in schemes
        }
    return figure


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure7, figure8)."""
    store = store or ResultStore(config)
    fig7 = build_figure(
        "Figure 7: single hashing, non-uniform applications",
        NONUNIFORM_APPS, SINGLE_HASH_SCHEMES, store,
    )
    fig8 = build_figure(
        "Figure 8: single hashing, uniform applications",
        UNIFORM_APPS, SINGLE_HASH_SCHEMES, store,
    )
    return fig7, fig8


def render(figure: ExecutionTimeFigure) -> str:
    """Stacked bars per app plus a speedup summary table."""
    sections = [figure.title]
    for app in figure.apps:
        labels, segments = [], []
        for scheme in figure.schemes:
            bar = figure.bars[app][scheme]
            labels.append(f"{app}/{scheme}")
            segments.append((bar.busy, bar.other_stalls, bar.memory_stall))
        sections.append(stacked_bar_chart(labels, segments))
    rows = []
    for scheme in figure.schemes:
        speedups = [figure.speedup(app, scheme) for app in figure.apps]
        rows.append([
            scheme,
            f"{min(speedups):.2f}",
            f"{figure.average_speedup(scheme):.2f}",
            f"{max(speedups):.2f}",
        ])
    sections.append(format_table(
        ["scheme", "min speedup", "avg speedup", "max speedup"], rows,
        title="Speedup over Base",
    ))
    return "\n\n".join(sections)


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    fig7, fig8 = run(RunConfig(scale=args.scale, seed=args.seed))
    print(render(fig7))
    print()
    print(render(fig8))


if __name__ == "__main__":
    main()

"""Figure 13: distribution of L2 misses across the cache sets for
``tree``, under Base and under pMod.

Under traditional indexing the vast majority of tree's misses pile
into a small fraction of the sets (the arena-allocation alignment);
prime modulo hashing flattens the distribution and with it removes the
misses themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.cpu import build_hierarchy
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import format_table, sparkline_series
from repro.trace.records import Trace
from repro.workloads import get_workload


@dataclass
class MissDistribution:
    """Per-set L2 miss counts for one scheme."""

    scheme: str
    set_misses: np.ndarray

    @property
    def total(self) -> int:
        return int(self.set_misses.sum())

    def top_fraction_share(self, fraction: float = 0.1) -> float:
        """Share of all misses carried by the busiest ``fraction`` of sets."""
        if self.total == 0:
            return 0.0
        ordered = np.sort(self.set_misses)[::-1]
        top = max(1, int(len(ordered) * fraction))
        return float(ordered[:top].sum() / self.total)

    def coefficient_of_variation(self) -> float:
        mean = self.set_misses.mean()
        return float(self.set_misses.std() / mean) if mean else 0.0


def _measure(trace: Trace,
             schemes: Sequence[str]) -> Dict[str, MissDistribution]:
    """Drive ``trace`` through each scheme's hierarchy, keeping the
    per-set L2 miss counters."""
    results = {}
    for scheme in schemes:
        hierarchy = build_hierarchy(scheme)
        for address, is_write in zip(trace.addresses, trace.is_write):
            hierarchy.access(int(address), bool(is_write))
        results[scheme] = MissDistribution(
            scheme, hierarchy.l2.stats.set_misses.copy()
        )
    return results


def run(config: RunConfig = RunConfig(), workload: str = "tree",
        schemes=("base", "pmod")) -> Dict[str, MissDistribution]:
    """Collect per-set miss counts for the requested schemes."""
    trace = get_workload(workload).trace(scale=config.scale, seed=config.seed)
    return _measure(trace, schemes)


def render(results: Dict[str, MissDistribution],
           workload: str = "tree") -> str:
    sections = [f"Figure 13: L2 miss distribution across sets ({workload})"]
    for scheme, dist in results.items():
        sections.append(sparkline_series(
            list(range(len(dist.set_misses))),
            dist.set_misses.astype(float).tolist(),
            title=f"{scheme}: total misses {dist.total}",
        ))
    rows = [
        [
            dist.scheme,
            dist.total,
            f"{dist.top_fraction_share(0.1):.1%}",
            f"{dist.coefficient_of_variation():.2f}",
        ]
        for dist in results.values()
    ]
    sections.append(format_table(
        ["scheme", "total misses", "misses in top 10% of sets", "CV"],
        rows,
    ))
    return "\n\n".join(sections)


def _build(ctx: ExperimentContext) -> Dict:
    """Per-set miss arrays, cached as npz sidecars when the engine has
    a cache directory (the arrays are not part of ExecutionResult, so
    they get their own content-addressed entries)."""
    engine = ctx.engine
    workload = ctx.param("workload", "tree")
    schemes = tuple(ctx.param("schemes", ("base", "pmod")))
    results: Dict[str, MissDistribution] = {}
    todo = []
    for scheme in schemes:
        if engine.cache is not None:
            arrays = engine.cache.get_arrays(engine.key(workload, scheme))
            if arrays is not None and "set_misses" in arrays:
                results[scheme] = MissDistribution(scheme,
                                                   arrays["set_misses"])
                continue
        todo.append(scheme)
    if todo:
        fresh = _measure(engine.traces.get(workload), todo)
        for scheme, dist in fresh.items():
            results[scheme] = dist
            if engine.cache is not None:
                engine.cache.put_arrays(engine.key(workload, scheme),
                                        set_misses=dist.set_misses)
    return {
        "workload": workload,
        "distributions": {
            scheme: results[scheme].set_misses.astype(int).tolist()
            for scheme in schemes
        },
    }


def _render_artifact(artifact: Mapping) -> str:
    data = artifact["data"]
    results = {
        scheme: MissDistribution(scheme, np.asarray(counts))
        for scheme, counts in data["distributions"].items()
    }
    return render(results, workload=data["workload"])


register(ExperimentSpec(
    name="miss_distribution",
    title="Figure 13: per-set L2 miss distribution",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("--workload", default="tree")
    args = parser.parse_args()
    ctx = context_from_args(args, workload=args.workload)
    print(render_artifact(run_experiment("miss_distribution", ctx)))


if __name__ == "__main__":
    main()

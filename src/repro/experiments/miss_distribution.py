"""Figure 13: distribution of L2 misses across the cache sets for
``tree``, under Base and under pMod.

Under traditional indexing the vast majority of tree's misses pile
into a small fraction of the sets (the arena-allocation alignment);
prime modulo hashing flattens the distribution and with it removes the
misses themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.cpu import build_hierarchy
from repro.experiments.common import RunConfig, standard_argparser
from repro.reporting import format_table, sparkline_series
from repro.workloads import get_workload


@dataclass
class MissDistribution:
    """Per-set L2 miss counts for one scheme."""

    scheme: str
    set_misses: np.ndarray

    @property
    def total(self) -> int:
        return int(self.set_misses.sum())

    def top_fraction_share(self, fraction: float = 0.1) -> float:
        """Share of all misses carried by the busiest ``fraction`` of sets."""
        if self.total == 0:
            return 0.0
        ordered = np.sort(self.set_misses)[::-1]
        top = max(1, int(len(ordered) * fraction))
        return float(ordered[:top].sum() / self.total)

    def coefficient_of_variation(self) -> float:
        mean = self.set_misses.mean()
        return float(self.set_misses.std() / mean) if mean else 0.0


def run(config: RunConfig = RunConfig(), workload: str = "tree",
        schemes=("base", "pmod")) -> Dict[str, MissDistribution]:
    """Collect per-set miss counts for the requested schemes."""
    trace = get_workload(workload).trace(scale=config.scale, seed=config.seed)
    results = {}
    for scheme in schemes:
        hierarchy = build_hierarchy(scheme)
        for address, is_write in zip(trace.addresses, trace.is_write):
            hierarchy.access(int(address), bool(is_write))
        results[scheme] = MissDistribution(
            scheme, hierarchy.l2.stats.set_misses.copy()
        )
    return results


def render(results: Dict[str, MissDistribution]) -> str:
    sections = ["Figure 13: L2 miss distribution across sets (tree)"]
    for scheme, dist in results.items():
        sections.append(sparkline_series(
            list(range(len(dist.set_misses))),
            dist.set_misses.astype(float).tolist(),
            title=f"{scheme}: total misses {dist.total}",
        ))
    rows = [
        [
            dist.scheme,
            dist.total,
            f"{dist.top_fraction_share(0.1):.1%}",
            f"{dist.coefficient_of_variation():.2f}",
        ]
        for dist in results.values()
    ]
    sections.append(format_table(
        ["scheme", "total misses", "misses in top 10% of sets", "CV"],
        rows,
    ))
    return "\n\n".join(sections)


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    print(render(run(RunConfig(scale=args.scale, seed=args.seed))))


if __name__ == "__main__":
    main()

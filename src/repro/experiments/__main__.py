"""Uniform CLI over the experiment registry.

::

    python -m repro.experiments list
    python -m repro.experiments <name> [--scale S] [--seed N]
        [--skew-replacement P] [--jobs J] [--cache-dir DIR]
        [--param KEY=VALUE ...] [--artifact PATH]
        [--metrics-out PATH] [--trace]

Every registered experiment runs through the same path: build an
artifact (the JSON document described in :mod:`repro.engine.registry`),
optionally write it to ``--artifact``, then render it to the terminal.
``--param`` forwards experiment-specific knobs (e.g.
``--param workload=bt`` for the sweep experiments); values parse as
JSON when possible, otherwise as strings.

``--metrics-out PATH`` turns on the :mod:`repro.obs` layer for the
run and dumps the metrics + span snapshot (schema in
``docs/observability.md``) to PATH next to the artifact; ``--trace``
turns it on too and prints the rendered span tree after the report.
``--journal PATH`` additionally records the run's structured event
log (JSONL, ``docs/observability.md``) — experiment start/finish plus
whatever lifecycle events the engine/store/serve layers emit; and
``--dash PATH`` renders the post-run health dashboard (metrics + SLO
burn rates + drift + journal tail + bench trajectory) as one
self-contained HTML file.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro.engine import (
    all_experiment_names,
    get_experiment,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import context_from_args, standard_argparser
from repro.obs import (
    enable_journal,
    enable_observability,
    get_journal,
    get_registry,
    get_tracer,
    trace_span,
    write_snapshot,
)


def parse_params(items: List[str]) -> Dict[str, Any]:
    """``KEY=VALUE`` pairs; VALUE is JSON when it parses, else a string."""
    params: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep:
            raise SystemExit(f"--param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def list_experiments() -> str:
    lines = []
    for name in all_experiment_names():
        spec = get_experiment(name)
        tag = "" if spec.uses_simulation else "  [analysis-only]"
        lines.append(f"{name:20s} {spec.title}{tag}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("experiment",
                        help="registered experiment name, or 'list'")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="experiment-specific parameter "
                             "(repeatable; VALUE parsed as JSON)")
    parser.add_argument("--artifact", default=None, metavar="PATH",
                        help="also write the artifact JSON to PATH "
                             "('-' = stdout instead of the rendering)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable observability and write the metrics "
                             "+ span snapshot JSON to PATH")
    parser.add_argument("--trace", action="store_true",
                        help="enable observability and print the span "
                             "tree after the report")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="enable observability and append the run's "
                             "structured event log (JSONL) to PATH")
    parser.add_argument("--dash", default=None, metavar="PATH",
                        help="enable observability and write the "
                             "post-run health dashboard HTML to PATH")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print(list_experiments())
        return
    try:
        get_experiment(args.experiment)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    observed = bool(args.metrics_out or args.trace or args.journal
                    or args.dash)
    if observed:
        enable_observability()
    if args.journal:
        enable_journal(args.journal)
    journal = get_journal()
    context = context_from_args(args, **parse_params(args.param))
    journal.emit("experiment.start", experiment=args.experiment,
                 scale=context.config.scale, seed=context.config.seed)
    status = "error"
    try:
        with trace_span("experiment", experiment=args.experiment):
            artifact = run_experiment(args.experiment, context)
        status = "ok"
    finally:
        journal.emit("experiment.finish", experiment=args.experiment,
                     status=status)
    if args.artifact == "-":
        json.dump(artifact, sys.stdout, indent=1)
        print()
    else:
        if args.artifact:
            with open(args.artifact, "w") as stream:
                json.dump(artifact, stream, indent=1)
        print(render_artifact(artifact))
    if args.metrics_out:
        path = write_snapshot(args.metrics_out, get_registry(), get_tracer())
        print(f"metrics snapshot written to {path}", file=sys.stderr)
    if args.trace:
        # keep stdout parseable when the artifact JSON went to '-'
        stream = sys.stderr if args.artifact == "-" else sys.stdout
        print(file=stream)
        print(get_tracer().render(), file=stream)
    if args.dash:
        from repro.obs.dash import build_dashboard, write_dashboard
        from repro.obs.health import (
            HashQualityDetector,
            SloEngine,
            default_slos,
        )
        engine = SloEngine(default_slos(), registry=get_registry(),
                           journal=journal)
        statuses = engine.evaluate()
        detector = HashQualityDetector(registry=get_registry(),
                                       journal=journal)
        drift = detector.evaluate()
        model = build_dashboard(
            registry=get_registry(), tracer=get_tracer(), journal=journal,
            slo_statuses=statuses, alerts=engine.active_alerts(),
            drift_statuses=drift, bench_root=".")
        path = write_dashboard(args.dash, model)
        print(f"health dashboard written to {path}", file=sys.stderr)


if __name__ == "__main__":
    main()

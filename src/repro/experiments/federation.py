"""Federation drill: cluster-wide telemetry from per-node registries.

Extension experiment for the federation plane (:mod:`repro.obs.fed` +
:mod:`repro.obs.tsdb`): a 5-node prime-routed cluster is built with
**private per-node registries** (``node_registries=True``), served
bursty zipfian traffic, and scraped over its own fabric between
bursts.  Two arms run:

* **healthy** — every node serves at its modeled service time;
* **stalled** — one node is degraded (slow NIC penalty) for the whole
  run, so ~1/5 of requests blow the latency objective while every
  *individual* node's traffic volume stays below the SLO engine's
  ``min_events`` significance floor.

The second arm is the federation's reason to exist: per-node SLO
engines (same spec, same ``min_events``) stay silent because no single
node holds enough observations to page honestly, while the federated
engine — evaluating the *merged* registry where the per-node sketches
pool into one distribution — crosses both the volume floor and the
fast-burn threshold and pages.  The same birthday-paradox logic that
makes hash pathologies statistical makes them cluster-level signals.

The artifact's ``checks`` block asserts the telemetry contract:

* **merged quantiles are exact-ish** — the federated cluster-wide p99
  is within 2% of the exact pooled p99 (both arms);
* **paging lives at the right level** — the stalled arm pages the
  federated engine and no per-node engine; the healthy arm pages
  nobody;
* **telemetry is cheap** — scrape traffic serializes under 3% of the
  busiest link's capacity;
* **misses are journaled** — scraping a down node emits
  ``obs.scrape_miss``;
* **the TSDB keeps honest history** — raw retention is bounded,
  age-out produced downsampled points (counters as block rates), the
  recovered mean rate is near truth, and the windowed quantile from
  persisted sketches matches the exact pooled p99 within 2%.

With ``--check`` the CLI exits nonzero unless every check holds (the
``make fed-check`` gate).
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.cluster import Cluster, ReplicationConfig
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationKey,
    register,
    render_artifact,
    run_experiment,
)
from repro.obs import Journal, declare_core_metrics, set_journal
from repro.obs.fed import Federation
from repro.obs.health import SloEngine, SloSpec
from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch
from repro.obs.tsdb import TimeSeriesStore
from repro.store import make_traffic

#: Fleet size: five nodes is the smallest ring where one stalled
#: member is a clear minority of traffic (~20%) yet enough to burn a
#: 99% objective at the 14.4x fast rate.
N_NODES = 5

#: Latency objective: p99 of node request latency under this bound.
THRESHOLD_S = 150e-6
OBJECTIVE = 0.99

#: Significance floor as a fraction of the total request count: above
#: any single node's share (~1/5), below the pooled window.
MIN_EVENTS_FRAC = 0.5

#: Relative error budget for merged-vs-exact quantiles (the sketch is
#: built at 1% relative accuracy; 2% is the drill's contract).
QUANTILE_TOLERANCE = 0.02

#: Scrape serialization budget: worst-link fraction of fabric time.
SCRAPE_BUDGET = 0.03

#: Burst weights carving the request stream into uneven scrape
#: intervals (bursty zipfian: heavy sweeps interleaved with light).
BURST_WEIGHTS = (5, 1, 3, 1, 8, 2, 4, 1, 6, 2)

#: Per-node latency series every cluster op lands in (primary node).
LATENCY_SERIES = "cluster.node.request_latency_s"


def _fingerprint(params: Mapping) -> str:
    """Stable digest of every drill knob, for content addressing."""
    payload = json.dumps(dict(params), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _burst_sizes(n_requests: int, sweeps: int) -> List[int]:
    """``sweeps`` uneven chunk sizes summing to ``n_requests``."""
    weights = [BURST_WEIGHTS[i % len(BURST_WEIGHTS)]
               for i in range(sweeps)]
    total = sum(weights)
    sizes = [max(1, n_requests * w // total) for w in weights]
    sizes[-1] += n_requests - sum(sizes)
    return sizes


def _slo_spec() -> SloSpec:
    return SloSpec.latency(
        "fed-cluster-p99", LATENCY_SERIES, threshold_s=THRESHOLD_S,
        objective=OBJECTIVE,
        description="cluster-wide node request latency under the "
                    "objective, evaluated on the federated registry")


def measure(arm: str, n_requests: int, sweeps: int = 24,
            retention_points: int = 16, downsample_ratio: int = 4,
            seed: int = 0) -> Dict:
    """Run the drill for one arm (``healthy`` or ``stalled``)."""
    journal = Journal()
    previous = set_journal(journal)
    try:
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        cluster = Cluster(
            n_nodes=N_NODES, node_scheme="pmod", shard_scheme="pmod",
            shard_capacity=max(256, n_requests // (2 * N_NODES)),
            replication=ReplicationConfig(replicas=2),
            node_registries=True)
        fed = Federation.for_cluster(cluster, registry=local,
                                     journal=journal)
        tsdb = TimeSeriesStore(retention_points=retention_points,
                               downsample_ratio=downsample_ratio,
                               registry=local, journal=journal)
        min_events = int(n_requests * MIN_EVENTS_FRAC)
        fed_engine: Optional[SloEngine] = None
        node_engines = [
            SloEngine([_slo_spec()], registry=node.registry,
                      journal=journal, min_events=min_events)
            for node in cluster.nodes
        ]

        victim = -1
        if arm == "stalled":
            # Stalled from the first request: a slow NIC, not a crash —
            # the node serves everything, just late.
            victim = 0
            cluster.degrade_node(victim)

        requests = make_traffic("zipfian", n_requests, seed=seed)
        cursor = 0
        latency_mark = 0
        fed_alerts = 0
        node_alerts = [0] * N_NODES
        for size in _burst_sizes(n_requests, sweeps):
            for request in requests[cursor:cursor + size]:
                if request.op == "put":
                    cluster.put(request.key, request.value)
                elif request.op == "delete":
                    cluster.delete(request.key)
                else:
                    cluster.get(request.key)
            cursor += size
            now_s = cluster.virtual_now_s
            merged = fed.collect(now_s)
            if fed_engine is None:
                fed_engine = SloEngine([_slo_spec()], registry=merged,
                                       journal=journal,
                                       min_events=min_events)
            else:
                fed_engine.rebind(merged)
            for status in fed_engine.evaluate():
                fed_alerts += status.alerting
            for node_id, engine in enumerate(node_engines):
                for status in engine.evaluate():
                    node_alerts[node_id] += status.alerting
            # The TSDB records the sweep: the burst's latency sketch,
            # the cumulative op counter, and the balance gauge.
            window = list(cluster._latencies)[latency_mark:]
            latency_mark += len(window)
            sketch = QuantileSketch()
            for value in window:
                sketch.add(value)
            tsdb.append("cluster.latency", now_s, sketch, kind="sketch")
            tsdb.append("cluster.ops", now_s,
                        float(cluster.counts["ops"]), kind="counter")
            tsdb.append("cluster.node_balance", now_s,
                        cluster.telemetry().node_balance, kind="gauge")

        elapsed_s = cluster.virtual_now_s
        exact = np.asarray(cluster._latencies, dtype=float)
        exact_p99 = float(np.percentile(exact, 99))
        fed_p99 = fed.quantile(LATENCY_SERIES, 99)
        pooled = fed.merged_sketch(LATENCY_SERIES)

        # Force one honest miss: a crashed node's exporter is gone.
        cluster.fail_node(N_NODES - 1)
        fed.scraper.scrape(elapsed_s)
        miss_events = journal.find("obs.scrape_miss")
        evict_events = journal.find("obs.tsdb_evict")

        raw_points = [p for p in tsdb.range("cluster.ops")
                      if p.kind == "counter"]
        aged_points = [p for p in tsdb.range("cluster.ops")
                       if p.kind == "rate"]
        tsdb_rate = tsdb.rate("cluster.ops")
        true_rate = (cluster.counts["ops"] / elapsed_s
                     if elapsed_s > 0 else 0.0)
        tsdb_p99 = tsdb.quantile("cluster.latency", 99)
        return {
            "arm": arm,
            "victim": victim,
            "requests": n_requests,
            "sweeps": sweeps,
            "min_events": min_events,
            "elapsed_s": elapsed_s,
            "exact_p99_s": exact_p99,
            "fed_p99_s": fed_p99,
            "fed_p99_rel_err": (abs(fed_p99 - exact_p99)
                                / max(exact_p99, 1e-12)),
            "pooled_count": len(pooled),
            "node_window_counts": [
                sum(instrument.count for instrument
                    in node.registry.matching(LATENCY_SERIES)
                    if instrument.kind == "histogram")
                for node in cluster.nodes
            ],
            "fed_alert_evals": fed_alerts,
            "node_alert_evals": node_alerts,
            "scrapes": fed.scraper.scrapes,
            "scrape_misses": fed.scraper.misses,
            "scrape_miss_events": len(miss_events),
            "scrape_utilization": fed.scrape_utilization(elapsed_s),
            "tsdb": {
                "appends": tsdb.appends,
                "evictions": tsdb.evictions,
                "evict_events": len(evict_events),
                "raw_points": len(raw_points),
                "aged_points": len(aged_points),
                "retention_points": retention_points,
                "rate": tsdb_rate,
                "true_rate": true_rate,
                "rate_rel_err": (abs(tsdb_rate - true_rate)
                                 / max(true_rate, 1e-12)),
                "p99_s": tsdb_p99,
                "p99_rel_err": (abs(tsdb_p99 - exact_p99)
                                / max(exact_p99, 1e-12)),
            },
        }
    finally:
        set_journal(previous)


def run(n_requests: int = 6000, sweeps: int = 24,
        retention_points: int = 16, downsample_ratio: int = 4,
        seed: int = 0) -> Dict[str, Dict]:
    """Both arms: ``result[arm] = drill measurement payload``."""
    return {
        arm: measure(arm, n_requests, sweeps=sweeps,
                     retention_points=retention_points,
                     downsample_ratio=downsample_ratio, seed=seed)
        for arm in ("healthy", "stalled")
    }


def federation_checks(cells: Mapping[str, Mapping]) -> Dict[str, bool]:
    """The federation contract, one boolean per claim."""
    checks: Dict[str, bool] = {}
    for arm, cell in cells.items():
        checks[f"{arm}_merged_p99_within_2pct"] = (
            cell["fed_p99_rel_err"] <= QUANTILE_TOLERANCE)
        checks[f"{arm}_scrape_overhead_under_3pct"] = (
            cell["scrape_utilization"] < SCRAPE_BUDGET)
        checks[f"{arm}_scrape_miss_journaled"] = (
            cell["scrape_miss_events"] > 0)
        tsdb = cell["tsdb"]
        checks[f"{arm}_tsdb_retention_bounded"] = (
            0 < tsdb["raw_points"] <= tsdb["retention_points"])
        checks[f"{arm}_tsdb_downsampled"] = (
            tsdb["aged_points"] > 0
            and tsdb["evict_events"] == tsdb["evictions"] > 0)
        checks[f"{arm}_tsdb_rate_near_truth"] = (
            tsdb["rate_rel_err"] <= 0.35)
        checks[f"{arm}_tsdb_p99_within_2pct"] = (
            tsdb["p99_rel_err"] <= QUANTILE_TOLERANCE)
        # The volume gate must actually gate: no single node's window
        # reaches the significance floor in either arm.
        checks[f"{arm}_no_node_reaches_min_events"] = all(
            count < cell["min_events"]
            for count in cell["node_window_counts"])
    healthy = cells.get("healthy")
    stalled = cells.get("stalled")
    if healthy is not None:
        checks["healthy_nobody_pages"] = (
            healthy["fed_alert_evals"] == 0
            and sum(healthy["node_alert_evals"]) == 0)
    if stalled is not None:
        checks["stalled_federated_engine_pages"] = (
            stalled["fed_alert_evals"] > 0)
        checks["stalled_local_view_stays_quiet"] = (
            sum(stalled["node_alert_evals"]) == 0)
    return checks


def render(data: Mapping) -> str:
    """One row per arm plus the contract verdict."""
    header = (f"{'arm':<9} {'exact p99':>10} {'fed p99':>10} "
              f"{'err':>6} {'pages(fed)':>10} {'pages(node)':>11} "
              f"{'scrape util':>11} {'tsdb raw/aged':>13}")
    lines = [
        f"Federation drill — {N_NODES}-node pmod cluster, bursty "
        f"zipfian ({data['n_requests']} requests, {data['sweeps']} "
        f"scrape sweeps, objective p99 <= {THRESHOLD_S * 1e6:.0f}us "
        f"@ {OBJECTIVE:.0%}, min_events {MIN_EVENTS_FRAC:.0%} of "
        "stream)",
        header,
        "-" * len(header),
    ]
    for arm, cell in data["cells"].items():
        tsdb = cell["tsdb"]
        lines.append(
            f"{arm:<9} {cell['exact_p99_s'] * 1e6:>8.1f}us "
            f"{cell['fed_p99_s'] * 1e6:>8.1f}us "
            f"{cell['fed_p99_rel_err']:>6.2%} "
            f"{cell['fed_alert_evals']:>10} "
            f"{sum(cell['node_alert_evals']):>11} "
            f"{cell['scrape_utilization']:>11.3%} "
            f"{tsdb['raw_points']:>6}/{tsdb['aged_points']:<6}")
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        lines.append("")
        lines.append(
            f"Federation contract: {verdict} "
            f"({sum(checks.values())}/{len(checks)} checks hold — "
            "exact-ish merged quantiles, paging at cluster level only, "
            "scrape overhead bounded, TSDB retention honest)")
    return "\n".join(lines)


def _build(ctx: ExperimentContext) -> Dict:
    n_requests = max(500, int(int(ctx.param("requests", 6000))
                              * ctx.config.scale))
    params = {
        "n_requests": n_requests,
        "sweeps": int(ctx.param("sweeps", 24)),
        "retention_points": int(ctx.param("retention_points", 16)),
        "downsample_ratio": int(ctx.param("downsample_ratio", 4)),
        "seed": ctx.config.seed,
    }
    cache = ctx.engine.cache
    fingerprint = _fingerprint(params)

    def cell_key(arm: str) -> SimulationKey:
        return SimulationKey(
            workload="federation-drill",
            scheme=arm,
            scale=ctx.config.scale,
            seed=ctx.config.seed,
            skew_replacement=ctx.config.skew_replacement,
            machine=fingerprint,
        )

    cells: Dict[str, Dict] = {}
    for arm in ("healthy", "stalled"):
        payload: Optional[Dict] = None
        if cache is not None:
            payload = cache.get_payload(cell_key(arm))
        if payload is None:
            kwargs = dict(params)
            kwargs.pop("n_requests")
            payload = measure(arm, n_requests, **kwargs)
            if cache is not None:
                cache.put_payload(cell_key(arm), payload)
        cells[arm] = payload
    return {
        "n_requests": n_requests,
        "sweeps": params["sweeps"],
        "cells": cells,
        "checks": federation_checks(cells),
    }


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="federation",
    title="Federation drill: cluster-wide quantiles, paging, and "
          "telemetry cost (extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every federation "
                             "contract check holds (the make fed-check "
                             "gate)")
    args = parser.parse_args()
    artifact = run_experiment("federation", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if failing:
            print(f"fed-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("fed-check: ok")


if __name__ == "__main__":
    main()

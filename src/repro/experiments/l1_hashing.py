"""Section 3.3's L1 claim: "This makes the XOR a particularly bad
choice for indexing the L1 cache."

Two parts:

1. The paper's own example: a 4 KB, 4-way, 64 B-line cache has 16 sets;
   with stride ``s = n_set − 1 = 15`` XOR indexing degenerates to
   "sets 0, 15, 15, 15, ..." — and strides 3 and 5 (factors of 15)
   fail too.  We measure the balance of every L1-sized hash at those
   strides.
2. A hierarchy-level check: swapping the L1's indexing function and
   driving the paper's workloads shows XOR at L1 losing to traditional
   on odd-stride-rich traffic, while prime modulo at L1 stays safe —
   the reason the paper targets the L2 (where fragmentation is
   negligible and latency is hidden) and leaves L1 alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.cache import CacheHierarchy, SetAssociativeCache
from repro.cpu import MachineConfig, Simulator
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import (
    balance,
    concentration,
    make_indexing,
    strided_addresses,
)
from repro.memory import DramModel
from repro.reporting import format_table
from repro.workloads import get_workload

#: The paper's L1 example geometry: 4 KB, 4-way, 64 B lines -> 16 sets.
EXAMPLE_L1_SETS = 16


@dataclass(frozen=True)
class L1BalanceRow:
    """Short-window balance and concentration per hash at one stride.

    A tiny cache cycles its tag bits quickly, so XOR's failure at
    ``s = n_set − 1`` shows up as *bursts* (sets 0, 15, 15, 15, ... in
    the paper's quote): terrible balance over a loop-sized window and
    terrible concentration over a long run, even though the infinite-
    horizon balance eventually averages out.
    """

    stride: int
    balances: Dict[str, float]       #: over a 64-access window
    concentrations: Dict[str, float]  #: over 4096 accesses


def example_balance(strides=(1, 3, 5, 15, 16, 17),
                    window: int = 64) -> List[L1BalanceRow]:
    """Metrics at the paper's quoted bad strides for a 16-set cache."""
    hashes = {key: make_indexing(key, EXAMPLE_L1_SETS)
              for key in ("traditional", "xor", "pmod", "pdisp")}
    rows = []
    for stride in strides:
        short = strided_addresses(stride, window)
        long = strided_addresses(stride, 4096)
        rows.append(L1BalanceRow(
            stride,
            {key: balance(h, short) for key, h in hashes.items()},
            {key: concentration(h, long) for key, h in hashes.items()},
        ))
    return rows


def _hierarchy_with_l1_indexing(key: str, config: MachineConfig) -> CacheHierarchy:
    l1 = SetAssociativeCache(
        config.l1_sets, config.l1_assoc, make_indexing(key, config.l1_sets),
        name=f"L1/{key}",
    )
    l2 = SetAssociativeCache(
        config.l2_sets, config.l2_assoc,
        make_indexing("traditional", config.l2_sets), name="L2",
    )
    return CacheHierarchy(l1, l2, config.l1_block_bytes, config.l2_block_bytes)


def l1_miss_comparison(config: RunConfig = RunConfig(),
                       apps=("swim", "tomcatv", "lu"),
                       l1_keys=("traditional", "xor", "pmod")) -> Dict[str, Dict[str, int]]:
    """L1 miss counts per L1 indexing key for unit-stride-rich apps."""
    machine = MachineConfig.paper_default()
    results: Dict[str, Dict[str, int]] = {}
    for app in apps:
        trace = get_workload(app).trace(scale=config.scale, seed=config.seed)
        results[app] = {}
        for key in l1_keys:
            hierarchy = _hierarchy_with_l1_indexing(key, machine)
            sim = Simulator(hierarchy, DramModel(machine.dram_config()),
                            machine, scheme=f"l1-{key}")
            sim.run(trace)
            results[app][key] = hierarchy.l1.stats.misses
    return results


def render(rows: List[L1BalanceRow],
           miss_results: Dict[str, Dict[str, int]]) -> str:
    keys = list(rows[0].balances)
    table1 = format_table(
        ["stride"] + [f"bal({k})" for k in keys]
        + [f"conc({k})" for k in keys],
        [
            [r.stride]
            + [f"{r.balances[k]:.2f}" for k in keys]
            + [f"{r.concentrations[k]:.1f}" for k in keys]
            for r in rows
        ],
        title=f"L1 example ({EXAMPLE_L1_SETS} sets): short-window balance "
              "(1.0 ideal) and concentration (0.0 ideal)",
    )
    apps = list(miss_results)
    l1_keys = list(next(iter(miss_results.values())))
    table2 = format_table(
        ["app"] + [f"L1 misses ({k})" for k in l1_keys],
        [[app] + [miss_results[app][k] for k in l1_keys] for app in apps],
        title="L1 miss counts by L1 indexing function",
    )
    return table1 + "\n\n" + table2


def run(config: RunConfig = RunConfig()):
    """Both halves of the experiment: (example rows, hierarchy misses)."""
    return example_balance(), l1_miss_comparison(config)


def _build(ctx: ExperimentContext) -> Dict:
    rows, misses = run(ctx.config)
    return {
        "balance_rows": [
            {
                "stride": r.stride,
                "balances": r.balances,
                "concentrations": r.concentrations,
            }
            for r in rows
        ],
        "l1_misses": misses,
    }


def _render_artifact(artifact: Mapping) -> str:
    data = artifact["data"]
    rows = [L1BalanceRow(**r) for r in data["balance_rows"]]
    return render(rows, data["l1_misses"])


register(ExperimentSpec(
    name="l1_hashing",
    title="Section 3.3: why XOR is a bad L1 index",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("l1_hashing", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

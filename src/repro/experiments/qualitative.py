"""Table 2: qualitative comparison of hashing functions — verified
empirically rather than transcribed.

For each single-hash function the experiment sweeps strides and
*measures* (a) which strides achieve the ideal balance and (b) whether
sequence invariance ever breaks, then summarizes the results in the
paper's table shape.  The hardware-implementation and replacement-
restriction columns come from the cost model and cache-construction
constraints respectively.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.hashing import (
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
    balance,
    sequence_invariance_violations,
    strided_addresses,
)
from repro.reporting import format_table

#: Balance within 10% of ideal counts as "ideal" for a finite sequence.
BALANCE_TOLERANCE = 1.1


@dataclass(frozen=True)
class HashProfile:
    """Empirical profile of one hashing function."""

    name: str
    ideal_balance_condition: str   #: human summary derived from the sweep
    odd_strides_ideal: int         #: odd strides with ideal balance
    even_strides_ideal: int        #: even strides with ideal balance
    strides_tested: int
    sequence_invariant: bool
    partially_invariant: bool      #: violations rare but non-zero
    simple_hardware: bool
    replacement_restricted: bool


def _profile(name, indexing, strides, n_addresses, simple_hw=True,
             replacement_restricted=False) -> HashProfile:
    odd_ok = even_ok = odd_total = even_total = 0
    total_violations = 0
    total_pairs = 0
    for s in strides:
        addrs = strided_addresses(s, n_addresses)
        ideal = balance(indexing, addrs) <= BALANCE_TOLERANCE
        if s % 2:
            odd_total += 1
            odd_ok += ideal
        else:
            even_total += 1
            even_ok += ideal
        total_violations += sequence_invariance_violations(indexing, addrs)
        total_pairs += n_addresses
    invariant = total_violations == 0
    # pDisp breaks the implication for roughly one set per subsequence
    # (~10% of pairs over this sweep); XOR breaks it for ~74%.  A 1/3
    # cut separates "partial" invariance from "none" robustly.
    partial = 0 < total_violations < total_pairs / 3
    if odd_ok == odd_total and even_ok == 0:
        condition = "s odd"
    elif odd_ok == odd_total and even_ok == even_total:
        condition = "all tested s"
    elif odd_ok + even_ok >= 0.9 * (odd_total + even_total):
        condition = "all but few s"
    else:
        condition = "various"
    return HashProfile(
        name=name,
        ideal_balance_condition=condition,
        odd_strides_ideal=odd_ok,
        even_strides_ideal=even_ok,
        strides_tested=odd_total + even_total,
        sequence_invariant=invariant,
        partially_invariant=partial,
        simple_hardware=simple_hw,
        replacement_restricted=replacement_restricted,
    )


def run(n_sets_physical: int = 2048, n_addresses: int = 8192,
        stride_limit: int = 256) -> List[HashProfile]:
    """Profile the four single-hash functions over strides 1..limit,
    plus the skewed families' static properties."""
    strides = range(1, stride_limit + 1)
    profiles = [
        _profile("Traditional", TraditionalIndexing(n_sets_physical),
                 strides, n_addresses),
        _profile("XOR", XorIndexing(n_sets_physical), strides, n_addresses),
        _profile("pMod", PrimeModuloIndexing(n_sets_physical),
                 strides, n_addresses),
        _profile("pDisp", PrimeDisplacementIndexing(n_sets_physical),
                 strides, n_addresses),
    ]
    # Skewed caches: balance/invariance are per-bank and the cache-level
    # behavior is probabilistic; what Table 2 records is the replacement
    # restriction (no true LRU) and lack of guarantees.
    for name in ("Skewed", "Skewed+pDisp"):
        profiles.append(HashProfile(
            name=name,
            ideal_balance_condition="none guaranteed",
            odd_strides_ideal=0,
            even_strides_ideal=0,
            strides_tested=0,
            sequence_invariant=False,
            partially_invariant=False,
            simple_hardware=True,
            replacement_restricted=True,
        ))
    return profiles


def _invariance_label(profile: HashProfile) -> str:
    if profile.sequence_invariant:
        return "Yes"
    if profile.partially_invariant:
        return "Partial"
    return "No"


def render(profiles: List[HashProfile]) -> str:
    rows = []
    for p in profiles:
        rows.append([
            p.name,
            p.ideal_balance_condition,
            _invariance_label(p),
            "Yes" if p.simple_hardware else "No",
            "Yes" if p.replacement_restricted else "No",
        ])
    return format_table(
        ["Hashing", "Ideal balance", "Seq. invariant?", "Simple HW?",
         "Repl. restricted?"],
        rows,
        title="Table 2: Qualitative comparison (measured)",
    )


def _build(ctx: ExperimentContext) -> Dict:
    profiles = run(
        n_sets_physical=int(ctx.param("n_sets_physical", 2048)),
        n_addresses=int(ctx.param("n_addresses", 8192)),
        stride_limit=int(ctx.param("stride_limit", 256)),
    )
    return {"profiles": [asdict(p) for p in profiles]}


def _render_artifact(artifact: Mapping) -> str:
    return render([HashProfile(**p) for p in artifact["data"]["profiles"]])


register(ExperimentSpec(
    name="qualitative",
    title="Table 2: qualitative hash-function comparison (measured)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("qualitative", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

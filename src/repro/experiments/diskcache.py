"""Disk-backed result caching for repeated experiment runs.

.. deprecated::
    :class:`CachedResultStore` predates :mod:`repro.engine`; it is now
    a thin compatibility wrapper over the engine's
    :class:`~repro.engine.ResultCache` (same on-disk format, same
    invalidation rules).  New code should construct a
    :class:`~repro.engine.SimulationEngine` with ``cache_dir=...``,
    which additionally shares materialized traces and schedules
    parallel grids.

Simulations are deterministic, so a (workload, scheme, scale, seed,
skew-replacement, machine, schema) key fully determines an
ExecutionResult; re-running a figure CLI after the first full-scale
run costs milliseconds instead of minutes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.cpu import ExecutionResult
from repro.engine import ResultCache, RunConfig, SimulationKey
from repro.experiments.common import ResultStore


class CachedResultStore(ResultStore):
    """A ResultStore that persists every simulation result to disk."""

    def __init__(self, config: RunConfig = RunConfig(),
                 cache_dir: Union[str, os.PathLike] = ".repro-cache"):
        super().__init__(config)
        self.cache_dir = Path(cache_dir)
        self.cache = ResultCache(cache_dir)

    @property
    def disk_hits(self) -> int:
        return self.cache.hits

    @property
    def disk_misses(self) -> int:
        return self.cache.misses

    def _key(self, workload: str, scheme: str) -> SimulationKey:
        return SimulationKey.for_run(workload, scheme, self.config)

    def result(self, workload: str, scheme: str) -> ExecutionResult:
        cell = (workload, scheme)
        cached = self._results.get(cell)
        if cached is not None:
            return cached
        key = self._key(workload, scheme)
        persisted = self.cache.get(key)
        if persisted is not None:
            self._results[cell] = persisted
            return persisted
        result = super().result(workload, scheme)
        self.cache.put(key, result)
        return result

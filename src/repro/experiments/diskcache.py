"""Disk-backed result caching for repeated experiment runs.

Simulations are deterministic, so a (workload, scheme, scale, seed,
skew-replacement, version) key fully determines an ExecutionResult.
:class:`CachedResultStore` persists results as JSON under a cache
directory; re-running a figure CLI after the first full-scale run costs
milliseconds instead of minutes.

The cache key includes the package version: calibration changes bump it
and quietly invalidate stale entries.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Union

import repro
from repro.cpu import ExecutionResult
from repro.experiments.common import ResultStore, RunConfig


class CachedResultStore(ResultStore):
    """A ResultStore that persists every simulation result to disk."""

    def __init__(self, config: RunConfig = RunConfig(),
                 cache_dir: Union[str, os.PathLike] = ".repro-cache"):
        super().__init__(config)
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0

    def _path(self, workload: str, scheme: str) -> Path:
        config = self.config
        key = (f"{workload}--{scheme}--s{config.scale}--r{config.seed}"
               f"--{config.skew_replacement}--v{repro.__version__}")
        return self.cache_dir / f"{key}.json"

    def result(self, workload: str, scheme: str) -> ExecutionResult:
        key = (workload, scheme)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        path = self._path(workload, scheme)
        if path.exists():
            with open(path) as stream:
                payload = json.load(stream)
            result = ExecutionResult(**payload)
            self._results[key] = result
            self.disk_hits += 1
            return result
        self.disk_misses += 1
        result = super().result(workload, scheme)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as stream:
            json.dump(asdict(result), stream)
        tmp.replace(path)  # atomic publish
        return result

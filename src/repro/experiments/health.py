"""Health: fault drill + drift drill through the full watchdog loop.

Extension experiment exercising the :mod:`repro.obs.health` layer
end to end, the way a deployment would trust it:

* **Fault drill** — the same zipfian open-loop serving path as the
  ``serving`` experiment, run twice over a pMod-sharded store: once
  healthy (the :class:`~repro.obs.health.SloEngine` must stay quiet),
  then with the two hottest shards stalled through the existing
  :class:`~repro.serve.FaultInjector`.  The stall turns into explicit
  timeouts, the timeouts into ``serve.latency_s`` observations over
  the p99 target, and the SLO engine's fast window into a paging
  ``serve-p99-latency`` burn-rate alert.  The journal must show the
  whole causal chain in order: ``serve.fault.stall`` →
  ``serve.timeout`` → ``health.alert_fired``.
* **Self-healing** — the fault drill no longer ends at the page.  A
  :class:`~repro.control.RemediationController` consumes the very
  alerts and ``serve.fault.stall`` journal events the stalled phase
  produced, quarantines the stalled shards (an epoch bump routing
  around them — see :mod:`repro.store.routing`), and a recovery phase
  over the *same* store and the *same still-faulty* injector must
  bring the fast-window burn back under the paging threshold with no
  operator input.  The journal shows the full closed loop in order:
  ``serve.fault.stall`` → ``serve.timeout`` → ``health.alert_fired``
  → ``control.quarantine`` → ``health.alert_resolved``.
* **Drift drill** — strided (power-of-two stride) traffic replayed
  through one store per scheme, graded by a
  :class:`~repro.obs.health.HashQualityDetector` under
  :func:`~repro.obs.health.strict_bands`.  Figure 5's ordering becomes
  the asserted invariant: traditional modulo trips the balance band
  (its conflict pathology, live), while pMod and pDisp stay green.

The artifact's ``checks`` block records all three drills' verdicts;
``python -m repro.experiments.health --check`` (the ``make
health-check`` target) exits nonzero unless every check holds.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.obs import (
    Journal,
    disable_observability,
    enable_observability,
    get_collector,
    get_journal,
    get_registry,
    set_journal,
)
from repro.control import ControlConfig, RemediationController
from repro.obs.health import (
    HashQualityDetector,
    SloEngine,
    default_slos,
    strict_bands,
)
from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultInjector,
    FaultPolicy,
    Frontend,
    run_open_loop,
)
from repro.store import ShardedStore, make_traffic, replay

#: Schemes graded in the drift drill, in the paper's figure order.
DRIFT_SCHEMES = ("traditional", "xor", "pmod", "pdisp")

#: p99 latency target of the drill's SLO: healthy requests sit well
#: under it, a timed-out request (timeout + backoff + retry timeout)
#: sits well over it, so the stall phase burns budget mechanically.
P99_TARGET_S = 0.02

#: Trace-sampling rate during the drills: dense enough (1-in-4) that
#: the flight recorder holds complete slow-trace waterfalls when the
#: page fires.
DRILL_SPAN_EVERY = 4

#: A journaled flight-dump waterfall counts as complete when its
#: stages explain at least this fraction of the trace's wall time.
MIN_WATERFALL_COVERAGE = 0.9


def hottest_shards(scheme: str, requests: Sequence, n_shards: int,
                   top: int = 2) -> List[int]:
    """The ``top`` most-loaded shards for this stream under ``scheme``.

    Routing is deterministic, so counting a probe store's
    ``shard_for`` over the keys predicts exactly where the serving
    store will concentrate — stalling those shards guarantees the
    fault hits a known, large fraction of the traffic.
    """
    probe = ShardedStore(n_shards=n_shards, scheme=scheme)
    counts = Counter(probe.shard_for(request.key) for request in requests)
    return [shard for shard, _ in counts.most_common(top)]


def drill(scheme: str, requests: Sequence, *, n_shards: int = 8,
          stall_shards: Sequence[int] = (), stall_s: float = 0.25,
          timeout_s: float = P99_TARGET_S, rate_rps: float = 3000.0,
          seed: int = 0, store: Optional[ShardedStore] = None,
          injector: Optional[FaultInjector] = None) -> Dict:
    """One open-loop serving phase; returns the load-report payload.

    A provided ``store``/``injector`` is reused as-is (the frontend is
    still rebuilt — it holds asyncio primitives bound to the phase's
    event loop), which is how the self-healing drill keeps faults and
    quarantine state alive across phases.  Without them, fresh ones
    are built (the ``injector`` only when ``stall_shards`` is
    non-empty).

    Unlike :func:`repro.experiments.serving.measure` this deliberately
    does **not** publish the store's balance gauges: the drill's
    zipfian popularity skew is workload skew, not hashing drift, and
    must not leak into the drift drill's detector.
    """
    if injector is None and stall_shards:
        injector = FaultInjector(stall_s=stall_s, seed=seed)
        for shard in stall_shards:
            injector.stall(shard % n_shards)

    def build() -> Frontend:
        backend = store if store is not None else ShardedStore(
            n_shards=n_shards, scheme=scheme, shard_capacity=256)
        return Frontend(
            backend,
            batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
            admission=AdmissionConfig(rate=None, burst=128,
                                      max_queue_depth=512),
            policy=FaultPolicy(timeout_s=timeout_s, max_retries=1),
            injector=injector,
            span_every=DRILL_SPAN_EVERY,
        )

    report = run_open_loop(build, requests, rate_rps=rate_rps,
                           arrival="bursty", seed=seed)
    payload = report.as_dict()
    payload["scheme"] = scheme
    payload["stall_shards"] = sorted(stall_shards)
    payload["faults"] = injector.stats() if injector is not None else {}
    return payload


def drift_drill(n_requests: int, n_shards: int, seed: int,
                detector: HashQualityDetector) -> Dict[str, Dict]:
    """Replay one strided stream per scheme; grade each telemetry."""
    statuses: Dict[str, Dict] = {}
    for scheme in DRIFT_SCHEMES:
        store = ShardedStore(n_shards=n_shards, scheme=scheme)
        requests = make_traffic("strided", n_requests, seed=seed)
        replay(store, requests)
        statuses[scheme] = detector.grade_telemetry(
            store.telemetry()).as_dict()
    return statuses


def _journal_chain(journal: Journal) -> Dict[str, Optional[int]]:
    """First-occurrence sequence numbers of the causal chain."""
    chain: Dict[str, Optional[int]] = {}
    for kind in ("serve.fault.stall", "serve.timeout",
                 "health.alert_fired", "control.quarantine",
                 "health.alert_resolved"):
        events = journal.find(kind)
        chain[kind] = events[0].seq if events else None
    return chain


def health_checks(healthy: Sequence[Mapping], stalled: Sequence[Mapping],
                  alerts: Sequence[Mapping], stall_payload: Mapping,
                  drift: Mapping[str, Mapping],
                  chain: Mapping[str, Optional[int]],
                  remediation: Mapping,
                  flight_events: Sequence[Mapping] = ()) -> Dict[str, bool]:
    """The watchdog + remediation contract, asserted on the artifact."""
    stall_seq = chain.get("serve.fault.stall")
    timeout_seq = chain.get("serve.timeout")
    alert_seq = chain.get("health.alert_fired")
    quarantine_seq = chain.get("control.quarantine")
    statuses = stall_payload["statuses"]
    actions = remediation.get("actions", [])
    post_alerts = remediation.get("post_alerts", [])
    return {
        "healthy_phase_quiet": not any(s["alerting"] for s in healthy),
        "stall_fires_fast_page": any(
            a["window"] == "fast" and a["slo"] == "serve-p99-latency"
            for a in alerts),
        "stall_surfaces_explicitly": (
            statuses.get("timeout", 0) + statuses.get("rejected", 0) > 0),
        "journal_chain_ordered": (
            stall_seq is not None and timeout_seq is not None
            and alert_seq is not None
            and stall_seq < timeout_seq < alert_seq),
        # -- the closed loop: detect → remediate → recover --------------
        "controller_quarantines": any(
            a["kind"] == "quarantine" for a in actions),
        "quarantine_follows_page": (
            alert_seq is not None and quarantine_seq is not None
            and alert_seq < quarantine_seq),
        "fast_page_resolved": not any(
            a["window"] == "fast" and a["slo"] == "serve-p99-latency"
            for a in post_alerts),
        # -- the page leaves evidence: a journaled flight dump whose
        # embedded slowest trace is a complete waterfall ----------------
        "flight_dump_journaled": len(flight_events) > 0,
        "flight_waterfall_complete": any(
            event["fields"].get("slowest", {}).get("stages")
            and event["fields"]["slowest"].get("coverage", 0.0)
            >= MIN_WATERFALL_COVERAGE
            for event in flight_events),
        "traditional_drift_trips": not drift["traditional"]["ok"],
        "pmod_within_band": drift["pmod"]["ok"],
        "pdisp_within_band": drift["pdisp"]["ok"],
    }


def run(scale: float = 1.0, seed: int = 0, n_shards: int = 8,
        drift_shards: int = 64) -> Dict:
    """Both drills end to end; returns the artifact's data block.

    Runs on the process-wide registry/journal so the emitting layers,
    the SLO engine, and the detector all see one telemetry stream —
    enabling (and afterwards restoring) global observability when the
    caller has not.
    """
    was_enabled = get_registry().enabled
    prior_journal = get_journal()
    if not was_enabled:
        enable_observability()
    if not prior_journal.enabled:
        set_journal(Journal())  # in-memory: tail + find, no file
    try:
        journal = get_journal()
        # The process-wide collector's flight recorder: drill traces
        # land in it via the frontends' 1-in-DRILL_SPAN_EVERY sampling,
        # and the SLO engine dumps it the moment a page fires.
        flight = get_collector().flight
        flight.clear()
        engine = SloEngine(default_slos(p99_target_s=P99_TARGET_S),
                           registry=get_registry(), journal=journal,
                           flight=flight)
        n_healthy = max(200, int(600 * scale))
        healthy_requests = make_traffic("zipfian", n_healthy, seed=seed)
        healthy_payload = drill("pmod", healthy_requests,
                                n_shards=n_shards, seed=seed)
        healthy_statuses = [s.as_dict() for s in engine.evaluate()]

        n_stalled = 2 * n_healthy
        stall_requests = make_traffic("zipfian", n_stalled, seed=seed + 1)
        stall_shards = hottest_shards("pmod", stall_requests, n_shards)
        # The store and the (still-faulty) injector survive into the
        # recovery phase: the controller fixes routing, not the fault.
        fault_store = ShardedStore(n_shards=n_shards, scheme="pmod",
                                   shard_capacity=256)
        fault_injector = FaultInjector(stall_s=0.25, seed=seed)
        for shard in stall_shards:
            fault_injector.stall(shard % n_shards)
        stall_payload = drill("pmod", stall_requests, n_shards=n_shards,
                              stall_shards=stall_shards, seed=seed,
                              store=fault_store, injector=fault_injector)
        stalled_statuses = [s.as_dict() for s in engine.evaluate()]
        alerts = [a.as_dict() for a in engine.active_alerts()]

        # -- self-healing: controller remediates, SLO must recover ------
        controller = RemediationController(fault_store, engine,
                                           config=ControlConfig(),
                                           journal=journal,
                                           registry=get_registry())
        actions = [a.as_dict() for a in controller.step()]
        # Recovery traffic must outweigh the stalled phase ~3:1 so the
        # latency histogram's bounded fast window (4096 observations
        # per series) drains below the paging burn threshold.
        n_recovery = 3 * n_stalled
        recovery_requests = make_traffic("zipfian", n_recovery,
                                         seed=seed + 2)
        recovery_payload = drill("pmod", recovery_requests,
                                 n_shards=n_shards,
                                 stall_shards=stall_shards, seed=seed,
                                 store=fault_store,
                                 injector=fault_injector)
        recovery_statuses = [s.as_dict() for s in engine.evaluate()]
        post_alerts = [a.as_dict() for a in engine.active_alerts()]
        remediation = {
            "actions": actions,
            "quarantined": sorted(fault_store.routing.quarantined),
            "epoch": fault_store.epoch,
            "post_alerts": post_alerts,
        }

        detector = HashQualityDetector(strict_bands(drift_shards),
                                       registry=get_registry(),
                                       journal=journal)
        drift = drift_drill(max(512, int(4096 * scale)), drift_shards,
                            seed, detector)
        chain = _journal_chain(journal)
        flight_events = [e.as_dict()
                         for e in journal.find("obs.flight_dump")]
        by_kind: Dict[str, int] = {}
        for event in journal.tail():
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {
            "p99_target_s": P99_TARGET_S,
            "n_shards": n_shards,
            "drift_shards": drift_shards,
            "healthy": {"payload": healthy_payload,
                        "slos": healthy_statuses},
            "stalled": {"payload": stall_payload,
                        "slos": stalled_statuses,
                        "stall_shards": stall_shards},
            "alerts": alerts,
            "remediation": remediation,
            "recovery": {"payload": recovery_payload,
                         "slos": recovery_statuses},
            "drift": drift,
            "flight": {
                "recorded": flight.recorded,
                "dumps": flight.dumps,
                "n_slow": len(flight.slowest()),
                "n_error": len(flight.errors()),
                "dump_events": flight_events,
            },
            "journal": {"events": journal.events,
                        "by_kind": by_kind, "chain": chain},
            "checks": health_checks(healthy_statuses, stalled_statuses,
                                    alerts, stall_payload, drift, chain,
                                    remediation,
                                    flight_events=flight_events),
        }
    finally:
        if not was_enabled:
            disable_observability()
        if not prior_journal.enabled:
            set_journal(prior_journal)


def render(data: Mapping) -> str:
    """Burn rates, alerts, drift verdicts, journal chain, checks."""
    from repro.reporting import format_table

    slo_rows = [
        [s["name"], f"{s['fast_burn']:.2f}", f"{s['slow_burn']:.2f}",
         "ALERT" if s["alerting"] else "ok"]
        for s in data["stalled"]["slos"]
    ]
    drift_rows = [
        [scheme, f"{st['balance']:.3f}", f"{st['concentration']:.3f}",
         "ok" if st["ok"] else "TRIPPED"]
        for scheme, st in data["drift"].items()
    ]
    sections = [
        format_table(
            ["slo", "fast burn", "slow burn", "verdict"], slo_rows,
            title=(f"SLO burn rates after stalling shards "
                   f"{data['stalled']['stall_shards']} "
                   f"(p99 target {data['p99_target_s'] * 1e3:g} ms)")),
        format_table(
            ["scheme", "balance", "concentration", "verdict"], drift_rows,
            title=(f"Hash-quality drift, strided stream, "
                   f"{data['drift_shards']} shards, strict bands")),
    ]
    alerts = data["alerts"]
    if alerts:
        sections.append("alerts after stall: " + "; ".join(
            f"[{a['severity']}] {a['message']}" for a in alerts))
    else:
        sections.append("alerts after stall: none")
    remediation = data.get("remediation", {})
    if remediation:
        action_names = [a["kind"] for a in remediation.get("actions", [])]
        post = remediation.get("post_alerts", [])
        sections.append(
            f"remediation: actions={action_names or 'none'}, "
            f"quarantined={remediation.get('quarantined', [])} "
            f"(epoch {remediation.get('epoch')}); "
            f"alerts after recovery: "
            f"{[a['slo'] + '/' + a['window'] for a in post] or 'none'}")
    flight = data.get("flight", {})
    if flight:
        dumps = flight.get("dump_events", [])
        line = (f"flight recorder: {flight.get('recorded', 0)} traces "
                f"recorded, {flight.get('n_slow', 0)} slow + "
                f"{flight.get('n_error', 0)} error retained, "
                f"{flight.get('dumps', 0)} dump(s)")
        if dumps:
            slowest = dumps[0]["fields"].get("slowest", {})
            if slowest:
                stages = ", ".join(
                    f"{s['name']} {s['duration_s'] * 1e3:.2f}ms"
                    for s in slowest.get("stages", []))
                line += (f"; page dump '{dumps[0]['fields']['reason']}' "
                         f"slowest trace {slowest.get('trace_id')} "
                         f"({slowest.get('wall_s', 0.0) * 1e3:.2f} ms): "
                         f"{stages}")
        sections.append(line)
    chain = data["journal"]["chain"]
    sections.append(
        "journal chain (seq): " + " -> ".join(
            f"{kind}@{seq}" for kind, seq in chain.items()))
    checks = data["checks"]
    verdict = "ok" if all(checks.values()) else "VIOLATED"
    failing = [name for name, ok in checks.items() if not ok]
    suffix = f" (failing: {', '.join(failing)})" if failing else ""
    sections.append(
        f"Health contract: {verdict} "
        f"({sum(checks.values())}/{len(checks)} checks hold){suffix}")
    return "\n\n".join(sections)


def _build(ctx: ExperimentContext) -> Dict:
    return run(
        scale=ctx.config.scale,
        seed=ctx.config.seed,
        n_shards=int(ctx.param("n_shards", 8)),
        drift_shards=int(ctx.param("drift_shards", 64)),
    )


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="health",
    title="Health: SLO burn-rate fault drill + hash-quality drift drill "
          "(extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every health check "
                             "holds (the make health-check gate)")
    args = parser.parse_args()
    artifact = run_experiment("health", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if failing:
            print(f"health-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("health-check: ok")


if __name__ == "__main__":
    main()

"""Table 4: min/avg/max speedups and pathological-case counts per cache
configuration, over the uniform and non-uniform application groups.

A pathological case is a slowdown of more than 1% relative to Base
(the paper's definition).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import format_table
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes summarized by Table 4, in the paper's row order.
SUMMARY_SCHEMES = ("xor", "pmod", "pdisp", "skw", "skw+pdisp")

#: The paper's pathological threshold: >1% slowdown vs Base.
PATHOLOGICAL_THRESHOLD = 0.01


@dataclass(frozen=True)
class SchemeSummary:
    """One row of Table 4."""

    scheme: str
    uniform_min: float
    uniform_avg: float
    uniform_max: float
    nonuniform_min: float
    nonuniform_avg: float
    nonuniform_max: float
    pathological_cases: int
    pathological_apps: tuple


def summarize_scheme(scheme: str, store: ResultStore) -> SchemeSummary:
    uniform = [store.speedup(app, scheme) for app in UNIFORM_APPS]
    nonuniform = [store.speedup(app, scheme) for app in NONUNIFORM_APPS]
    slow = tuple(
        app for app in (*UNIFORM_APPS, *NONUNIFORM_APPS)
        if store.speedup(app, scheme) < 1.0 - PATHOLOGICAL_THRESHOLD
    )
    return SchemeSummary(
        scheme=scheme,
        uniform_min=min(uniform),
        uniform_avg=sum(uniform) / len(uniform),
        uniform_max=max(uniform),
        nonuniform_min=min(nonuniform),
        nonuniform_avg=sum(nonuniform) / len(nonuniform),
        nonuniform_max=max(nonuniform),
        pathological_cases=len(slow),
        pathological_apps=slow,
    )


def run(config: RunConfig = RunConfig(), store: ResultStore = None,
        schemes: Sequence[str] = SUMMARY_SCHEMES) -> List[SchemeSummary]:
    store = store or ResultStore(config)
    return [summarize_scheme(scheme, store) for scheme in schemes]


def render(summaries: List[SchemeSummary]) -> str:
    rows = []
    for s in summaries:
        rows.append([
            s.scheme,
            f"{s.uniform_min:.2f},{s.uniform_avg:.2f},{s.uniform_max:.2f}",
            f"{s.nonuniform_min:.2f},{s.nonuniform_avg:.2f},{s.nonuniform_max:.2f}",
            s.pathological_cases,
        ])
    table = format_table(
        ["Cache Hashing", "Uniform (min,avg,max)",
         "Non-uniform (min,avg,max)", "Patho. cases"],
        rows,
        title="Table 4: Summary of performance improvement",
    )
    notes = [
        f"{s.scheme}: slows {', '.join(s.pathological_apps)}"
        for s in summaries if s.pathological_apps
    ]
    return table + ("\n" + "\n".join(notes) if notes else "")


def _build(ctx: ExperimentContext) -> Dict:
    engine = ctx.engine
    schemes = tuple(ctx.param("schemes", SUMMARY_SCHEMES))
    engine.run_grid((*UNIFORM_APPS, *NONUNIFORM_APPS),
                    ("base", *schemes))
    summaries = run(store=engine, schemes=schemes)
    return {"schemes": [asdict(s) for s in summaries]}


def _render_artifact(artifact: Mapping) -> str:
    summaries = [
        SchemeSummary(**{
            **payload, "pathological_apps": tuple(payload["pathological_apps"]),
        })
        for payload in artifact["data"]["schemes"]
    ]
    return render(summaries)


register(ExperimentSpec(
    name="summary",
    title="Table 4: speedup summary and pathological cases",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("summary", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

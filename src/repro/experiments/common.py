"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module follows the same shape: a ``run(...)`` function
returning a result dataclass, a ``render(result)`` returning the
terminal report, and a ``main()`` so each figure/table can be
regenerated with ``python -m repro.experiments.<name>``.

:class:`ResultStore` caches per-(workload, scheme) simulation results
so the execution-time figures, miss figures and the Table 4 summary —
which all consume the same runs — only simulate each configuration
once.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cpu import ExecutionResult, simulate_scheme
from repro.workloads import get_workload


@dataclass(frozen=True)
class RunConfig:
    """Knobs shared by all simulation-based experiments.

    Attributes:
        scale: trace-length multiplier (1.0 = ~120k accesses/app; tests
            and benches use smaller values).
        seed: RNG seed for the workload generators.
        skew_replacement: pseudo-LRU used by the skewed caches
            (``enru``, the paper's default, or ``nrunrw``).
    """

    scale: float = 1.0
    seed: int = 0
    skew_replacement: str = "enru"


@dataclass
class ResultStore:
    """Memoizing runner for (workload, scheme) simulations."""

    config: RunConfig = field(default_factory=RunConfig)
    _results: Dict[Tuple[str, str], ExecutionResult] = field(
        default_factory=dict, repr=False
    )

    def result(self, workload: str, scheme: str) -> ExecutionResult:
        """Simulate (or return the cached run of) one configuration."""
        key = (workload, scheme)
        cached = self._results.get(key)
        if cached is None:
            trace = get_workload(workload).trace(
                scale=self.config.scale, seed=self.config.seed
            )
            cached = simulate_scheme(
                trace, scheme, skew_replacement=self.config.skew_replacement
            )
            self._results[key] = cached
        return cached

    def speedup(self, workload: str, scheme: str) -> float:
        """Speedup of ``scheme`` over Base for one workload."""
        return self.result(workload, scheme).speedup_over(
            self.result(workload, "base")
        )

    def miss_ratio(self, workload: str, scheme: str) -> float:
        """L2 misses normalized to Base for one workload."""
        base = self.result(workload, "base").l2_misses
        if base == 0:
            return 1.0
        return self.result(workload, scheme).l2_misses / base


def standard_argparser(description: str) -> argparse.ArgumentParser:
    """CLI shared by the experiment mains: --scale / --seed."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-length multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload RNG seed (default 0)")
    return parser

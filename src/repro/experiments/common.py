"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module follows the same shape: a ``run(...)`` function
returning a result dataclass, a ``render(result)`` returning the
terminal report, and a ``main()`` so each figure/table can be
regenerated with ``python -m repro.experiments.<name>`` (or uniformly
via ``python -m repro.experiments <name>``).

Simulation runs flow through :mod:`repro.engine`: the
:class:`~repro.engine.SimulationEngine` content-addresses every run,
persists results under ``--cache-dir``, materializes each workload
trace once per grid and schedules parallel grids by workload.  The
historical :class:`ResultStore` remains as the minimal in-memory
memoizer; the engine is call-compatible with it, and everything here
accepts either.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cpu import ExecutionResult, simulate_scheme
from repro.engine import ExperimentContext, RunConfig, SimulationEngine
from repro.workloads import get_workload

__all__ = [
    "ExperimentContext",
    "ResultStore",
    "RunConfig",
    "config_from_args",
    "context_from_args",
    "standard_argparser",
]


@dataclass
class ResultStore:
    """Minimal in-memory memoizing runner for (workload, scheme) runs.

    :class:`~repro.engine.SimulationEngine` supersedes this (adding
    persistence, trace sharing and parallel grids) and exposes the same
    ``result`` / ``speedup`` / ``miss_ratio`` surface; the store stays
    for lightweight call sites and backward compatibility.
    """

    config: RunConfig = field(default_factory=RunConfig)
    _results: Dict[Tuple[str, str], ExecutionResult] = field(
        default_factory=dict, repr=False
    )

    def result(self, workload: str, scheme: str) -> ExecutionResult:
        """Simulate (or return the cached run of) one configuration."""
        key = (workload, scheme)
        cached = self._results.get(key)
        if cached is None:
            trace = get_workload(workload).trace(
                scale=self.config.scale, seed=self.config.seed
            )
            cached = simulate_scheme(
                trace, scheme, skew_replacement=self.config.skew_replacement
            )
            self._results[key] = cached
        return cached

    def preload(self, results: Dict[Tuple[str, str], ExecutionResult]) -> None:
        """Adopt externally computed results (e.g. from a parallel grid).

        The public way to pre-populate a store; keeps callers off the
        private ``_results`` dict.
        """
        self._results.update(results)

    def speedup(self, workload: str, scheme: str) -> float:
        """Speedup of ``scheme`` over Base for one workload."""
        return self.result(workload, scheme).speedup_over(
            self.result(workload, "base")
        )

    def miss_ratio(self, workload: str, scheme: str) -> float:
        """L2 misses normalized to Base for one workload."""
        base = self.result(workload, "base").l2_misses
        if base == 0:
            return 1.0
        return self.result(workload, scheme).l2_misses / base


def standard_argparser(description: str) -> argparse.ArgumentParser:
    """CLI shared by the experiment mains.

    Options: ``--scale`` / ``--seed`` / ``--skew-replacement`` (the
    RunConfig), ``--jobs`` (parallel grid workers) and ``--cache-dir``
    (persistent result cache).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-length multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload RNG seed (default 0)")
    parser.add_argument("--skew-replacement", default="enru",
                        choices=("enru", "nrunrw"),
                        help="skewed-cache replacement policy "
                             "(default enru, the paper's)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation grids "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist simulation results under DIR so "
                             "re-runs perform zero new simulations")
    return parser


def config_from_args(args: argparse.Namespace) -> RunConfig:
    """RunConfig from a :func:`standard_argparser` namespace."""
    return RunConfig(
        scale=args.scale,
        seed=args.seed,
        skew_replacement=getattr(args, "skew_replacement", "enru"),
    )


def context_from_args(args: argparse.Namespace,
                      **params) -> ExperimentContext:
    """ExperimentContext (engine + params) from a parsed namespace."""
    engine = SimulationEngine(
        config=config_from_args(args),
        cache_dir=getattr(args, "cache_dir", None),
        jobs=getattr(args, "jobs", 1) or 1,
    )
    return ExperimentContext(engine=engine, params=params)

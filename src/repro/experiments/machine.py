"""Table 3: parameters of the simulated architecture.

Not an experiment — this prints the configuration constants the
simulator encodes, for comparison against the paper's table.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.cpu import MachineConfig
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.reporting import format_table


def parameters(config: MachineConfig = None) -> List[List[str]]:
    """Table 3's rows: [parameter name, value] pairs."""
    config = config or MachineConfig.paper_default()
    dram = config.dram_config()
    rows = [
        ["Issue width", config.issue_width],
        ["Frequency (GHz)", config.frequency_ghz],
        ["Pending loads / stores", f"{config.pending_loads} / {config.pending_stores}"],
        ["Branch penalty (cycles)", config.branch_penalty],
        ["L1 data", f"{config.l1_bytes // 1024} KB, {config.l1_assoc}-way, "
                    f"{config.l1_block_bytes}-B line, {config.l1_hit_cycles}-cycle hit RT"],
        ["L2 data", f"{config.l2_bytes // 1024} KB, {config.l2_assoc}-way, "
                    f"{config.l2_block_bytes}-B line, {config.l2_hit_cycles}-cycle hit RT"],
        ["L2 sets (physical)", config.l2_sets],
        ["Memory RT (row miss)", f"{dram.row_miss_cycles} cycles"],
        ["Memory RT (row hit)", f"{dram.row_hit_cycles} cycles"],
        ["Memory channels", dram.channels],
    ]
    return [[name, str(value)] for name, value in rows]


def render(config: MachineConfig = None) -> str:
    return format_table(["Parameter", "Value"], parameters(config),
                        title="Table 3: Simulated architecture")


def _build(ctx: ExperimentContext) -> Dict:
    return {"parameters": parameters(ctx.engine.machine)}


def _render_artifact(artifact: Mapping) -> str:
    return format_table(["Parameter", "Value"],
                        artifact["data"]["parameters"],
                        title="Table 3: Simulated architecture")


register(ExperimentSpec(
    name="machine",
    title="Table 3: simulated architecture parameters",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("machine", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

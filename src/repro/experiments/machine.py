"""Table 3: parameters of the simulated architecture.

Not an experiment — this prints the configuration constants the
simulator encodes, for comparison against the paper's table.
"""

from __future__ import annotations

from repro.cpu import MachineConfig
from repro.reporting import format_table


def render(config: MachineConfig = None) -> str:
    config = config or MachineConfig.paper_default()
    dram = config.dram_config()
    rows = [
        ["Issue width", config.issue_width],
        ["Frequency (GHz)", config.frequency_ghz],
        ["Pending loads / stores", f"{config.pending_loads} / {config.pending_stores}"],
        ["Branch penalty (cycles)", config.branch_penalty],
        ["L1 data", f"{config.l1_bytes // 1024} KB, {config.l1_assoc}-way, "
                    f"{config.l1_block_bytes}-B line, {config.l1_hit_cycles}-cycle hit RT"],
        ["L2 data", f"{config.l2_bytes // 1024} KB, {config.l2_assoc}-way, "
                    f"{config.l2_block_bytes}-B line, {config.l2_hit_cycles}-cycle hit RT"],
        ["L2 sets (physical)", config.l2_sets],
        ["Memory RT (row miss)", f"{dram.row_miss_cycles} cycles"],
        ["Memory RT (row hit)", f"{dram.row_hit_cycles} cycles"],
        ["Memory channels", dram.channels],
    ]
    return format_table(["Parameter", "Value"], rows,
                        title="Table 3: Simulated architecture")


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()

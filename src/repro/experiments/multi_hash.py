"""Figures 9 and 10: normalized execution time under multiple hashing
functions (Base, pMod, SKW, skw+pDisp).

pMod carries over as the best single-hash scheme from Figures 7-8; the
skewed associative caches trade a higher average speedup on the
non-uniform applications for pathological slowdowns on some uniform
ones (Section 5.3).
"""

from __future__ import annotations

from repro.experiments.common import ResultStore, RunConfig, standard_argparser
from repro.experiments.single_hash import ExecutionTimeFigure, build_figure, render
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 9-10, in presentation order.
MULTI_HASH_SCHEMES = ("base", "pmod", "skw", "skw+pdisp")


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure9, figure10)."""
    store = store or ResultStore(config)
    fig9 = build_figure(
        "Figure 9: multiple hashing, non-uniform applications",
        NONUNIFORM_APPS, MULTI_HASH_SCHEMES, store,
    )
    fig10 = build_figure(
        "Figure 10: multiple hashing, uniform applications",
        UNIFORM_APPS, MULTI_HASH_SCHEMES, store,
    )
    return fig9, fig10


def pathological_cases(figure: ExecutionTimeFigure, scheme: str,
                       threshold: float = 0.01):
    """Apps this scheme slows by more than ``threshold`` vs Base."""
    return [
        app for app in figure.apps
        if figure.speedup(app, scheme) < 1.0 - threshold
    ]


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    fig9, fig10 = run(RunConfig(scale=args.scale, seed=args.seed))
    print(render(fig9))
    print()
    print(render(fig10))
    for scheme in ("skw", "skw+pdisp"):
        slow = pathological_cases(fig10, scheme)
        print(f"\n{scheme}: pathological slowdowns on uniform apps: "
              f"{', '.join(slow) if slow else 'none'}")


if __name__ == "__main__":
    main()

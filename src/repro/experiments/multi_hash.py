"""Figures 9 and 10: normalized execution time under multiple hashing
functions (Base, pMod, SKW, skw+pDisp).

pMod carries over as the best single-hash scheme from Figures 7-8; the
skewed associative caches trade a higher average speedup on the
non-uniform applications for pathological slowdowns on some uniform
ones (Section 5.3).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.experiments.single_hash import (
    ExecutionTimeFigure,
    build_figure,
    figure_from_payload,
    figure_payload,
    render,
)
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS

#: Schemes of Figures 9-10, in presentation order.
MULTI_HASH_SCHEMES = ("base", "pmod", "skw", "skw+pdisp")


def run(config: RunConfig = RunConfig(), store: ResultStore = None):
    """Both figures; returns (figure9, figure10)."""
    store = store or ResultStore(config)
    fig9 = build_figure(
        "Figure 9: multiple hashing, non-uniform applications",
        NONUNIFORM_APPS, MULTI_HASH_SCHEMES, store,
    )
    fig10 = build_figure(
        "Figure 10: multiple hashing, uniform applications",
        UNIFORM_APPS, MULTI_HASH_SCHEMES, store,
    )
    return fig9, fig10


def pathological_cases(figure: ExecutionTimeFigure, scheme: str,
                       threshold: float = 0.01):
    """Apps this scheme slows by more than ``threshold`` vs Base."""
    return [
        app for app in figure.apps
        if figure.speedup(app, scheme) < 1.0 - threshold
    ]


def _build(ctx: ExperimentContext) -> Dict:
    engine = ctx.engine
    engine.run_grid((*NONUNIFORM_APPS, *UNIFORM_APPS), MULTI_HASH_SCHEMES)
    fig9, fig10 = run(store=engine)
    return {"figures": [figure_payload(fig9), figure_payload(fig10)]}


def _render_artifact(artifact: Mapping) -> str:
    figures = [figure_from_payload(p) for p in artifact["data"]["figures"]]
    sections = [render(figure) for figure in figures]
    notes = []
    for scheme in ("skw", "skw+pdisp"):
        slow = pathological_cases(figures[-1], scheme)
        notes.append(f"{scheme}: pathological slowdowns on uniform apps: "
                     f"{', '.join(slow) if slow else 'none'}")
    return "\n\n".join(sections) + "\n\n" + "\n".join(notes)


register(ExperimentSpec(
    name="multi_hash",
    title="Figures 9-10: normalized execution time, multiple hashing",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("multi_hash", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

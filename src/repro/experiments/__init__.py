"""One runnable module per paper table/figure.

========================== ======================================
module                      reproduces
========================== ======================================
``fragmentation``           Table 1 (prime modulo fragmentation)
``qualitative``             Table 2 (hash-function properties)
``machine``                 Table 3 (architecture parameters)
``summary``                 Table 4 (speedup summary)
``stride_sweep``            Figures 5-6 (balance/concentration)
``single_hash``             Figures 7-8 (exec time, single hash)
``multi_hash``              Figures 9-10 (exec time, multi hash)
``miss_reduction``          Figures 11-12 (normalized misses)
``miss_distribution``       Figure 13 (per-set misses, tree)
``uniformity_table``        Section 4's 7-of-23 classification
``l1_hashing``              Section 3.3's L1 example + hierarchy check
``design_space``            indexing x associativity sweep (extension)
``sensitivity``             L2 capacity sweep of the pMod gap (extension)
``page_allocation``         OS page-allocation robustness (extension)
``shared_cache``            multiprogrammed-L2 interference (extension)
``seeds``                   seed-robustness of the headline results
========================== ======================================

Each module exposes ``run(...)``, ``render(result)`` and a ``main()``
CLI (``python -m repro.experiments.<name> [--scale S] [--seed N]``).
"""

from repro.experiments.common import ResultStore, RunConfig

__all__ = ["ResultStore", "RunConfig"]

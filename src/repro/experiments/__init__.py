"""One runnable module per paper table/figure.

========================== ======================================
module                      reproduces
========================== ======================================
``fragmentation``           Table 1 (prime modulo fragmentation)
``qualitative``             Table 2 (hash-function properties)
``machine``                 Table 3 (architecture parameters)
``summary``                 Table 4 (speedup summary)
``stride_sweep``            Figures 5-6 (balance/concentration)
``single_hash``             Figures 7-8 (exec time, single hash)
``multi_hash``              Figures 9-10 (exec time, multi hash)
``miss_reduction``          Figures 11-12 (normalized misses)
``miss_distribution``       Figure 13 (per-set misses, tree)
``uniformity_table``        Section 4's 7-of-23 classification
``l1_hashing``              Section 3.3's L1 example + hierarchy check
``design_space``            indexing x associativity sweep (extension)
``sensitivity``             L2 capacity sweep of the pMod gap (extension)
``page_allocation``         OS page-allocation robustness (extension)
``shared_cache``            multiprogrammed-L2 interference (extension)
``seeds``                   seed-robustness of the headline results
``store_sharding``          sharded KV store balance (extension)
``health``                  SLO burn-rate + drift watchdog drill (extension)
``reshard``                 live prime-ladder reshard contract (extension)
``cluster``                 multi-node loss/recovery drill (extension)
``adversary``               hash cracking vs scheme + keyed rotation (extension)
``federation``              cluster-wide telemetry federation drill (extension)
========================== ======================================

Each module exposes ``run(...)``, ``render(result)`` and a ``main()``
CLI, and registers an :class:`~repro.engine.ExperimentSpec` so it is
also reachable uniformly::

    python -m repro.experiments <name> --scale S --seed N \
        --jobs J --cache-dir DIR [--artifact PATH]

(``python -m repro.experiments list`` enumerates the registry.)
"""

import importlib

from repro.experiments.common import ResultStore, RunConfig

#: Modules that self-register an ExperimentSpec on import.
EXPERIMENT_MODULES = (
    "fragmentation",
    "qualitative",
    "machine",
    "summary",
    "stride_sweep",
    "single_hash",
    "multi_hash",
    "miss_reduction",
    "miss_distribution",
    "uniformity_table",
    "l1_hashing",
    "l3_hashing",
    "design_space",
    "sensitivity",
    "page_allocation",
    "shared_cache",
    "seeds",
    "store_sharding",
    "serving",
    "health",
    "reshard",
    "cluster",
    "adversary",
    "federation",
)


def load_all_experiments() -> None:
    """Import every experiment module so its spec self-registers.

    Called lazily by the registry (:mod:`repro.engine.registry`) the
    first time an experiment is looked up by name.
    """
    for name in EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{name}")


__all__ = ["EXPERIMENT_MODULES", "ResultStore", "RunConfig",
           "load_all_experiments"]

"""Design-space exploration: indexing scheme x associativity.

Beyond the paper's fixed 4-way/8-way comparison, this sweeps the L2
associativity for each indexing function at constant capacity and
reports misses — quantifying the paper's headline claim from the other
direction: prime hashing at 2 ways beats traditional indexing at 8 on
conflict-heavy workloads, i.e. a better index is worth more than more
ways.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

from repro.cache import CacheHierarchy, SetAssociativeCache
from repro.cpu import MachineConfig, Simulator
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import make_indexing
from repro.memory import DramModel
from repro.reporting import format_table
from repro.workloads import get_workload


@dataclass(frozen=True)
class DesignPoint:
    """One (indexing, associativity) configuration's results."""

    indexing: str
    assoc: int
    l2_misses: int
    cycles: float


def _hierarchy(indexing_key: str, assoc: int,
               machine: MachineConfig) -> CacheHierarchy:
    if machine.l2_blocks % assoc:
        raise ValueError(f"capacity not divisible by associativity {assoc}")
    n_sets = machine.l2_blocks // assoc
    l1 = SetAssociativeCache(
        machine.l1_sets, machine.l1_assoc,
        make_indexing("traditional", machine.l1_sets), name="L1",
    )
    l2 = SetAssociativeCache(
        n_sets, assoc, make_indexing(indexing_key, n_sets),
        name=f"{indexing_key}/{assoc}w",
    )
    return CacheHierarchy(l1, l2, machine.l1_block_bytes,
                          machine.l2_block_bytes)


def run(workload: str, config: RunConfig = RunConfig(),
        indexings: Sequence[str] = ("traditional", "xor", "pmod", "pdisp"),
        associativities: Sequence[int] = (1, 2, 4, 8)) -> List[DesignPoint]:
    """Sweep the design space for one workload at constant L2 capacity."""
    machine = MachineConfig.paper_default()
    trace = get_workload(workload).trace(scale=config.scale, seed=config.seed)
    points = []
    for key in indexings:
        for assoc in associativities:
            hierarchy = _hierarchy(key, assoc, machine)
            sim = Simulator(hierarchy, DramModel(machine.dram_config()),
                            machine, scheme=f"{key}/{assoc}")
            result = sim.run(trace)
            points.append(DesignPoint(key, assoc, result.l2_misses,
                                      result.cycles))
    return points


def render(workload: str, points: List[DesignPoint]) -> str:
    indexings = sorted({p.indexing for p in points})
    associativities = sorted({p.assoc for p in points})
    by_key: Dict[tuple, DesignPoint] = {
        (p.indexing, p.assoc): p for p in points
    }
    rows = []
    for key in indexings:
        rows.append(
            [key] + [by_key[(key, a)].l2_misses for a in associativities]
        )
    return format_table(
        ["indexing \\ ways"] + [str(a) for a in associativities],
        rows,
        title=f"L2 misses by indexing x associativity — {workload} "
              "(constant 512 KB)",
    )


def _build(ctx: ExperimentContext) -> Dict:
    workload = ctx.param("workload", "tree")
    points = run(
        workload, ctx.config,
        indexings=tuple(ctx.param("indexings",
                                  ("traditional", "xor", "pmod", "pdisp"))),
        associativities=tuple(ctx.param("associativities", (1, 2, 4, 8))),
    )
    return {"workload": workload, "points": [asdict(p) for p in points]}


def _render_artifact(artifact: Mapping) -> str:
    data = artifact["data"]
    return render(data["workload"],
                  [DesignPoint(**p) for p in data["points"]])


register(ExperimentSpec(
    name="design_space",
    title="Extension: indexing x associativity design-space sweep",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("--workload", default="tree")
    args = parser.parse_args()
    ctx = context_from_args(args, workload=args.workload)
    print(render_artifact(run_experiment("design_space", ctx)))


if __name__ == "__main__":
    main()

"""Cache-size sensitivity: does prime hashing's advantage survive
scaling the L2?

The paper evaluates one 512 KB geometry.  This extension sweeps the L2
capacity (at fixed 4-way associativity and line size) and measures the
Base-vs-pMod miss gap per workload.  Conflict misses are a property of
the *mapping*, not the capacity, so the non-uniform applications keep
their gap until the cache is large enough to hold the conflicting
footprint outright — the crossover this experiment locates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

from repro.cache import simulate_misses
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import PrimeModuloIndexing, TraditionalIndexing
from repro.reporting import format_table
from repro.workloads import get_workload

#: L2 capacities swept, in KB (paper's is 512).
DEFAULT_CAPACITIES_KB = (128, 256, 512, 1024, 2048)

L2_BLOCK_BYTES = 64
L2_ASSOC = 4


@dataclass(frozen=True)
class SensitivityPoint:
    """Miss counts at one capacity for one workload."""

    workload: str
    capacity_kb: int
    base_misses: int
    pmod_misses: int

    @property
    def miss_ratio(self) -> float:
        """pMod misses normalized to Base (lower = bigger win)."""
        if self.base_misses == 0:
            return 1.0
        return self.pmod_misses / self.base_misses


def run(workload: str, config: RunConfig = RunConfig(),
        capacities_kb: Sequence[int] = DEFAULT_CAPACITIES_KB) -> List[SensitivityPoint]:
    """Sweep L2 capacity for one workload (miss-only fast path).

    Uses raw L2-block streams (no L1 filtering) — the L1 filter is
    capacity-independent, so it cancels out of the Base/pMod ratio.
    """
    trace = get_workload(workload).trace(scale=config.scale, seed=config.seed)
    blocks = trace.block_addresses(L2_BLOCK_BYTES)
    points = []
    for capacity_kb in capacities_kb:
        n_sets = capacity_kb * 1024 // (L2_BLOCK_BYTES * L2_ASSOC)
        if n_sets & (n_sets - 1):
            raise ValueError(f"capacity {capacity_kb} KB gives a non-power-"
                             f"of-two set count {n_sets}")
        base = simulate_misses(TraditionalIndexing(n_sets), blocks, L2_ASSOC,
                               per_set_counters=False)
        pmod = simulate_misses(PrimeModuloIndexing(n_sets), blocks, L2_ASSOC,
                               per_set_counters=False)
        points.append(SensitivityPoint(workload, capacity_kb, base.misses,
                                       pmod.misses))
    return points


def render(points: List[SensitivityPoint]) -> str:
    workload = points[0].workload if points else "?"
    return format_table(
        ["capacity (KB)", "Base misses", "pMod misses", "pMod/Base"],
        [
            [p.capacity_kb, p.base_misses, p.pmod_misses,
             f"{p.miss_ratio:.3f}"]
            for p in points
        ],
        title=f"L2 capacity sensitivity — {workload} (4-way, 64 B lines)",
    )


def _build(ctx: ExperimentContext) -> Dict:
    points = run(
        ctx.param("workload", "tree"), ctx.config,
        capacities_kb=tuple(ctx.param("capacities_kb",
                                      DEFAULT_CAPACITIES_KB)),
    )
    return {"points": [asdict(p) for p in points]}


def _render_artifact(artifact: Mapping) -> str:
    return render([SensitivityPoint(**p) for p in artifact["data"]["points"]])


register(ExperimentSpec(
    name="sensitivity",
    title="Extension: L2 capacity sensitivity of the pMod gap",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.add_argument("--workload", default="tree")
    args = parser.parse_args()
    ctx = context_from_args(args, workload=args.workload)
    print(render_artifact(run_experiment("sensitivity", ctx)))


if __name__ == "__main__":
    main()

"""Shared-L2 multiprogramming: does prime hashing survive a co-runner?

Timeshares pairs of workloads on one L2 (quantum-interleaved traces,
disjoint address spaces) and compares schemes.  Two questions:

1. Does the conflict victim (e.g. tree) keep its pMod win when a
   streaming co-runner (e.g. swim) pollutes the cache?
2. Does any scheme create *new* cross-program pathologies — a pair
   whose combined misses exceed the sum of its solo runs by more under
   one index than another?
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cpu import simulate_scheme
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.reporting import format_table
from repro.trace.multiprogram import interleave_traces
from repro.workloads import get_workload

DEFAULT_PAIRS = (("tree", "swim"), ("mcf", "lu"), ("bt", "gap"))
DEFAULT_SCHEMES = ("base", "pmod", "pdisp", "skw+pdisp")


@dataclass(frozen=True)
class SharedCacheResult:
    """Miss counts for one pair under one scheme."""

    pair: Tuple[str, str]
    scheme: str
    combined_misses: int
    solo_misses_sum: int

    @property
    def interference_factor(self) -> float:
        """Combined misses over the sum of solo misses (1.0 = none)."""
        if self.solo_misses_sum == 0:
            return 1.0
        return self.combined_misses / self.solo_misses_sum


def run(pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
        config: RunConfig = RunConfig(),
        schemes: Sequence[str] = DEFAULT_SCHEMES,
        quantum: int = 2048) -> List[SharedCacheResult]:
    results = []
    solo_cache: Dict[Tuple[str, str], int] = {}
    for first_name, second_name in pairs:
        first = get_workload(first_name).trace(scale=config.scale,
                                               seed=config.seed)
        second = get_workload(second_name).trace(scale=config.scale,
                                                 seed=config.seed + 1)
        combined = interleave_traces(first, second, quantum=quantum)
        for scheme in schemes:
            for name, trace in ((first_name, first), (second_name, second)):
                key = (name, scheme)
                if key not in solo_cache:
                    solo_cache[key] = simulate_scheme(
                        trace, scheme,
                        skew_replacement=config.skew_replacement,
                    ).l2_misses
            combined_misses = simulate_scheme(
                combined, scheme, skew_replacement=config.skew_replacement
            ).l2_misses
            results.append(SharedCacheResult(
                pair=(first_name, second_name),
                scheme=scheme,
                combined_misses=combined_misses,
                solo_misses_sum=(solo_cache[(first_name, scheme)]
                                 + solo_cache[(second_name, scheme)]),
            ))
    return results


def render(results: List[SharedCacheResult]) -> str:
    return format_table(
        ["pair", "scheme", "combined misses", "solo sum", "interference"],
        [
            ["+".join(r.pair), r.scheme, r.combined_misses,
             r.solo_misses_sum, f"{r.interference_factor:.3f}"]
            for r in results
        ],
        title="Shared-L2 multiprogramming: misses vs solo runs",
    )


def _build(ctx: ExperimentContext) -> Dict:
    pairs = tuple(tuple(p) for p in ctx.param("pairs", DEFAULT_PAIRS))
    results = run(
        pairs=pairs,
        config=ctx.config,
        schemes=tuple(ctx.param("schemes", DEFAULT_SCHEMES)),
        quantum=int(ctx.param("quantum", 2048)),
    )
    return {"results": [asdict(r) for r in results]}


def _render_artifact(artifact: Mapping) -> str:
    results = [
        SharedCacheResult(**{**r, "pair": tuple(r["pair"])})
        for r in artifact["data"]["results"]
    ]
    return render(results)


register(ExperimentSpec(
    name="shared_cache",
    title="Extension: shared-L2 multiprogramming interference",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("shared_cache", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Does prime indexing still pay at the last-level cache of a modern
three-level hierarchy?

The paper targets a 512 KB L2 behind a 16 KB L1 (2004-era).  A modern
stack inserts a private mid-level cache, which filters short-range
reuse before the LLC sees it.  This experiment builds
L1 (16 KB) → L2 (256 KB, traditional) → L3 (2 MB) and rehashes only the
L3: conflict crowding is a *mapping* property of the miss stream, so
the aligned/page-front patterns that crowd a 2048-set L2 crowd an
8192-set L3 the same way — prime indexing keeps its win one level
down.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

from repro.cache import SetAssociativeCache
from repro.cache.multilevel import MultiLevelHierarchy
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import make_indexing
from repro.reporting import format_table
from repro.workloads import get_workload

#: Three-level geometry: (KB, ways, line bytes).
L1_GEOMETRY = (16, 2, 32)
L2_GEOMETRY = (256, 8, 64)
L3_GEOMETRY = (2048, 16, 64)


def build_three_level(l3_indexing_key: str) -> MultiLevelHierarchy:
    """L1/L2 traditional, L3 indexed by ``l3_indexing_key``."""
    levels = []
    for (kb, ways, line), key in (
        (L1_GEOMETRY, "traditional"),
        (L2_GEOMETRY, "traditional"),
        (L3_GEOMETRY, l3_indexing_key),
    ):
        n_sets = kb * 1024 // (line * ways)
        cache = SetAssociativeCache(n_sets, ways, make_indexing(key, n_sets),
                                    name=f"{kb}KB/{key}")
        levels.append((cache, line))
    return MultiLevelHierarchy(levels)


@dataclass(frozen=True)
class L3Result:
    """LLC miss counts for one workload and L3 indexing."""

    workload: str
    l3_indexing: str
    l3_misses: int
    l3_accesses: int


def run(workloads: Sequence[str] = ("tree", "mcf", "lu"),
        config: RunConfig = RunConfig(),
        indexings: Sequence[str] = ("traditional", "pmod", "pdisp")) -> List[L3Result]:
    results = []
    for workload in workloads:
        trace = get_workload(workload).trace(scale=config.scale,
                                             seed=config.seed)
        for key in indexings:
            hierarchy = build_three_level(key)
            for address, is_write in zip(trace.addresses, trace.is_write):
                hierarchy.access(int(address), bool(is_write))
            l3 = hierarchy.caches[2]
            results.append(L3Result(workload, key, l3.stats.misses,
                                    l3.stats.accesses))
    return results


def render(results: List[L3Result]) -> str:
    base = {
        r.workload: r.l3_misses for r in results
        if r.l3_indexing == "traditional"
    }
    return format_table(
        ["workload", "L3 indexing", "L3 accesses", "L3 misses",
         "vs traditional"],
        [
            [r.workload, r.l3_indexing, r.l3_accesses, r.l3_misses,
             f"{r.l3_misses / max(1, base[r.workload]):.3f}"]
            for r in results
        ],
        title="Last-level-cache indexing in a 3-level hierarchy "
              "(16KB/256KB/2MB)",
    )


def _build(ctx: ExperimentContext) -> Dict:
    results = run(
        workloads=tuple(ctx.param("workloads", ("tree", "mcf", "lu"))),
        config=ctx.config,
        indexings=tuple(ctx.param("indexings",
                                  ("traditional", "pmod", "pdisp"))),
    )
    return {"results": [asdict(r) for r in results]}


def _render_artifact(artifact: Mapping) -> str:
    return render([L3Result(**r) for r in artifact["data"]["results"]])


register(ExperimentSpec(
    name="l3_hashing",
    title="Extension: prime indexing at the LLC of a 3-level hierarchy",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("l3_hashing", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

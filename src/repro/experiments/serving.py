"""Serving: tail latency per hashing scheme under skewed open-loop load.

Extension experiment closing the loop from the paper's *balance*
argument (Eq. 1) to the metric a serving system actually ships: tail
latency.  For every shard-selection scheme (traditional power-of-two
modulo, XOR, pMod, pDisp) the same bursty-zipfian request stream is
driven open-loop through the :class:`~repro.serve.Frontend` — per-shard
batching, token-bucket admission, bounded retries — over a
:class:`~repro.store.ShardedStore`, and the artifact records
p50/p95/p99 latency, reject/timeout rates, mean batch size and the
store's observed balance per scheme.

Expected shape: schemes that keep balance near 1.0 (pMod, pDisp) keep
shard queues even, so their p99 stays close to their p50; a collapsed
selector concentrates arrivals on a few shard queues and pays at the
tail first — the birthday-paradox effect of skewed popularity meeting
bad routing, visible only because arrivals are open-loop and bursty.

``--param stall_shard=N`` additionally stalls one shard through a
:class:`~repro.serve.FaultInjector`, demonstrating graceful degradation
(explicit timeouts/rejects, bounded queue) inside the artifact's
``checks`` block.

With ``--cache-dir`` set, each scheme's load report is
content-addressed through the engine's result cache and reused across
runs.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Dict, List, Mapping, Optional

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationKey,
    register,
    render_artifact,
    run_experiment,
)
from repro.obs import enable_observability, get_collector
from repro.reporting import serve_latency_table, serve_tail_chart
from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultInjector,
    FaultPolicy,
    Frontend,
    run_open_loop,
)
from repro.store import ShardedStore, make_traffic

#: Schemes compared, in the paper's figure order.
DEFAULT_SCHEMES = ("traditional", "xor", "pmod", "pdisp")

#: Trace-sampling rate for the attribution run: one request in this
#: many carries a full stage timeline when tracing is enabled.
SPAN_EVERY = 8

#: Minimum fraction of measured request wall time the per-stage
#: decomposition must explain for a scheme's attribution to count.
MIN_STAGE_COVERAGE = 0.9


def _serve_fingerprint(params: Mapping) -> str:
    """Stable digest of every serving knob, for content addressing."""
    payload = json.dumps(dict(params), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def measure(scheme: str, n_requests: int, pattern: str = "zipfian",
            rate_rps: float = 12000.0, arrival: str = "bursty",
            admit_rate: Optional[float] = 8000.0, burst: int = 128,
            max_queue_depth: int = 512, max_batch_size: int = 32,
            max_wait_s: float = 0.001, timeout_s: float = 0.05,
            max_retries: int = 1, n_shards: int = 32,
            shard_capacity: int = 256, seed: int = 0,
            stall_shard: Optional[int] = None,
            stall_s: float = 0.25) -> Dict:
    """Drive one scheme's frontend open-loop; returns the cell payload.

    The payload is the :class:`~repro.serve.LoadReport` dict plus the
    backing store's balance/concentration telemetry and the fault
    counters when a shard stall was injected.
    """
    telemetry = {}

    def build() -> Frontend:
        store = ShardedStore(n_shards=n_shards, scheme=scheme,
                             shard_capacity=shard_capacity)
        telemetry["store"] = store
        injector = None
        if stall_shard is not None:
            injector = FaultInjector(stall_s=stall_s, seed=seed)
            injector.stall(stall_shard % store.n_shards)
        return Frontend(
            store,
            batch=BatchConfig(max_batch_size=max_batch_size,
                              max_wait_s=max_wait_s),
            admission=AdmissionConfig(rate=admit_rate, burst=burst,
                                      max_queue_depth=max_queue_depth),
            policy=FaultPolicy(timeout_s=timeout_s,
                               max_retries=max_retries),
            injector=injector,
            span_every=SPAN_EVERY,
        )

    requests = make_traffic(pattern, n_requests, seed=seed)
    report = run_open_loop(build, requests, rate_rps=rate_rps,
                           arrival=arrival, seed=seed)
    store = telemetry["store"]
    store_telemetry = store.telemetry()
    payload = report.as_dict()
    payload["scheme"] = scheme
    payload["balance"] = store_telemetry.balance
    payload["concentration"] = store_telemetry.concentration
    payload["top_keys"] = store_telemetry.top_keys
    payload["stalled_shard"] = (stall_shard % store.n_shards
                                if stall_shard is not None else None)
    collector = get_collector()
    if collector.enabled:
        # Per-scheme critical-path decomposition over this run's
        # sampled traces (the collector is process-global; the scheme
        # label keeps each cell's traces separable).
        payload["attribution"] = collector.analyze(scheme=scheme)
    return payload


def degradation_checks(cells: Mapping[str, Mapping],
                       max_queue_depth: int,
                       stalled: bool) -> Dict[str, bool]:
    """The serving contract, asserted on every scheme's payload:
    every request accounted for, never a silent drop, the in-flight
    count bounded by the admission cap — and, under an injected stall,
    explicit timeouts instead of a hang."""
    checks: Dict[str, bool] = {}
    for scheme, cell in cells.items():
        statuses = cell["statuses"]
        accounted = sum(statuses.values()) == cell["n_requests"]
        checks[f"{scheme}_all_accounted"] = bool(accounted)
        checks[f"{scheme}_no_silent_drops"] = statuses.get("dropped", 0) == 0
        checks[f"{scheme}_queue_bounded"] = bool(
            cell["peak_queue_depth"] <= max_queue_depth)
        if stalled:
            checks[f"{scheme}_stall_surfaces_explicitly"] = bool(
                statuses.get("timeout", 0) + statuses.get("rejected", 0) > 0)
        attribution = cell.get("attribution")
        if attribution and attribution.get("n_traces"):
            # The tracing contract: sampled stage timelines must
            # explain at least MIN_STAGE_COVERAGE of the measured
            # request wall time, or the decomposition is lying.
            checks[f"{scheme}_stage_coverage"] = bool(
                attribution["coverage"] >= MIN_STAGE_COVERAGE)
    return checks


def render(data: Mapping) -> str:
    """Latency table + p99 chart + the contract-check verdict."""
    rows = list(data["schemes"].values())
    stall = data.get("stall_shard")
    suffix = f", shard {stall} stalled" if stall is not None else ""
    sections = [
        serve_latency_table(
            rows,
            title=(f"Serving — {data['pattern']} keys, {data['arrival']} "
                   f"arrivals at {data['rate_rps']:,.0f} req/s offered "
                   f"({data['n_requests']} requests, {data['n_shards']} "
                   f"shards{suffix})")),
        serve_tail_chart(rows, title="p99 latency (ms) per scheme"),
    ]
    attributed = [(scheme, cell["attribution"])
                  for scheme, cell in data["schemes"].items()
                  if cell.get("attribution")
                  and cell["attribution"].get("n_traces")]
    if attributed:
        lines = ["Per-stage latency attribution (sampled traces):"]
        for scheme, ana in attributed:
            stages = ", ".join(
                f"{name} {stage['share']:.0%}"
                for name, stage in list(ana["stages"].items())[:5])
            p99 = ana["percentiles"]["p99"]
            lines.append(
                f"  {scheme}: {ana['n_traces']} traces, coverage "
                f"{ana['coverage']:.0%}; p99 trace {p99['trace_id']} "
                f"({p99['wall_s'] * 1e3:.2f} ms) — {stages}")
        sections.append("\n".join(lines))
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        sections.append(
            f"Serving contract (accounting, bounded queue, explicit "
            f"shedding): {verdict} ({sum(checks.values())}/{len(checks)} "
            f"checks hold)")
    return "\n\n".join(sections)


def _build(ctx: ExperimentContext) -> Dict:
    n_requests = max(1, int(int(ctx.param("requests", 2500))
                            * ctx.config.scale))
    stall_param = ctx.param("stall_shard", None)
    params = {
        "n_requests": n_requests,
        "pattern": str(ctx.param("pattern", "zipfian")),
        "rate_rps": float(ctx.param("rate_rps", 12000.0)),
        "arrival": str(ctx.param("arrival", "bursty")),
        "admit_rate": (float(ctx.param("admit_rate", 8000.0))
                       if ctx.param("admit_rate", 8000.0) is not None
                       else None),
        "burst": int(ctx.param("burst", 128)),
        "max_queue_depth": int(ctx.param("max_queue_depth", 512)),
        "max_batch_size": int(ctx.param("max_batch_size", 32)),
        "max_wait_s": float(ctx.param("max_wait_s", 0.001)),
        "timeout_s": float(ctx.param("timeout_s", 0.05)),
        "max_retries": int(ctx.param("max_retries", 1)),
        "n_shards": int(ctx.param("n_shards", 32)),
        "shard_capacity": int(ctx.param("shard_capacity", 256)),
        "seed": ctx.config.seed,
        "stall_shard": (int(stall_param)
                        if stall_param is not None else None),
        "stall_s": float(ctx.param("stall_s", 0.25)),
    }
    schemes = list(ctx.param("schemes", DEFAULT_SCHEMES))
    cache = ctx.engine.cache
    fingerprint = _serve_fingerprint(params)

    def cell_key(scheme: str) -> SimulationKey:
        return SimulationKey(
            workload=f"serve-{params['pattern']}",
            scheme=scheme,
            scale=ctx.config.scale,
            seed=ctx.config.seed,
            skew_replacement=ctx.config.skew_replacement,
            machine=fingerprint,
        )

    cells: Dict[str, Dict] = {}
    for scheme in schemes:
        payload: Optional[Dict] = None
        if cache is not None:
            payload = cache.get_payload(cell_key(scheme))
        if payload is None:
            kwargs = dict(params)
            kwargs.pop("pattern")
            payload = measure(scheme, kwargs.pop("n_requests"),
                              pattern=params["pattern"], **kwargs)
            if cache is not None:
                cache.put_payload(cell_key(scheme), payload)
        cells[scheme] = payload
    return {
        "n_requests": n_requests,
        "pattern": params["pattern"],
        "arrival": params["arrival"],
        "rate_rps": params["rate_rps"],
        "admit_rate": params["admit_rate"],
        "max_queue_depth": params["max_queue_depth"],
        "n_shards": params["n_shards"],
        "stall_shard": params["stall_shard"],
        "schemes": cells,
        "checks": degradation_checks(cells, params["max_queue_depth"],
                                     stalled=params["stall_shard"]
                                     is not None),
    }


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="serving",
    title="Serving: tail latency per hashing scheme under skewed load "
          "(extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--trace", action="store_true",
                        help="enable request tracing: sample stage "
                             "timelines and publish the per-scheme "
                             "critical-path decomposition")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every serving contract "
                             "check holds (the make trace-check gate)")
    args = parser.parse_args()
    if args.trace:
        enable_observability()
    artifact = run_experiment("serving", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if args.trace and not any(name.endswith("_stage_coverage")
                                  for name in checks):
            failing.append("stage_coverage_attribution_missing")
        if failing:
            print(f"serving-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("serving-check: ok")


if __name__ == "__main__":
    main()

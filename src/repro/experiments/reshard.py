"""Online resharding: the prime ladder under live traffic.

Extension experiment for the epoch-versioned routing layer: each
shard-selection scheme starts serving hot-key Zipfian traffic, then
grows one rung up its ladder **while serving** — pMod moves prime to
prime (61 → 67, via :func:`repro.mathutil.next_prime`), the
power-of-two schemes double (64 → 128).  Migration runs through
:class:`~repro.store.Migrator` in bounded chunks interleaved with the
request stream, so the store is dual-epoch for most of the replay.

The artifact's ``checks`` block asserts the reshard contract:

* **zero key loss** — every key an exact expected-model says should be
  resident is served with the right value after the commit (puts track
  their eviction returns, deletes retire model entries);
* **bounded in-flight moves** — no migration chunk ever exceeded the
  configured budget;
* **Figure 5 ordering preserved** — on a strided probe stream routed
  through the *live post-reshard* table, pMod and pDisp still beat
  traditional modulo on balance (Eq. 1), i.e. growing the fleet did
  not surrender the paper's prime-indexing advantage.

With ``--cache-dir`` set, each scheme's measurement is
content-addressed and reused across runs; ``--check`` exits nonzero
unless every contract check holds (the ``make reshard-check`` gate).
"""

from __future__ import annotations

import hashlib
import json
import sys
from time import perf_counter
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    SimulationKey,
    register,
    render_artifact,
    run_experiment,
)
from repro.hashing import balance_from_counts
from repro.store import (
    DEFAULT_MOVE_BUDGET,
    Migrator,
    RoutingTable,
    ShardedStore,
    make_traffic,
    request_keys,
)
from repro.store.selector import canonical_key

#: Schemes resharded, in the paper's figure order.
DEFAULT_SCHEMES = ("traditional", "xor", "pmod", "pdisp")

#: Starting shard count per scheme: pMod on the prime rung below 64,
#: everything else on 64 itself; ``RoutingTable.grown`` then climbs one
#: rung (61 -> 67 / 64 -> 128).
def start_shards(scheme: str) -> int:
    return 61 if scheme == "pmod" else 64


def _fingerprint(params: Mapping) -> str:
    """Stable digest of every reshard knob, for content addressing."""
    payload = json.dumps(dict(params), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _apply(store: ShardedStore, model: Dict[int, int], request) -> None:
    """Serve one request, mirroring its effect into the expected model.

    ``put`` returns the key it evicted (if any); retiring that entry
    from the model keeps the model *exact* even if a set overflows, so
    the zero-loss check never blames capacity for a routing bug.
    """
    key = canonical_key(request.key)
    if request.op == "put":
        evicted = store.put(request.key, request.value)
        model[key] = request.value
        if evicted is not None:
            model.pop(evicted, None)
    elif request.op == "delete":
        store.delete(request.key)
        model.pop(key, None)
    else:
        store.get(request.key)


def _strided_balance(table: RoutingTable, n_requests: int,
                     seed: int) -> float:
    """Balance (Eq. 1) of a strided probe stream through ``table``.

    Routing-level on purpose: the store's lifetime histogram mixes the
    Zipfian populate/migrate phases, which would drown the structured
    stream Figures 5/6 are about.
    """
    keys = request_keys(make_traffic("strided", n_requests, seed=seed))
    counts = np.bincount(table.shard_array(keys),
                         minlength=table.n_shards)
    return float(balance_from_counts(counts))


def measure(scheme: str, n_requests: int, shard_capacity: int = 512,
            assoc: int = 16, replacement: str = "lru",
            budget: int = DEFAULT_MOVE_BUDGET, chunk_requests: int = 256,
            seed: int = 0) -> Dict:
    """Reshard one scheme one rung up its ladder under live traffic."""
    from_n = start_shards(scheme)
    store = ShardedStore(shard_capacity=shard_capacity, assoc=assoc,
                         replacement=replacement,
                         routing=RoutingTable.create(scheme, from_n))
    requests = make_traffic("zipfian", n_requests, seed=seed)
    split = len(requests) // 2
    model: Dict[int, int] = {}

    balance_before = _strided_balance(store.routing, n_requests, seed)

    # Phase A — populate: first half of the stream on the old epoch.
    for request in requests[:split]:
        _apply(store, model, request)

    # Phase B — grow one ladder rung and serve the second half while
    # the migrator drains the old epoch in bounded chunks.
    store.begin_reshard(store.routing.grown())
    migrator = Migrator(store, budget=budget)
    live = requests[split:]
    started = perf_counter()
    for lo in range(0, len(live), chunk_requests):
        for request in live[lo:lo + chunk_requests]:
            _apply(store, model, request)
        migrator.step()
    elapsed = perf_counter() - started
    report = migrator.run()  # drain the tail, commit the epoch

    # Phase C — post-commit verification against the expected model.
    missing = mismatched = 0
    for key, value in model.items():
        served = store.get(key)
        if served is None and value is not None:
            missing += 1
        elif served != value:
            mismatched += 1

    return {
        "scheme": scheme,
        "from_n_shards": from_n,
        "to_n_shards": store.n_shards,
        "epoch": store.epoch,
        "migration": report.as_dict(),
        "during_requests": len(live),
        "during_rps": len(live) / elapsed if elapsed > 0 else 0.0,
        "zero_loss": {
            "model_size": len(model),
            "missing": missing,
            "mismatched": mismatched,
        },
        "strided_balance_before": balance_before,
        "strided_balance_after": _strided_balance(store.routing,
                                                  n_requests, seed),
        "telemetry": store.telemetry().as_dict(),
    }


def run(n_requests: int = 20000, shard_capacity: int = 512,
        assoc: int = 16, replacement: str = "lru",
        budget: int = DEFAULT_MOVE_BUDGET, chunk_requests: int = 256,
        seed: int = 0, schemes: List[str] = None) -> Dict[str, Dict]:
    """Full sweep: ``result[scheme] = reshard measurement payload``."""
    return {
        scheme: measure(scheme, n_requests, shard_capacity=shard_capacity,
                        assoc=assoc, replacement=replacement, budget=budget,
                        chunk_requests=chunk_requests, seed=seed)
        for scheme in (schemes or DEFAULT_SCHEMES)
    }


def reshard_checks(cells: Mapping[str, Mapping]) -> Dict[str, bool]:
    """The reshard contract, one boolean per claim."""
    checks: Dict[str, bool] = {}
    for scheme, cell in cells.items():
        loss = cell["zero_loss"]
        migration = cell["migration"]
        checks[f"{scheme}_zero_key_loss"] = (
            loss["missing"] == 0 and loss["mismatched"] == 0)
        checks[f"{scheme}_in_flight_under_budget"] = (
            migration["peak_in_flight"] <= migration["budget"])
        checks[f"{scheme}_no_keys_left_behind"] = (
            migration["left_behind"] == 0)
        checks[f"{scheme}_epoch_advanced"] = cell["epoch"] >= 1
    base = cells.get("traditional")
    if base is not None:
        for scheme in ("pmod", "pdisp"):
            if scheme in cells:
                checks[f"{scheme}_beats_traditional_after_reshard"] = (
                    cells[scheme]["strided_balance_after"]
                    < base["strided_balance_after"])
    return checks


def render(data: Mapping) -> str:
    """One row per scheme plus the contract verdict."""
    header = (f"{'scheme':<12} {'shards':>9} {'epoch':>5} {'moved':>6} "
              f"{'chunks':>6} {'peak/budget':>11} {'left':>4} "
              f"{'during rps':>10} {'balance after':>13}")
    lines = [
        f"Online reshard — one ladder rung up under live zipfian traffic "
        f"({data['n_requests']} requests, budget {data['budget']})",
        header,
        "-" * len(header),
    ]
    for scheme, cell in data["cells"].items():
        migration = cell["migration"]
        lines.append(
            f"{scheme:<12} "
            f"{cell['from_n_shards']:>4}->{cell['to_n_shards']:<4} "
            f"{cell['epoch']:>5} {migration['moved']:>6} "
            f"{migration['chunks']:>6} "
            f"{migration['peak_in_flight']:>5}/{migration['budget']:<5} "
            f"{migration['left_behind']:>4} "
            f"{cell['during_rps']:>10.0f} "
            f"{cell['strided_balance_after']:>13.3f}")
    checks = data.get("checks", {})
    if checks:
        verdict = "ok" if all(checks.values()) else "VIOLATED"
        lines.append("")
        lines.append(
            f"Reshard contract: {verdict} "
            f"({sum(checks.values())}/{len(checks)} checks hold — zero "
            f"loss, bounded moves, Figure 5 ordering preserved)")
    return "\n".join(lines)


def _build(ctx: ExperimentContext) -> Dict:
    n_requests = max(1, int(int(ctx.param("requests", 20000))
                            * ctx.config.scale))
    params = {
        "n_requests": n_requests,
        "shard_capacity": int(ctx.param("shard_capacity", 512)),
        "assoc": int(ctx.param("assoc", 16)),
        "replacement": str(ctx.param("replacement", "lru")),
        "budget": int(ctx.param("budget", DEFAULT_MOVE_BUDGET)),
        "chunk_requests": int(ctx.param("chunk_requests", 256)),
        "seed": ctx.config.seed,
    }
    schemes = list(ctx.param("schemes", DEFAULT_SCHEMES))
    cache = ctx.engine.cache
    fingerprint = _fingerprint(params)

    def cell_key(scheme: str) -> SimulationKey:
        return SimulationKey(
            workload="store-reshard",
            scheme=scheme,
            scale=ctx.config.scale,
            seed=ctx.config.seed,
            skew_replacement=ctx.config.skew_replacement,
            machine=fingerprint,
        )

    cells: Dict[str, Dict] = {}
    for scheme in schemes:
        payload: Optional[Dict] = None
        if cache is not None:
            payload = cache.get_payload(cell_key(scheme))
        if payload is None:
            kwargs = dict(params)
            kwargs.pop("n_requests")
            payload = measure(scheme, n_requests, **kwargs)
            if cache is not None:
                cache.put_payload(cell_key(scheme), payload)
        cells[scheme] = payload
    return {
        "n_requests": n_requests,
        "shard_capacity": params["shard_capacity"],
        "assoc": params["assoc"],
        "replacement": params["replacement"],
        "budget": params["budget"],
        "chunk_requests": params["chunk_requests"],
        "cells": cells,
        "checks": reshard_checks(cells),
    }


def _render_artifact(artifact: Mapping) -> str:
    return render(artifact["data"])


register(ExperimentSpec(
    name="reshard",
    title="Online reshard: prime-ladder resize under live traffic "
          "(extension)",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    parser = standard_argparser(__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every reshard contract "
                             "check holds (the make reshard-check gate)")
    args = parser.parse_args()
    artifact = run_experiment("reshard", context_from_args(args))
    print(render_artifact(artifact))
    if args.check:
        checks = artifact["data"]["checks"]
        failing = [name for name, ok in checks.items() if not ok]
        if failing:
            print(f"reshard-check: FAILED ({', '.join(failing)})",
                  file=sys.stderr)
            raise SystemExit(1)
        print("reshard-check: ok")


if __name__ == "__main__":
    main()

"""Figures 5 and 6: balance and concentration vs stride (1..2047).

Reproduces the synthetic strided-access sweep for the four single-hash
functions.  The paper's reference observations (Section 5.1):

* Traditional — bad balance and concentration on even strides, ideal on
  odd strides.
* pMod — ideal everywhere except stride = n_set (2039).
* XOR — non-ideal balance clustered at small strides; never ideal
  concentration for non-trivial strides.
* pDisp — non-ideal balance concentrated mid-range; concentration close
  to ideal thanks to partial sequence invariance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.hashing import (
    IndexingFunction,
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
    balance,
    concentration,
    strided_addresses,
)
from repro.reporting import sparkline_series


def default_hashes(n_sets_physical: int = 2048) -> Dict[str, IndexingFunction]:
    """The four functions of Figures 5-6, in paper order."""
    return {
        "Traditional": TraditionalIndexing(n_sets_physical),
        "pMod": PrimeModuloIndexing(n_sets_physical),
        "pDisp": PrimeDisplacementIndexing(n_sets_physical),
        "XOR": XorIndexing(n_sets_physical),
    }


@dataclass
class StrideSweep:
    """Balance and concentration series for one hashing function."""

    name: str
    strides: np.ndarray
    balance: np.ndarray
    concentration: np.ndarray

    def worst_balance_strides(self, top: int = 5) -> List[int]:
        order = np.argsort(self.balance)[::-1]
        return [int(self.strides[i]) for i in order[:top]]

    def ideal_balance_fraction(self, tolerance: float = 1.1) -> float:
        return float((self.balance <= tolerance).mean())

    def ideal_concentration_fraction(self, tolerance: float = 1.0) -> float:
        return float((self.concentration <= tolerance).mean())


def sweep(indexing: IndexingFunction, strides: np.ndarray,
          n_addresses: int) -> StrideSweep:
    """Measure balance and concentration over the given strides."""
    balances = np.empty(len(strides))
    concentrations = np.empty(len(strides))
    for i, s in enumerate(strides):
        addrs = strided_addresses(int(s), n_addresses)
        balances[i] = balance(indexing, addrs)
        concentrations[i] = concentration(indexing, addrs)
    return StrideSweep(indexing.name, np.asarray(strides), balances,
                       concentrations)


def run(n_sets_physical: int = 2048, max_stride: int = 2047,
        n_addresses: int = 8192, stride_step: int = 1) -> Dict[str, StrideSweep]:
    """Run the full Figure 5/6 sweep for all four hashing functions."""
    strides = np.arange(1, max_stride + 1, stride_step)
    return {
        name: sweep(h, strides, n_addresses)
        for name, h in default_hashes(n_sets_physical).items()
    }


def render(results: Dict[str, StrideSweep], balance_cap: float = 10.0) -> str:
    """Terminal plots in the paper's layout (balance capped at 10)."""
    sections = []
    for name, s in results.items():
        sections.append(sparkline_series(
            s.strides.tolist(), s.balance.tolist(),
            title=f"Figure 5: balance vs stride — {name} "
                  f"(ideal on {s.ideal_balance_fraction():.0%} of strides)",
            y_cap=balance_cap,
        ))
    for name, s in results.items():
        sections.append(sparkline_series(
            s.strides.tolist(), s.concentration.tolist(),
            title=f"Figure 6: concentration vs stride — {name} "
                  f"(ideal on {s.ideal_concentration_fraction():.0%} of strides)",
            y_cap=float(np.percentile(s.concentration, 99)) or 1.0,
        ))
    return "\n\n".join(sections)


def _build(ctx: ExperimentContext) -> Dict:
    results = run(
        n_sets_physical=int(ctx.param("n_sets_physical", 2048)),
        max_stride=int(ctx.param("max_stride", 2047)),
        n_addresses=int(ctx.param("n_addresses", 8192)),
        stride_step=int(ctx.param("stride_step", 1)),
    )
    return {
        "sweeps": {
            name: {
                "strides": s.strides.tolist(),
                "balance": s.balance.tolist(),
                "concentration": s.concentration.tolist(),
            }
            for name, s in results.items()
        }
    }


def _render_artifact(artifact: Mapping) -> str:
    results = {
        name: StrideSweep(
            name,
            np.asarray(payload["strides"]),
            np.asarray(payload["balance"]),
            np.asarray(payload["concentration"]),
        )
        for name, payload in artifact["data"]["sweeps"].items()
    }
    return render(results)


register(ExperimentSpec(
    name="stride_sweep",
    title="Figures 5-6: balance and concentration vs stride",
    build=_build,
    render=_render_artifact,
    uses_simulation=False,
))


def main() -> None:
    from repro.experiments.common import context_from_args, standard_argparser

    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("stride_sweep", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Section 4's application classification, as a runnable experiment.

The paper: "Let f_1 ... f_nset represent the frequency of accesses to
the sets ... An application is considered to have a non-uniform cache
access behavior if the ratio stdev(f_i)/mean(f_i) is greater than 0.5.
... we found that 30% of them (7 benchmarks) are non-uniform: bt, cg,
ft, irr, mcf, sp, and tree."

This experiment drives every workload through the Base hierarchy,
measures that ratio on the L2 set-access histogram, and reports the
classification next to the paper's.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional

from repro.cpu import build_hierarchy
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    TraceMaterializer,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import uniformity
from repro.reporting import format_table
from repro.workloads import all_workload_names, get_workload


@dataclass(frozen=True)
class UniformityRow:
    """Measured classification for one application."""

    app: str
    ratio: float
    non_uniform: bool
    paper_non_uniform: bool

    @property
    def agrees_with_paper(self) -> bool:
        return self.non_uniform == self.paper_non_uniform


def run(config: RunConfig = RunConfig(),
        traces: Optional[TraceMaterializer] = None) -> List[UniformityRow]:
    """Classify all 23 applications under Base indexing.

    ``traces`` shares an engine's materialized workload traces instead
    of regenerating them here.
    """
    rows = []
    for name in all_workload_names():
        workload = get_workload(name)
        if traces is not None:
            trace = traces.get(name)
        else:
            trace = workload.trace(scale=config.scale, seed=config.seed)
        hierarchy = build_hierarchy("base")
        for address, is_write in zip(trace.addresses, trace.is_write):
            hierarchy.access(int(address), bool(is_write))
        report = uniformity(hierarchy.l2.stats.set_accesses)
        rows.append(UniformityRow(
            app=name,
            ratio=report.ratio,
            non_uniform=report.non_uniform,
            paper_non_uniform=workload.expected_non_uniform,
        ))
    return rows


def render(rows: List[UniformityRow]) -> str:
    table = format_table(
        ["app", "stdev/mean", "measured", "paper", "agree?"],
        [
            [
                r.app,
                f"{r.ratio:.3f}",
                "non-uniform" if r.non_uniform else "uniform",
                "non-uniform" if r.paper_non_uniform else "uniform",
                "yes" if r.agrees_with_paper else "NO",
            ]
            for r in sorted(rows, key=lambda r: -r.ratio)
        ],
        title="Section 4 classification: L2 set-access uniformity "
              "(threshold 0.5)",
    )
    n_non = sum(r.non_uniform for r in rows)
    agreement = sum(r.agrees_with_paper for r in rows)
    return (f"{table}\n{n_non}/{len(rows)} applications non-uniform "
            f"(paper: 7/23); {agreement}/{len(rows)} agree with the paper.")


def _build(ctx: ExperimentContext) -> Dict:
    rows = run(ctx.config, traces=ctx.engine.traces)
    return {"rows": [asdict(row) for row in rows]}


def _render_artifact(artifact: Mapping) -> str:
    return render([UniformityRow(**row) for row in artifact["data"]["rows"]])


register(ExperimentSpec(
    name="uniformity_table",
    title="Section 4: set-access uniformity classification",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("uniformity_table", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

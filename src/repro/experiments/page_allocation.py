"""Which conflict patterns survive the OS page allocator?

The paper's L2 is physically indexed, so its conflict misses are a
property of *physical* addresses.  This experiment translates workload
traces through three page-allocation policies and re-measures the
Base-vs-pMod miss gap:

* tree's crowding is **offset-driven** — the crowded index bits sit in
  the within-page block offset — so essentially the full gap survives
  *every* policy, including uniformly random allocation;
* bt's column conflicts are **pitch-driven** — they exist only when
  physical pages preserve the virtual layout's page-color bits.  Page
  coloring keeps them (and pMod's win with them); first-touch
  sequential allocation dissolves them *for Base too* (the walk
  first-touches the aliasing pages consecutively, so they land on
  consecutive — differently indexed — physical pages), as does random
  allocation.

The asymmetry is the experiment's point: the paper's headline wins do
not all rest on the same assumption about the OS, and the identity
mapping the raw traces use corresponds to the color-preserving case.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

from repro.cache import simulate_misses
from repro.engine import (
    ExperimentContext,
    ExperimentSpec,
    register,
    render_artifact,
    run_experiment,
)
from repro.experiments.common import (
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.hashing import PrimeModuloIndexing, TraditionalIndexing
from repro.reporting import format_table
from repro.vm import (
    ColoringAllocator,
    RandomAllocator,
    SequentialAllocator,
    VirtualMemory,
)
from repro.workloads import get_workload

L2_SETS = 2048
L2_ASSOC = 4
L2_BLOCK = 64
#: Physical memory modeled: 1M pages = 4 GB.
PHYSICAL_PAGES = 1 << 20
#: Page-color bits for the coloring policy: page-number bits that reach
#: the 2048-set L2 index (11 index bits - 6 in-page block bits = 5).
L2_COLOR_BITS = 5

POLICIES = ("sequential", "random", "colored")


def make_allocator(policy: str, seed: int):
    if policy == "sequential":
        return SequentialAllocator(PHYSICAL_PAGES)
    if policy == "random":
        return RandomAllocator(PHYSICAL_PAGES, seed=seed)
    if policy == "colored":
        return ColoringAllocator(PHYSICAL_PAGES, color_bits=L2_COLOR_BITS)
    raise KeyError(f"unknown policy {policy!r}; known: {', '.join(POLICIES)}")


@dataclass(frozen=True)
class AllocationResult:
    """Miss gap under one allocation policy for one workload."""

    workload: str
    policy: str
    base_misses: int
    pmod_misses: int

    @property
    def miss_ratio(self) -> float:
        if self.base_misses == 0:
            return 1.0
        return self.pmod_misses / self.base_misses


def run(workloads: Sequence[str] = ("tree", "bt"),
        config: RunConfig = RunConfig(),
        policies: Sequence[str] = POLICIES) -> List[AllocationResult]:
    """Measure the Base/pMod miss gap under each allocation policy."""
    results = []
    for workload in workloads:
        virtual = get_workload(workload).trace(scale=config.scale,
                                               seed=config.seed)
        for policy in policies:
            vm = VirtualMemory(make_allocator(policy, config.seed))
            physical = vm.translate_trace(virtual)
            blocks = physical.block_addresses(L2_BLOCK)
            base = simulate_misses(TraditionalIndexing(L2_SETS), blocks,
                                   L2_ASSOC, per_set_counters=False)
            pmod = simulate_misses(PrimeModuloIndexing(L2_SETS), blocks,
                                   L2_ASSOC, per_set_counters=False)
            results.append(AllocationResult(workload, policy, base.misses,
                                            pmod.misses))
    return results


def render(results: List[AllocationResult]) -> str:
    return format_table(
        ["workload", "allocation", "Base misses", "pMod misses",
         "pMod/Base"],
        [
            [r.workload, r.policy, r.base_misses, r.pmod_misses,
             f"{r.miss_ratio:.3f}"]
            for r in results
        ],
        title="Base vs pMod L2 misses under OS page-allocation policies",
    )


def _build(ctx: ExperimentContext) -> Dict:
    results = run(
        workloads=tuple(ctx.param("workloads", ("tree", "bt"))),
        config=ctx.config,
        policies=tuple(ctx.param("policies", POLICIES)),
    )
    return {"results": [asdict(r) for r in results]}


def _render_artifact(artifact: Mapping) -> str:
    return render([AllocationResult(**r)
                   for r in artifact["data"]["results"]])


register(ExperimentSpec(
    name="page_allocation",
    title="Extension: conflict survival under OS page allocation",
    build=_build,
    render=_render_artifact,
))


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    artifact = run_experiment("page_allocation", context_from_args(args))
    print(render_artifact(artifact))


if __name__ == "__main__":
    main()

"""Terminal rendering helpers for experiment results."""

from repro.reporting.chart import bar_chart, sparkline_series, stacked_bar_chart
from repro.reporting.serve import serve_latency_table, serve_tail_chart
from repro.reporting.store import shard_balance_chart, shard_balance_table
from repro.reporting.table import format_table

__all__ = ["bar_chart", "format_table", "serve_latency_table",
           "serve_tail_chart", "shard_balance_chart", "shard_balance_table",
           "sparkline_series", "stacked_bar_chart"]

"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = None,
    align_first_left: bool = True,
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted
    by the caller so each experiment controls its own precision.
    """
    if not headers:
        raise ValueError("need at least one column")
    text_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_first_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(fmt_row(row) for row in text_rows)
    lines.append(separator)
    return "\n".join(lines)

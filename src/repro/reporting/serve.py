"""Rendering for `repro.serve` load-generation results.

One latency table plus one tail-latency chart per run; consumed by the
``serving`` experiment and ``benchmarks/bench_serve.py``.  Rows are
plain dicts (the :meth:`~repro.serve.loadgen.LoadReport.as_dict`
payloads, one per scheme), so artifacts loaded back from JSON render
identically to fresh runs.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.reporting.chart import bar_chart
from repro.reporting.table import format_table


def _fmt(value, spec: str = "{:.3f}") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return spec.format(value)


def serve_latency_table(rows: Sequence[Mapping], title: str = None) -> str:
    """Per-scheme serving outcome table for one load run.

    Each row needs ``scheme`` plus the :class:`~repro.serve.loadgen.
    LoadReport` payload fields (``latency`` percentiles,
    ``reject_rate``/``timeout_rate``, ``mean_batch_size``,
    ``throughput_rps``) and optionally ``balance`` from the backing
    store's telemetry, tying tail latency back to the paper's Eq. 1.
    """
    with_balance = any(row.get("balance") is not None for row in rows)
    body = []
    for row in rows:
        latency = row.get("latency", {})
        cells = [
            row["scheme"],
            _fmt(latency.get("p50", 0.0) * 1e3, "{:.2f}"),
            _fmt(latency.get("p95", 0.0) * 1e3, "{:.2f}"),
            _fmt(latency.get("p99", 0.0) * 1e3, "{:.2f}"),
            _fmt(row.get("reject_rate", 0.0) * 100, "{:.1f}%"),
            _fmt(row.get("timeout_rate", 0.0) * 100, "{:.1f}%"),
            _fmt(row.get("mean_batch_size"), "{:.2f}"),
            _fmt(row.get("throughput_rps"), "{:,.0f}")
            if row.get("throughput_rps") is not None else "-",
        ]
        if with_balance:
            cells.append(_fmt(row.get("balance"))
                         if row.get("balance") is not None else "-")
        body.append(cells)
    headers = ["scheme", "p50 ms", "p95 ms", "p99 ms", "reject",
               "timeout", "batch", "rsp/s"]
    if with_balance:
        headers.append("balance")
    return format_table(headers, body, title=title)


def serve_tail_chart(rows: Sequence[Mapping], title: str = None) -> str:
    """Bar chart of p99 latency (ms) per scheme — the tail the paper's
    balance argument predicts: collapsed shard routing concentrates
    queueing, and the p99 pays for it first."""
    labels = [str(row["scheme"]) for row in rows]
    values = [float(row.get("latency", {}).get("p99", 0.0)) * 1e3
              for row in rows]
    return bar_chart(labels, values, title=title)

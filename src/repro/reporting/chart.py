"""Plain-text charts: horizontal bars and compact line series.

The paper's figures are bar charts (normalized execution time / miss
counts per application) and stride sweeps (balance / concentration vs
stride); these helpers render both in a terminal.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = None,
    width: int = 50,
    reference: float = None,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart; an optional ``reference`` draws a marker
    (e.g. the Base = 1.0 line of the normalized figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("need at least one bar")
    if width < 10:
        raise ValueError("width too small to draw")
    peak = max(max(values), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = int(round(value / peak * width))
        bar = "#" * filled
        if reference is not None:
            ref_pos = int(round(reference / peak * width))
            if ref_pos >= len(bar):
                bar = bar.ljust(ref_pos) + "|"
        lines.append(
            f"{label.ljust(label_width)} {fmt.format(value).rjust(8)} {bar}"
        )
    return "\n".join(lines)


def stacked_bar_chart(
    labels: Sequence[str],
    segments: Sequence[Tuple[float, float, float]],
    segment_names: Tuple[str, str, str] = ("busy", "other", "memory"),
    title: str = None,
    width: int = 50,
) -> str:
    """Stacked horizontal bars (the Busy/Other/Memory breakdown of the
    paper's execution-time figures), one character class per segment."""
    if len(labels) != len(segments):
        raise ValueError("labels and segments must have equal length")
    glyphs = ("#", "+", ".")
    peak = max(sum(s) for s in segments) or 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{g}={n}" for g, n in zip(glyphs, segment_names))
    lines.append(f"[{legend}]")
    for label, parts in zip(labels, segments):
        bar = ""
        for glyph, part in zip(glyphs, parts):
            bar += glyph * int(round(part / peak * width))
        total = sum(parts)
        lines.append(f"{label.ljust(label_width)} {total:8.2f} {bar}")
    return "\n".join(lines)


def sparkline_series(
    xs: Sequence[int],
    ys: Sequence[float],
    title: str = None,
    height: int = 8,
    width: int = 80,
    y_cap: float = None,
) -> str:
    """Compact line plot for the stride sweeps (Figures 5-6).

    Values are bucketed onto a ``width``-column grid; ``y_cap`` clips
    the vertical axis the way the paper caps balance plots at 10.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    cap = y_cap if y_cap is not None else max(ys)
    cap = cap or 1.0
    clipped = [min(y, cap) for y in ys]
    # Average y per column bucket.
    buckets: List[List[float]] = [[] for _ in range(width)]
    x_min, x_max = min(xs), max(xs)
    span = max(1, x_max - x_min)
    for x, y in zip(xs, clipped):
        col = min(width - 1, (x - x_min) * width // span)
        buckets[col].append(y)
    cols = [sum(b) / len(b) if b else None for b in buckets]
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(cols):
        if value is None:
            continue
        row = min(height - 1, int(value / cap * (height - 1) + 0.5))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{cap:8.2f} ┐")
    for row in grid:
        lines.append("         |" + "".join(row))
    lines.append("         └" + "─" * width)
    lines.append(f"          stride {x_min} .. {x_max}")
    return "\n".join(lines)

"""One-shot markdown report over a complete evaluation.

``full_report`` renders every simulation-backed table and figure from a
:class:`~repro.engine.SimulationEngine` (or any ResultStore-compatible
runner) into a single markdown document — the machine-generated
counterpart of EXPERIMENTS.md:

    python -m repro.reporting.report --scale 0.5 --jobs 4 \
        --cache-dir .repro-cache > report.md
"""

from __future__ import annotations

from typing import List

from repro.experiments import (
    fragmentation,
    machine,
    miss_reduction,
    multi_hash,
    qualitative,
    single_hash,
    summary,
)
from repro.experiments.common import (
    ResultStore,
    RunConfig,
    context_from_args,
    standard_argparser,
)
from repro.workloads import NONUNIFORM_APPS, UNIFORM_APPS


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def full_report(store: ResultStore) -> str:
    """Markdown report of Tables 1-4 and the Figure 7-12 summaries."""
    config = store.config
    sections: List[str] = [
        "# Prime-number cache indexing — evaluation report",
        f"Trace scale {config.scale}, seed {config.seed}, "
        f"skewed replacement `{config.skew_replacement}`.",
        "## Table 1 — fragmentation",
        _code_block(fragmentation.render(fragmentation.run())),
        "## Table 2 — hashing-function properties (measured)",
        _code_block(qualitative.render(qualitative.run())),
        "## Table 3 — machine parameters",
        _code_block(machine.render()),
    ]

    fig7 = single_hash.build_figure(
        "Figure 7 (non-uniform apps)", NONUNIFORM_APPS,
        single_hash.SINGLE_HASH_SCHEMES, store)
    fig8 = single_hash.build_figure(
        "Figure 8 (uniform apps)", UNIFORM_APPS,
        single_hash.SINGLE_HASH_SCHEMES, store)
    fig9 = single_hash.build_figure(
        "Figure 9 (non-uniform apps)", NONUNIFORM_APPS,
        multi_hash.MULTI_HASH_SCHEMES, store)
    fig10 = single_hash.build_figure(
        "Figure 10 (uniform apps)", UNIFORM_APPS,
        multi_hash.MULTI_HASH_SCHEMES, store)
    for figure in (fig7, fig8, fig9, fig10):
        sections.append(f"## {figure.title}")
        sections.append(_code_block(single_hash.render(figure)))

    fig11 = miss_reduction.build_figure(
        "Figure 11 (non-uniform apps)", NONUNIFORM_APPS, store)
    fig12 = miss_reduction.build_figure(
        "Figure 12 (uniform apps)", UNIFORM_APPS, store)
    for figure in (fig11, fig12):
        sections.append(f"## {figure.title}")
        sections.append(_code_block(miss_reduction.render(figure)))

    sections.append("## Table 4 — summary")
    sections.append(_code_block(summary.render(summary.run(config, store))))
    return "\n\n".join(sections) + "\n"


def main() -> None:
    args = standard_argparser(__doc__).parse_args()
    engine = context_from_args(args).engine
    schemes = set(single_hash.SINGLE_HASH_SCHEMES)
    schemes |= set(multi_hash.MULTI_HASH_SCHEMES)
    schemes |= set(miss_reduction.MISS_SCHEMES)
    engine.run_grid((*NONUNIFORM_APPS, *UNIFORM_APPS), sorted(schemes))
    print(full_report(engine))


if __name__ == "__main__":
    main()

"""Rendering for `repro.store` shard-balance results.

One table plus one balance chart per traffic pattern; consumed by the
``store_sharding`` experiment and the store benchmark.  Rows are plain
dicts (the :meth:`~repro.store.driver.ReplayReport.as_dict` /
:meth:`~repro.store.engine.StoreTelemetry.as_dict` payloads), so
artifacts loaded back from JSON render identically to fresh runs.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.reporting.chart import bar_chart
from repro.reporting.table import format_table


def _fmt(value: float, spec: str = "{:.3f}") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return spec.format(value)


def shard_balance_table(rows: Sequence[Mapping], title: str = None) -> str:
    """Table of per-scheme serving metrics for one traffic pattern.

    Each row needs ``scheme`` plus the telemetry fields ``balance``,
    ``concentration``, ``hit_rate``, ``tail_load`` and (optionally)
    ``throughput_rps`` and ``chunk_skew`` (slowest replay chunk /
    mean — the straggler column; shown only when some row carries it,
    so pre-straggler artifacts render unchanged).
    """
    with_skew = any(row.get("chunk_skew") is not None for row in rows)
    body = []
    for row in rows:
        cells = [
            row["scheme"],
            _fmt(row["balance"]),
            _fmt(row["concentration"], "{:.2f}"),
            _fmt(row["hit_rate"]),
            _fmt(row["tail_load"], "{:.2f}"),
            _fmt(row.get("throughput_rps"), "{:,.0f}")
            if row.get("throughput_rps") is not None else "-",
        ]
        if with_skew:
            cells.append(_fmt(row.get("chunk_skew"), "{:.2f}")
                         if row.get("chunk_skew") is not None else "-")
        body.append(cells)
    headers = ["scheme", "balance", "concentration", "hit rate", "tail load",
               "req/s"]
    if with_skew:
        headers.append("chunk skew")
    return format_table(headers, body, title=title)


def shard_balance_chart(rows: Sequence[Mapping], title: str = None,
                        cap: float = 16.0) -> str:
    """Bar chart of balance per scheme (1.0 reference = ideal spread).

    Balance is capped for display the way the paper caps Figure 5 —
    a fully collapsed selector's balance is the shard count and would
    flatten every other bar.
    """
    labels = [str(row["scheme"]) for row in rows]
    values = [min(float(row["balance"]), cap) for row in rows]
    return bar_chart(labels, values, title=title, reference=1.0)

"""The polynomial method of Section 3.1 (Equation 4) and Figures 3-4.

Expresses the block address as ``x + t1·Δ + t2·Δ² + … (mod n_set)``
where the ``t_j`` are successive index-width chunks of the tag.  All
partial products are formed with shifts and adds; any bits that carry
past the index width are *folded* back (a carry out of bit ``k`` is
worth ``2^k ≡ Δ·2^(k-index_bits)`` in the modulo space — the trick the
paper uses to shrink Figure 3a's six addends into Figure 3b's five and
to keep the final subtract&select at two inputs).

The Mersenne special case (Δ = 1, Equation 5) reduces to summing the
chunks, matching Yang & Yang's earlier design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hardware.subtract_select import SubtractSelectUnit
from repro.mathutil import largest_prime_below, log2_exact, ones_positions, split_address


@dataclass
class PolynomialStats:
    """Hardware activity for one polynomial index computation."""

    adds: int = 0
    shifts: int = 0
    folds: int = 0
    addends: int = 0


class PolynomialModUnit:
    """Bit-accurate model of the one-step polynomial prime-modulo hardware."""

    def __init__(
        self,
        n_sets_physical: int,
        address_bits: int = 32,
        block_bytes: int = 64,
        n_sets: int = None,
    ):
        self.n_sets_physical = n_sets_physical
        self.index_bits = log2_exact(n_sets_physical)
        self.offset_bits = log2_exact(block_bytes)
        self.address_bits = address_bits
        self.n_sets = n_sets if n_sets is not None else largest_prime_below(n_sets_physical)
        self.delta = n_sets_physical - self.n_sets
        if self.delta <= 0:
            raise ValueError("n_sets must be below the physical set count")
        self._delta_shifts = ones_positions(self.delta)
        # Folding keeps the running sum below 2^(index_bits + 1), so a
        # two-input selector suffices (Figure 4).
        self.selector = SubtractSelectUnit(self.n_sets, max_input=2 * self.n_sets - 1)
        self.last_stats = PolynomialStats()
        # Precompute Δ^j mod n_set shift/add decompositions for each chunk.
        n_chunks = max(
            0, -(-(self.block_address_bits - self.index_bits) // self.index_bits)
        )
        self._chunk_multipliers: List[List[int]] = []
        power = 1
        for _ in range(n_chunks):
            power = (power * self.delta) % self.n_sets
            self._chunk_multipliers.append(ones_positions(power))

    @property
    def block_address_bits(self) -> int:
        return self.address_bits - self.offset_bits

    def _fold(self, value: int, stats: PolynomialStats) -> int:
        """Fold carries past the index width back into the modulo space.

        2^index_bits ≡ Δ (mod n_set), so the high part re-enters
        multiplied by Δ.  Converges because Δ « 2^index_bits.
        """
        mask = self.n_sets_physical - 1
        while value >= self.n_sets_physical:
            high = value >> self.index_bits
            low = value & mask
            folded = 0
            for shift in self._delta_shifts:
                stats.shifts += 1 if shift else 0
                stats.adds += 1
                folded += high << shift
            value = folded + low
            stats.adds += 1
            stats.folds += 1
        return value

    def _times_constant(self, value: int, shifts: List[int], stats: PolynomialStats) -> int:
        total = 0
        for shift in shifts:
            stats.shifts += 1 if shift else 0
            stats.adds += 1
            total += value << shift
        return total

    def compute(self, block_address: int) -> int:
        """Index of ``block_address`` via Equation 4 + folding + select."""
        if block_address < 0 or block_address >= (1 << self.block_address_bits):
            raise ValueError(
                f"block address {block_address} exceeds "
                f"{self.block_address_bits}-bit datapath"
            )
        stats = PolynomialStats()
        x, chunks = split_address(block_address, self.index_bits, self.block_address_bits)
        total = x
        stats.addends = 1 + len(chunks)
        for t_j, multiplier in zip(chunks, self._chunk_multipliers):
            partial = self._times_constant(t_j, multiplier, stats)
            partial = self._fold(partial, stats)
            total = self._fold(total + partial, stats)
            stats.adds += 1
        self.last_stats = stats
        return self.selector.reduce(total)

    @property
    def is_mersenne_case(self) -> bool:
        """True when Δ = 1 and Equation 4 degenerates to Equation 5."""
        return self.delta == 1

    def explain(self, block_address: int) -> List[str]:
        """Human-readable decomposition of one index computation.

        Returns the Figure 3-style addend list: the x term, each
        ``t_j · Δ^j`` partial product with its shift-add expansion, the
        folded running sums, and the final subtract&select — the same
        steps :meth:`compute` performs, narrated.
        """
        x, chunks = split_address(block_address, self.index_bits,
                                  self.block_address_bits)
        lines = [
            f"block address {block_address:#x} "
            f"(n_set_phys={self.n_sets_physical}, n_set={self.n_sets}, "
            f"Δ={self.delta})",
            f"  x  = {x}",
        ]
        stats = PolynomialStats()
        total = x
        power = 1
        for j, (t_j, multiplier) in enumerate(
            zip(chunks, self._chunk_multipliers), start=1
        ):
            power = (power * self.delta) % self.n_sets
            shifts = " + ".join(f"(t{j} << {s})" for s in multiplier) or "0"
            partial = self._times_constant(t_j, multiplier, stats)
            folded = self._fold(partial, stats)
            note = f" -> folds to {folded}" if folded != partial else ""
            lines.append(
                f"  t{j} = {t_j}: t{j}·Δ^{j} ≡ t{j}·{power} = {shifts} "
                f"= {partial}{note}"
            )
            total = self._fold(total + folded, stats)
            lines.append(f"  running sum (folded) = {total}")
        index = total - (total // self.n_sets) * self.n_sets
        lines.append(
            f"  subtract&select ({self.selector.n_inputs} inputs): "
            f"{total} -> index {index}"
        )
        return lines
